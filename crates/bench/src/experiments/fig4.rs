//! Figure 4: simulation time vs violation rate — the bounded-slack
//! frontier (CC + S1–S9) against adaptive slack at twelve target rates
//! with violation bands of 0% and 5%.
//!
//! Paper shape: adaptive slack always runs faster than cycle-by-cycle, but
//! bounded slack at a similar violation rate runs faster than its adaptive
//! counterpart (the price of the safety net); wider bands shorten
//! simulation time.
//!
//! Protocol on this host (see `EXPERIMENTS.md`): violation rates come from
//! the deterministic engine; wall-clock times from the threaded engine,
//! whose adaptive controller uses the deterministic calibration
//! ([`crate::runner::calibrated_adaptive`]).

use slacksim::scheme::Scheme;
use slacksim::Benchmark;

use crate::runner::{calibrated_adaptive, mean_bound, run_sequential, run_threaded};
use crate::scale::Scale;
use crate::table::Table;

/// The paper's twelve target violation rates, in percent.
pub const TARGETS_PERCENT: [f64; 12] = [
    0.01, 0.03, 0.05, 0.07, 0.09, 0.10, 0.11, 0.13, 0.15, 0.17, 0.19, 0.20,
];

/// One point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Point {
    /// Series label ("CC", "S3", "adaptive 0%", "adaptive 5%").
    pub series: String,
    /// Configuration label (bound or target).
    pub label: String,
    /// Measured violation rate (fraction per cycle, deterministic engine).
    pub rate: f64,
    /// Wall-clock seconds (threaded engine).
    pub wall_secs: f64,
    /// Mean adaptive bound (0 for non-adaptive points).
    pub mean_bound: f64,
}

/// Measures all three series for one benchmark.
pub fn measure(scale: &Scale, benchmark: Benchmark) -> Vec<Fig4Point> {
    let mut points = Vec::new();

    // Cycle-by-cycle plus the bounded-slack frontier S1–S9.
    let cc_rate = run_sequential(scale, benchmark, Scheme::CycleByCycle).violation_rate();
    let cc_wall = run_threaded(scale, benchmark, Scheme::CycleByCycle)
        .wall
        .as_secs_f64();
    points.push(Fig4Point {
        series: "bounded".into(),
        label: "CC".into(),
        rate: cc_rate,
        wall_secs: cc_wall,
        mean_bound: 0.0,
    });
    for bound in 1..=9u64 {
        let rate =
            run_sequential(scale, benchmark, Scheme::BoundedSlack { bound }).violation_rate();
        let wall = run_threaded(scale, benchmark, Scheme::BoundedSlack { bound })
            .wall
            .as_secs_f64();
        eprintln!(
            "fig4: {benchmark} S{bound}: rate={:.4}% wall={wall:.3}s",
            rate * 100.0
        );
        points.push(Fig4Point {
            series: "bounded".into(),
            label: format!("S{bound}"),
            rate,
            wall_secs: wall,
            mean_bound: bound as f64,
        });
    }

    // Adaptive series at both violation bands: once at the paper's
    // absolute targets (which sit below this substrate's violation-rate
    // floor and therefore saturate — reported as-is), and once rescaled
    // ×20 into this substrate's density regime, where the control dial is
    // fully exercised.
    for (suffix, factor) in [("", 1.0), (" x20", 20.0)] {
        for band in [0.0, 5.0] {
            for target in TARGETS_PERCENT {
                let scaled = target * factor;
                let (threaded_cfg, seq) = calibrated_adaptive(scale, benchmark, scaled, band);
                let wall = run_threaded(scale, benchmark, Scheme::Adaptive(threaded_cfg))
                    .wall
                    .as_secs_f64();
                eprintln!(
                    "fig4: {benchmark} adaptive {scaled}%/{band}%: rate={:.4}% wall={wall:.3}s bound={:.1}",
                    seq.violation_rate() * 100.0,
                    mean_bound(&seq)
                );
                points.push(Fig4Point {
                    series: format!("adaptive {band:.0}%{suffix}"),
                    label: format!("{scaled:.2}%"),
                    rate: seq.violation_rate(),
                    wall_secs: wall,
                    mean_bound: mean_bound(&seq),
                });
            }
        }
    }
    points
}

/// Renders the figure's data as a table.
pub fn render(benchmark: Benchmark, points: &[Fig4Point]) -> Table {
    let mut t = Table::new(format!(
        "Figure 4. Simulation time vs violation rate ({benchmark})."
    ));
    t.headers([
        "series",
        "config",
        "violation rate",
        "sim time (s)",
        "mean bound",
    ]);
    for p in points {
        t.row([
            p.series.clone(),
            p.label.clone(),
            format!("{:.4}%", p.rate * 100.0),
            format!("{:.3}", p.wall_secs),
            format!("{:.1}", p.mean_bound),
        ]);
    }
    t.note("rates: deterministic engine; times: threaded engine (1 host thread per target core)");
    t.note("adaptive runs use deterministic-engine calibration for the threaded bound clamp");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_targets_match_paper() {
        assert_eq!(TARGETS_PERCENT.len(), 12);
        assert_eq!(TARGETS_PERCENT[0], 0.01);
        assert_eq!(TARGETS_PERCENT[11], 0.20);
        assert!(TARGETS_PERCENT.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn render_includes_all_series() {
        let points = vec![
            Fig4Point {
                series: "bounded".into(),
                label: "CC".into(),
                rate: 0.0,
                wall_secs: 1.0,
                mean_bound: 0.0,
            },
            Fig4Point {
                series: "adaptive 5%".into(),
                label: "0.01%".into(),
                rate: 1e-4,
                wall_secs: 0.5,
                mean_bound: 1.2,
            },
        ];
        let t = render(Benchmark::Fft, &points);
        let s = t.to_string();
        assert!(s.contains("CC"));
        assert!(s.contains("adaptive 5%"));
    }
}
