//! The MESI coherence protocol: line states and the transition tables used
//! on both sides of the bus (core-side L1 controllers and the manager's
//! global cache-status map).
//!
//! The target keeps L1 caches coherent with a MESI protocol on a
//! request/response snooping bus (paper §2.1): requests are broadcast on
//! the request bus, all L1s plus the L2 snoop them, and data moves on the
//! response bus.

use std::fmt;

use slacksim_core::persist::PersistError;

/// MESI line states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Modified: this cache owns the only, dirty copy.
    Modified,
    /// Exclusive: this cache owns the only, clean copy.
    Exclusive,
    /// Shared: one of possibly several clean copies.
    Shared,
    /// Invalid (modelled as absence in the tag arrays, but needed as an
    /// explicit message/transition value).
    Invalid,
}

impl MesiState {
    /// Whether a local load hits in this state.
    pub const fn readable(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// Whether a local store can complete without a bus transaction.
    pub const fn writable(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Whether an eviction of this line must write data back.
    pub const fn dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }

    /// Stable one-byte encoding for the on-disk snapshot format.
    pub const fn persist_tag(self) -> u8 {
        match self {
            MesiState::Modified => 0,
            MesiState::Exclusive => 1,
            MesiState::Shared => 2,
            MesiState::Invalid => 3,
        }
    }

    /// Decodes [`MesiState::persist_tag`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] for an unknown tag.
    pub const fn from_persist_tag(tag: u8) -> Result<Self, PersistError> {
        Ok(match tag {
            0 => MesiState::Modified,
            1 => MesiState::Exclusive,
            2 => MesiState::Shared,
            3 => MesiState::Invalid,
            _ => return Err(PersistError::Corrupt("unknown MESI state tag")),
        })
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MesiState::Modified => 'M',
            MesiState::Exclusive => 'E',
            MesiState::Shared => 'S',
            MesiState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

/// Bus transaction types a core can place on the request bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// Read for sharing (load miss): `BusRd`.
    Rd,
    /// Read for ownership (store miss): `BusRdX`.
    RdX,
    /// Upgrade an S copy to M without data transfer: `BusUpgr`.
    Upgr,
    /// Write back a dirty evicted line to the L2.
    Wb,
}

impl BusOp {
    /// The state the requester's line enters once the transaction
    /// completes, given whether other sharers remain.
    ///
    /// # Panics
    ///
    /// Panics for [`BusOp::Wb`], which installs nothing at the requester.
    pub fn granted_state(self, other_sharers: bool) -> MesiState {
        match self {
            BusOp::Rd => {
                if other_sharers {
                    MesiState::Shared
                } else {
                    MesiState::Exclusive
                }
            }
            BusOp::RdX | BusOp::Upgr => MesiState::Modified,
            BusOp::Wb => panic!("writebacks install no state at the requester"),
        }
    }

    /// Stable one-byte encoding for the on-disk snapshot format.
    pub const fn persist_tag(self) -> u8 {
        match self {
            BusOp::Rd => 0,
            BusOp::RdX => 1,
            BusOp::Upgr => 2,
            BusOp::Wb => 3,
        }
    }

    /// Decodes [`BusOp::persist_tag`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] for an unknown tag.
    pub const fn from_persist_tag(tag: u8) -> Result<Self, PersistError> {
        Ok(match tag {
            0 => BusOp::Rd,
            1 => BusOp::RdX,
            2 => BusOp::Upgr,
            3 => BusOp::Wb,
            _ => return Err(PersistError::Corrupt("unknown bus-op tag")),
        })
    }

    /// What a *remote* snooping cache holding the line must do.
    pub fn snoop_action(self, held: MesiState) -> SnoopAction {
        match (self, held) {
            (BusOp::Rd, MesiState::Modified) => SnoopAction::FlushAndDowngrade,
            (BusOp::Rd, MesiState::Exclusive) => SnoopAction::Downgrade,
            (BusOp::Rd, MesiState::Shared) => SnoopAction::None,
            (BusOp::RdX, MesiState::Modified) => SnoopAction::FlushAndInvalidate,
            (BusOp::RdX, MesiState::Exclusive | MesiState::Shared) => SnoopAction::Invalidate,
            (BusOp::Upgr, MesiState::Shared) => SnoopAction::Invalidate,
            // An Upgr race against an M/E holder cannot arise in the
            // target (the requester held S), but slack reordering can
            // present it; treat it like RdX snoops for robustness.
            (BusOp::Upgr, MesiState::Modified) => SnoopAction::FlushAndInvalidate,
            (BusOp::Upgr, MesiState::Exclusive) => SnoopAction::Invalidate,
            (BusOp::Wb, _) => SnoopAction::None,
            (_, MesiState::Invalid) => SnoopAction::None,
        }
    }
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusOp::Rd => write!(f, "BusRd"),
            BusOp::RdX => write!(f, "BusRdX"),
            BusOp::Upgr => write!(f, "BusUpgr"),
            BusOp::Wb => write!(f, "BusWb"),
        }
    }
}

/// What a remote cache does in response to a snooped request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopAction {
    /// Ignore.
    None,
    /// Drop to Shared (clean copy, no data movement modelled).
    Downgrade,
    /// Supply dirty data and drop to Shared.
    FlushAndDowngrade,
    /// Drop to Invalid.
    Invalidate,
    /// Supply dirty data and drop to Invalid.
    FlushAndInvalidate,
}

impl SnoopAction {
    /// Whether the remote cache supplies the data (cache-to-cache
    /// transfer).
    pub const fn supplies_data(self) -> bool {
        matches!(
            self,
            SnoopAction::FlushAndDowngrade | SnoopAction::FlushAndInvalidate
        )
    }

    /// Whether the remote copy ends up invalid.
    pub const fn invalidates(self) -> bool {
        matches!(
            self,
            SnoopAction::Invalidate | SnoopAction::FlushAndInvalidate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(MesiState::Modified.readable());
        assert!(MesiState::Shared.readable());
        assert!(!MesiState::Invalid.readable());
        assert!(MesiState::Modified.writable());
        assert!(MesiState::Exclusive.writable());
        assert!(!MesiState::Shared.writable());
        assert!(MesiState::Modified.dirty());
        assert!(!MesiState::Exclusive.dirty());
    }

    #[test]
    fn granted_states() {
        assert_eq!(BusOp::Rd.granted_state(true), MesiState::Shared);
        assert_eq!(BusOp::Rd.granted_state(false), MesiState::Exclusive);
        assert_eq!(BusOp::RdX.granted_state(true), MesiState::Modified);
        assert_eq!(BusOp::Upgr.granted_state(false), MesiState::Modified);
    }

    #[test]
    #[should_panic(expected = "writebacks install no state")]
    fn wb_grants_nothing() {
        let _ = BusOp::Wb.granted_state(false);
    }

    #[test]
    fn snoop_table_exhaustive() {
        use MesiState::*;
        use SnoopAction::*;
        let cases = [
            (BusOp::Rd, Modified, FlushAndDowngrade),
            (BusOp::Rd, Exclusive, Downgrade),
            (BusOp::Rd, Shared, None),
            (BusOp::Rd, Invalid, None),
            (BusOp::RdX, Modified, FlushAndInvalidate),
            (BusOp::RdX, Exclusive, Invalidate),
            (BusOp::RdX, Shared, Invalidate),
            (BusOp::RdX, Invalid, None),
            (BusOp::Upgr, Modified, FlushAndInvalidate),
            (BusOp::Upgr, Exclusive, Invalidate),
            (BusOp::Upgr, Shared, Invalidate),
            (BusOp::Upgr, Invalid, None),
            (BusOp::Wb, Modified, None),
            (BusOp::Wb, Shared, None),
        ];
        for (op, held, want) in cases {
            assert_eq!(op.snoop_action(held), want, "{op} snooped in {held}");
        }
    }

    #[test]
    fn snoop_action_predicates() {
        assert!(SnoopAction::FlushAndInvalidate.supplies_data());
        assert!(SnoopAction::FlushAndDowngrade.supplies_data());
        assert!(!SnoopAction::Invalidate.supplies_data());
        assert!(SnoopAction::Invalidate.invalidates());
        assert!(SnoopAction::FlushAndInvalidate.invalidates());
        assert!(!SnoopAction::Downgrade.invalidates());
    }

    #[test]
    fn display() {
        assert_eq!(MesiState::Modified.to_string(), "M");
        assert_eq!(BusOp::RdX.to_string(), "BusRdX");
    }
}
