//! Synthetic Water-Nsquared (216 molecules, paper Table 1).
//!
//! SPLASH-2 Water-Nsquared computes O(n²) pairwise molecular interactions:
//! floating-point-heavy inner loops that read the partner molecule from a
//! shared array and accumulate forces under per-molecule locks, with
//! barriers separating the force phase from the (private) integration
//! phase. Shared traffic is read-mostly with regular locked
//! read-modify-writes — an intermediate violation profile between Barnes
//! and LU (Table 3: 55–100 %).

use std::collections::VecDeque;

use slacksim_cmp::isa::{Instr, InstrStream, Op};
use slacksim_core::rng::Xoshiro256;

use crate::mix::{CodeWalker, FillerMix, Regions};
use crate::params::WorkloadParams;

/// Number of molecules (paper input set).
const MOLECULES: u64 = 216;
/// Bytes per molecule record (positions, velocities, forces).
const MOLECULE_BYTES: u64 = 672;
/// Instructions per force phase.
const FORCE_LEN: u64 = 11_000;
/// Instructions per integration phase.
const INTEGRATE_LEN: u64 = 2_500;
/// Pair interactions between locked force accumulations.
const PAIRS_PER_LOCK: u64 = 12;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Force,
    Integrate,
}

/// Per-thread Water-Nsquared instruction stream.
#[derive(Debug, Clone)]
pub struct WaterStream {
    tid: usize,
    rng: Xoshiro256,
    code: CodeWalker,
    queue: VecDeque<Op>,
    phase: Phase,
    phase_left: i64,
    episode: u32,
    pair_counter: u64,
    own_molecule: u64,
    integrate_cursor: u64,
}

impl WaterStream {
    /// Creates the stream for one workload thread.
    pub fn new(params: &WorkloadParams) -> Self {
        let span = MOLECULES / params.n_threads as u64;
        WaterStream {
            tid: params.thread_id,
            rng: Xoshiro256::new(params.thread_seed(0x3A7E2)),
            code: CodeWalker::new(Regions::code(6), 2048),
            queue: VecDeque::new(),
            phase: Phase::Force,
            phase_left: FORCE_LEN as i64,
            episode: 0,
            pair_counter: 0,
            own_molecule: params.thread_id as u64 * span,
            integrate_cursor: 0,
        }
    }

    fn molecule_addr(&self, index: u64, field: u64) -> u64 {
        Regions::SHARED + 0x20_0000 + index * MOLECULE_BYTES + field * 8
    }

    fn refill(&mut self) {
        if self.phase_left <= 0 {
            self.queue.push_back(Op::Barrier { id: self.episode });
            self.episode += 1;
            self.phase = match self.phase {
                Phase::Force => {
                    self.phase_left = INTEGRATE_LEN as i64;
                    self.code.rebase(Regions::code(7), 1024);
                    Phase::Integrate
                }
                Phase::Integrate => {
                    self.phase_left = FORCE_LEN as i64;
                    self.code.rebase(Regions::code(6), 2048);
                    Phase::Force
                }
            };
            self.phase_left -= 1;
            return;
        }
        let chunk = match self.phase {
            Phase::Force => self.pair_interaction(),
            Phase::Integrate => self.integrate_chunk(),
        };
        self.phase_left -= chunk as i64;
    }

    /// One pairwise interaction: read both molecules, heavy FP, and
    /// periodically a locked force accumulation on the partner.
    fn pair_interaction(&mut self) -> u64 {
        // Sweep partners sequentially (the O(n²) loop structure) so each
        // molecule's lines are reused across its two field loads.
        let partner = (self.own_molecule + self.pair_counter) % MOLECULES;
        let mut count = 0u64;
        // Read own molecule (usually L1-resident) and the partner.
        self.queue.push_back(Op::Load {
            addr: self.molecule_addr(self.own_molecule, 0),
        });
        self.queue.push_back(Op::Load {
            addr: self.molecule_addr(partner, 0),
        });
        count += 2;
        for _ in 0..20 {
            self.queue.push_back(FillerMix::FP.draw(&mut self.rng));
            count += 1;
        }
        self.pair_counter += 1;
        if self.pair_counter.is_multiple_of(PAIRS_PER_LOCK) {
            // Accumulate force into the partner's record under its lock.
            let id = (partner % MOLECULES) as u32;
            let addr = self.molecule_addr(partner, 8);
            self.queue.push_back(Op::LockAcquire { id });
            self.queue.push_back(Op::Load { addr });
            self.queue.push_back(FillerMix::FP.draw(&mut self.rng));
            self.queue.push_back(Op::Store { addr });
            self.queue.push_back(Op::LockRelease { id });
            count += 5;
        }
        count
    }

    /// Integrate own molecules: private streaming update.
    fn integrate_chunk(&mut self) -> u64 {
        let base = Regions::new(self.tid).private();
        self.queue.push_back(Op::Load {
            addr: base + self.integrate_cursor,
        });
        self.queue.push_back(FillerMix::FP.draw(&mut self.rng));
        self.queue.push_back(Op::Store {
            addr: base + self.integrate_cursor,
        });
        self.integrate_cursor = (self.integrate_cursor + 8) % (16 * 1024);
        self.queue.push_back(FillerMix::FP.draw(&mut self.rng));
        4
    }
}

impl InstrStream for WaterStream {
    fn next_instr(&mut self) -> Instr {
        if self.queue.is_empty() {
            self.refill();
        }
        let op = self.queue.pop_front().expect("refill fills the queue");
        let pc = self.code.pc();
        self.code.advance();
        Instr::new(op, pc)
    }

    fn clone_box(&self) -> Box<dyn InstrStream> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_testkit::{barrier_ids, determinism_check, op_census};

    fn stream(tid: usize) -> WaterStream {
        WaterStream::new(&WorkloadParams::new(tid, 8, 42))
    }

    #[test]
    fn deterministic_per_seed() {
        determinism_check(|| Box::new(stream(6)));
    }

    #[test]
    fn fp_dominated_mix_with_locks() {
        let census = op_census(&mut stream(0), 50_000);
        assert!(census.fp > 12_000, "fp ops: {census:?}");
        assert!(census.locks > 100, "locked accumulations: {census:?}");
        assert_eq!(census.locks, census.unlocks);
        assert!(census.barriers >= 3, "phases: {census:?}");
    }

    #[test]
    fn barriers_align_across_threads() {
        let a = barrier_ids(&mut stream(0), 60_000);
        let b = barrier_ids(&mut stream(7), 60_000);
        let shared = a.len().min(b.len());
        assert!(shared >= 3);
        assert_eq!(a[..shared], b[..shared]);
    }

    #[test]
    fn partner_reads_span_the_molecule_array() {
        let mut s = stream(1);
        let mut molecules = std::collections::BTreeSet::new();
        let array = Regions::SHARED + 0x20_0000;
        for _ in 0..60_000 {
            if let Op::Load { addr } = s.next_instr().op {
                if addr >= array && addr < array + MOLECULES * MOLECULE_BYTES {
                    molecules.insert((addr - array) / MOLECULE_BYTES);
                }
            }
        }
        assert!(
            molecules.len() as u64 > MOLECULES / 2,
            "pair reads cover the array: {}",
            molecules.len()
        );
    }

    #[test]
    fn lock_ids_match_molecules() {
        let mut s = stream(2);
        for _ in 0..60_000 {
            if let Op::LockAcquire { id } = s.next_instr().op {
                assert!(u64::from(id) < MOLECULES);
            }
        }
    }
}
