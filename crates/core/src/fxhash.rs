//! A fast, non-cryptographic hasher for the simulator's hot maps.
//!
//! The manager-side structures keyed by line address (the cache status
//! map, its per-line violation monitors, delta dirty stamps) sit on the
//! boundary-servicing critical path of every engine: each bus event costs
//! several map probes. The standard library's default SipHash is
//! DoS-resistant but pays ~10x the cost of a multiply-rotate mix on
//! 8-byte keys, which profiling shows dominates `uncore.service`. Keys
//! here are line addresses from a simulated workload, not attacker input,
//! so the Firefox/rustc "Fx" polynomial mix is the right trade.
//!
//! The algorithm is the classic FxHash: per 8-byte word,
//! `hash = (hash.rotate_left(5) ^ word) * K` with a fixed odd constant.
//! Hash-dependent iteration order changes with the hasher, which is why
//! every persistence path sorts before serializing (see e.g.
//! `CacheMap::save_state`) — equality, deltas and fingerprints are all
//! order-independent.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc/Firefox FxHash multiplier (a large odd constant close to
/// 2^64 / golden ratio).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher for small fixed-size keys (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Bulk path for compound keys: fold the length (so a ragged tail's
        // zero padding can't collide with real zero bytes, and the empty
        // slice doesn't fix at 0), then 8 bytes at a time, then the tail.
        // Hot keys (line addresses) never take this path — they hash
        // through `write_u64` below.
        self.mix(bytes.len() as u64 ^ K);
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so `Default` everywhere).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher. Construct with
/// `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        // Not a distribution test — just a sanity check that the mix
        // actually depends on the input and on position.
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_ne!(h(0x40), h(0x80));
        assert_ne!(h(0), h(1));
        assert_ne!(h(1) ^ h(2), 0);
    }

    #[test]
    fn byte_slices_cover_the_ragged_tail() {
        let h = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        };
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"));
        assert_ne!(h(b"abcdefghi"), h(b"abcdefgh"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 3) as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 3) as u32)));
        }
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 500);
    }
}
