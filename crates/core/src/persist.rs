//! Durable on-disk serialization of checkpoint state (DESIGN §13).
//!
//! A hand-rolled, versioned binary format — no external serialization
//! crates, matching the PR 1 dependency policy. The container is
//!
//! ```text
//! magic    [u8; 8]  b"SLAKSNAP"
//! version  u32      format version (2 baseline, 3 with shard section)
//! fp_len   u32      length of the config-fingerprint string
//! fp       [u8]     UTF-8 fingerprint: benchmark/scheme/cores/seed/cp-mode
//! len      u64      payload length in bytes
//! checksum u64      FNV-1a over the payload
//! payload  [u8]     model state (engine/facade defined, little-endian)
//! ```
//!
//! The fingerprint pins a snapshot to the run configuration that produced
//! it: a resume with a different benchmark, scheme (including scheme
//! parameters), core count, seed or checkpoint mode is refused with
//! [`PersistError::ConfigMismatch`] rather than silently producing a
//! nonsense simulation. Writes go through [`write_atomic`]: the bytes land
//! in a sibling temp file which is fsynced and renamed over the target, so
//! a crash mid-write can never leave a torn snapshot under the final name.

use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// File magic identifying a slacksim snapshot container.
pub const MAGIC: [u8; 8] = *b"SLAKSNAP";
/// Baseline container format version (no shard section in the payload).
pub const FORMAT_VERSION: u32 = 2;
/// Container format version whose payload ends with a per-shard section
/// (threaded engine with `shards > 1`). Writers use it only when the
/// section is present, so single-manager snapshots stay byte-identical
/// to version-2 files; readers accept both.
pub const FORMAT_VERSION_SHARDED: u32 = 3;

/// Everything that can go wrong while persisting or restoring a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error (after bounded retries, for writes).
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The container was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The file ended before the declared structure was complete.
    Truncated,
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// The snapshot was produced under a different run configuration.
    ConfigMismatch {
        /// Fingerprint of the current run configuration.
        expected: String,
        /// Fingerprint recorded in the snapshot header.
        found: String,
    },
    /// The payload decoded to something structurally impossible.
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a slacksim snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads {FORMAT_VERSION}..={FORMAT_VERSION_SHARDED})"
                )
            }
            PersistError::Truncated => write!(f, "snapshot file is truncated"),
            PersistError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch (header {expected:#018x}, payload {found:#018x})"
            ),
            PersistError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot config mismatch: run is [{expected}] but snapshot was taken under [{found}]"
            ),
            PersistError::Corrupt(what) => write!(f, "snapshot payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// FNV-1a 64-bit hash; cheap, dependency-free payload checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian append-only byte sink for snapshot payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer and return the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed (u32) byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a snapshot payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wrap a byte slice for reading from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (rejects anything other than 0/1).
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Corrupt("bool byte out of range")),
        }
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its stored bit pattern.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, PersistError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| PersistError::Corrupt("non-UTF-8 string"))
    }

    /// Error unless the whole buffer was consumed — catches payloads with
    /// trailing garbage, which indicate an encode/decode skew.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Corrupt("trailing bytes after payload"))
        }
    }
}

/// Wrap a payload in the baseline (version-2) snapshot container.
pub fn encode_container(fingerprint: &str, payload: &[u8]) -> Vec<u8> {
    encode_container_versioned(FORMAT_VERSION, fingerprint, payload)
}

/// Wrap a payload in a snapshot container stamped with an explicit format
/// version. Callers pick [`FORMAT_VERSION_SHARDED`] only when the payload
/// actually carries the shard section, so older builds refuse the file
/// with a clear version error instead of a trailing-bytes corruption.
pub fn encode_container_versioned(version: u32, fingerprint: &str, payload: &[u8]) -> Vec<u8> {
    debug_assert!((FORMAT_VERSION..=FORMAT_VERSION_SHARDED).contains(&version));
    let mut out = Vec::with_capacity(32 + fingerprint.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(fingerprint.len() as u32).to_le_bytes());
    out.extend_from_slice(fingerprint.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a snapshot container and return `(fingerprint, payload)`.
///
/// Checks magic, format version, structural completeness and the payload
/// checksum; the caller compares the fingerprint against its own run
/// configuration (see [`check_fingerprint`]).
pub fn decode_container(bytes: &[u8]) -> Result<(&str, &[u8]), PersistError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32()?;
    if !(FORMAT_VERSION..=FORMAT_VERSION_SHARDED).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let fp = std::str::from_utf8(r.bytes()?)
        .map_err(|_| PersistError::Corrupt("non-UTF-8 fingerprint"))?;
    let len = r.u64()? as usize;
    let expected = r.u64()?;
    let payload = r.take(len)?;
    if r.remaining() != 0 {
        return Err(PersistError::Corrupt("trailing bytes after payload"));
    }
    let found = fnv1a(payload);
    if found != expected {
        return Err(PersistError::ChecksumMismatch { expected, found });
    }
    Ok((fp, payload))
}

/// Compare a snapshot fingerprint against the current run configuration.
pub fn check_fingerprint(expected: &str, found: &str) -> Result<(), PersistError> {
    if expected == found {
        Ok(())
    } else {
        Err(PersistError::ConfigMismatch {
            expected: expected.to_string(),
            found: found.to_string(),
        })
    }
}

/// Retry backoff schedule for transient I/O errors during atomic writes.
const RETRY_BACKOFF: [Duration; 2] = [Duration::from_millis(10), Duration::from_millis(50)];

/// Atomically replace `path` with `bytes`: write to a sibling temp file,
/// fsync, then rename over the target. Transient I/O errors are retried
/// with bounded backoff (three attempts total); the temp file is removed
/// on failure so aborted writes leave no debris.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = tmp_sibling(path);
    let mut last_err: Option<io::Error> = None;
    for (attempt, _) in (0..=RETRY_BACKOFF.len()).enumerate() {
        if attempt > 0 {
            std::thread::sleep(RETRY_BACKOFF[attempt - 1]);
        }
        match try_write(&tmp, path, bytes) {
            Ok(()) => return Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                last_err = Some(e);
            }
        }
    }
    Err(PersistError::Io(
        last_err.expect("at least one attempt ran"),
    ))
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn try_write(tmp: &Path, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = std::fs::File::create(tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.u8(0xab);
        w.bool(true);
        w.bool(false);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.f64(-0.15625);
        w.bytes(b"abc");
        w.str("fingerprint");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), -0.15625);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert_eq!(r.str().unwrap(), "fingerprint");
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_truncation_not_panics() {
        let mut w = ByteWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(matches!(r.u64(), Err(PersistError::Truncated)));
        }
    }

    #[test]
    fn container_round_trip() {
        let payload = b"some payload bytes";
        let bytes = encode_container("bench=fft;cores=8", payload);
        let (fp, body) = decode_container(&bytes).unwrap();
        assert_eq!(fp, "bench=fft;cores=8");
        assert_eq!(body, payload);
    }

    #[test]
    fn container_detects_bad_magic_version_checksum_truncation() {
        let bytes = encode_container("fp", b"payload");

        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            decode_container(&bad),
            Err(PersistError::BadMagic)
        ));

        let mut bad = bytes.clone();
        bad[8] = 0xfe; // version low byte
        assert!(matches!(
            decode_container(&bad),
            Err(PersistError::UnsupportedVersion(_))
        ));

        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01; // flip a payload bit
        assert!(matches!(
            decode_container(&bad),
            Err(PersistError::ChecksumMismatch { .. })
        ));

        for cut in 0..bytes.len() {
            match decode_container(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncated container at {cut} decoded successfully"),
            }
        }
    }

    #[test]
    fn sharded_container_version_round_trips() {
        let payload = b"payload with shard section";
        let bytes = encode_container_versioned(FORMAT_VERSION_SHARDED, "fp", payload);
        assert_eq!(bytes[8..12], FORMAT_VERSION_SHARDED.to_le_bytes());
        let (fp, body) = decode_container(&bytes).unwrap();
        assert_eq!(fp, "fp");
        assert_eq!(body, payload);
        // The baseline writer still stamps version 2 so single-manager
        // snapshots stay byte-identical across this format extension.
        let base = encode_container("fp", payload);
        assert_eq!(base[8..12], FORMAT_VERSION.to_le_bytes());
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        assert!(check_fingerprint("a", "a").is_ok());
        let err = check_fingerprint("run-a", "snap-b").unwrap_err();
        assert!(matches!(err, PersistError::ConfigMismatch { .. }));
        assert!(err.to_string().contains("run-a"));
        assert!(err.to_string().contains("snap-b"));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("slacksim-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
