//! Extension E8: fully deployed speculative slack simulation, measured
//! (the paper only modelled it and listed deployment as future work).

use slacksim_bench::experiments::ext;
use slacksim_bench::scale::Scale;

fn main() {
    let scale = Scale::from_env(200_000);
    let interval = 5_000;
    let rows = ext::measure_speculative(&scale, interval);
    println!("{}", ext::render_speculative(interval, &rows));
}
