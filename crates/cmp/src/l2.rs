//! The shared L2 cache simulated by the manager thread.
//!
//! Timing-only: 8-cycle hits, 100-cycle misses to memory (paper §2.1).
//! Dirty L1 writebacks land here; dirty L2 victims count as memory writes.

use slacksim_core::checkpoint::Checkpointable;
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};
use slacksim_core::time::Cycle;

use crate::cache::{Cache, CacheConfig, CacheDelta, LineAddr};
use crate::mesi::MesiState;

/// Result of an L2 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Access {
    /// Cycle at which the data is available, given the access started at
    /// the bus-grant cycle.
    pub data_ready: Cycle,
    /// Whether the access hit in the L2.
    pub hit: bool,
}

/// The shared L2 bank.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::cache::LineAddr;
/// use slacksim_cmp::l2::L2;
/// use slacksim_core::time::Cycle;
///
/// let mut l2 = L2::new(slacksim_cmp::cache::CacheConfig::l2(), 8, 100);
/// let miss = l2.access(LineAddr::new(7), Cycle::new(0));
/// assert!(!miss.hit);
/// assert_eq!(miss.data_ready, Cycle::new(100));
/// let hit = l2.access(LineAddr::new(7), Cycle::new(200));
/// assert!(hit.hit);
/// assert_eq!(hit.data_ready, Cycle::new(208));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2 {
    cache: Cache,
    hit_latency: u64,
    miss_latency: u64,
    writebacks_in: u64,
    memory_writes: u64,
}

impl L2 {
    /// Creates an empty L2 with the given geometry and latencies.
    ///
    /// # Panics
    ///
    /// Panics if `miss_latency < hit_latency` (a miss includes the lookup).
    pub fn new(cfg: CacheConfig, hit_latency: u64, miss_latency: u64) -> Self {
        assert!(
            miss_latency >= hit_latency,
            "miss latency must cover the lookup"
        );
        L2 {
            cache: Cache::new(cfg),
            hit_latency,
            miss_latency,
            writebacks_in: 0,
            memory_writes: 0,
        }
    }

    /// Performs a lookup-and-fill for a line requested on the bus at
    /// `grant`; misses fetch from memory and install the line.
    pub fn access(&mut self, line: LineAddr, grant: Cycle) -> L2Access {
        if self.cache.probe(line).is_some() {
            L2Access {
                data_ready: grant + self.hit_latency,
                hit: true,
            }
        } else {
            if let Some((_victim, state)) = self.cache.fill(line, MesiState::Exclusive) {
                if state.dirty() {
                    self.memory_writes += 1;
                }
            }
            L2Access {
                data_ready: grant + self.miss_latency,
                hit: false,
            }
        }
    }

    /// Absorbs a dirty L1 writeback.
    pub fn write_back(&mut self, line: LineAddr) {
        self.writebacks_in += 1;
        if let Some((_victim, state)) = self.cache.fill(line, MesiState::Modified) {
            if state.dirty() {
                self.memory_writes += 1;
            }
        }
    }

    /// L2 probe hits so far.
    pub fn hits(&self) -> u64 {
        self.cache.hits()
    }

    /// L2 probe misses so far.
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Dirty L1 writebacks absorbed.
    pub fn writebacks_in(&self) -> u64 {
        self.writebacks_in
    }

    /// Dirty L2 victims written to memory.
    pub fn memory_writes(&self) -> u64 {
        self.memory_writes
    }

    /// Serializes the model state (latencies are configuration and are
    /// not stored).
    pub fn save_state(&self, w: &mut ByteWriter) {
        self.cache.save_state(w);
        w.u64(self.writebacks_in);
        w.u64(self.memory_writes);
    }

    /// Restores state written by [`L2::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if the bytes are malformed or describe a
    /// different geometry.
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        self.cache.load_state(r)?;
        self.writebacks_in = r.u64()?;
        self.memory_writes = r.u64()?;
        Ok(())
    }
}

/// Incremental state carrier for the [`L2`]: the inner cache's dirty sets
/// plus the writeback scalars (latencies are configuration, never
/// captured).
#[derive(Debug, Clone)]
pub struct L2Delta {
    cache: CacheDelta,
    writebacks_in: u64,
    memory_writes: u64,
}

impl L2Delta {
    /// Number of dirty cache sets carried.
    pub fn dirty_sets(&self) -> usize {
        self.cache.dirty_sets()
    }
}

impl Checkpointable for L2 {
    type Delta = L2Delta;

    fn generation(&self) -> u64 {
        self.cache.generation()
    }

    fn capture_delta(&mut self, since_gen: u64) -> L2Delta {
        L2Delta {
            cache: self.cache.capture_delta(since_gen),
            writebacks_in: self.writebacks_in,
            memory_writes: self.memory_writes,
        }
    }

    fn apply_delta(&mut self, delta: L2Delta) {
        self.cache.apply_delta(delta.cache);
        self.writebacks_in = delta.writebacks_in;
        self.memory_writes = delta.memory_writes;
    }

    fn restore_from(&mut self, base: &Self, since_gen: u64) {
        self.cache.restore_from(&base.cache, since_gen);
        self.writebacks_in = base.writebacks_in;
        self.memory_writes = base.memory_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> L2 {
        L2::new(
            CacheConfig {
                size_bytes: 256,
                ways: 2,
                line_bytes: 32,
            },
            8,
            100,
        )
    }

    #[test]
    fn miss_then_hit_latencies() {
        let mut l2 = l2();
        let a = l2.access(LineAddr::new(1), Cycle::new(50));
        assert!(!a.hit);
        assert_eq!(a.data_ready, Cycle::new(150));
        let b = l2.access(LineAddr::new(1), Cycle::new(200));
        assert!(b.hit);
        assert_eq!(b.data_ready, Cycle::new(208));
        assert_eq!(l2.hits(), 1);
        assert_eq!(l2.misses(), 1);
    }

    #[test]
    fn writeback_makes_line_resident_and_dirty() {
        let mut l2 = l2();
        l2.write_back(LineAddr::new(9));
        assert_eq!(l2.writebacks_in(), 1);
        assert!(l2.access(LineAddr::new(9), Cycle::new(0)).hit);
    }

    #[test]
    fn dirty_victim_counts_as_memory_write() {
        let mut l2 = l2();
        // 4 sets of 2 ways; lines 0, 4, 8 share set 0 (line % 4 == 0).
        l2.write_back(LineAddr::new(0)); // dirty
        l2.access(LineAddr::new(4), Cycle::new(0));
        l2.access(LineAddr::new(8), Cycle::new(0)); // evicts dirty line 0
        assert_eq!(l2.memory_writes(), 1);
    }

    #[test]
    fn clean_victim_is_silent() {
        let mut l2 = l2();
        l2.access(LineAddr::new(0), Cycle::new(0));
        l2.access(LineAddr::new(4), Cycle::new(0));
        l2.access(LineAddr::new(8), Cycle::new(0)); // evicts clean line
        assert_eq!(l2.memory_writes(), 0);
    }

    #[test]
    #[should_panic(expected = "miss latency must cover the lookup")]
    fn inconsistent_latencies_rejected() {
        let _ = L2::new(CacheConfig::l2(), 10, 5);
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let mut live = l2();
        live.write_back(LineAddr::new(0));
        live.access(LineAddr::new(4), Cycle::new(0));
        live.access(LineAddr::new(8), Cycle::new(10));

        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = l2();
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).expect("load succeeds");
        r.finish().expect("no trailing bytes");
        assert_eq!(restored, live);
        assert_eq!(restored.writebacks_in(), live.writebacks_in());
        assert_eq!(restored.memory_writes(), live.memory_writes());
    }

    #[test]
    fn delta_roundtrip_matches_full_clone() {
        let mut live = l2();
        live.access(LineAddr::new(0), Cycle::new(0));
        let mut base = live.clone();
        let gen = live.generation();

        live.write_back(LineAddr::new(4));
        live.access(LineAddr::new(8), Cycle::new(10)); // evicts
        base.apply_delta(live.capture_delta(gen));
        assert_eq!(base, live);

        let cp = live.clone();
        let cp_gen = live.generation();
        live.access(LineAddr::new(12), Cycle::new(20));
        live.restore_from(&cp, cp_gen);
        assert_eq!(live, cp, "restore rewinds to the checkpoint");
    }
}
