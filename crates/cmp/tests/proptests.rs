//! Randomised property tests for the target-CMP substrate: the cache
//! against a reference model, bus slot-calendar exclusivity, cache-map
//! protocol invariants and synchronisation-device laws. Inputs come from
//! the in-tree deterministic [`Xoshiro256`] RNG, so every run reproduces
//! bit-identically without external crates.

use std::collections::HashMap;

use slacksim_cmp::bus::Bus;
use slacksim_cmp::cache::{Cache, CacheConfig, LineAddr};
use slacksim_cmp::map::CacheMap;
use slacksim_cmp::mesi::{BusOp, MesiState};
use slacksim_cmp::sync::SyncDevice;
use slacksim_core::event::CoreId;
use slacksim_core::rng::Xoshiro256;
use slacksim_core::time::Cycle;

const CASES: u64 = 64;

/// An independent, naive set-associative LRU model: per set, a vector of
/// (tag, state) ordered most-recently-used first.
#[derive(Debug, Default)]
struct RefCache {
    sets: HashMap<u64, Vec<(u64, MesiState)>>,
    ways: usize,
    set_mask: u64,
    set_bits: u32,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as u64;
        RefCache {
            sets: HashMap::new(),
            ways: cfg.ways,
            set_mask: sets - 1,
            set_bits: sets.trailing_zeros(),
        }
    }

    fn split(&self, line: LineAddr) -> (u64, u64) {
        (line.raw() & self.set_mask, line.raw() >> self.set_bits)
    }

    fn probe(&mut self, line: LineAddr) -> Option<MesiState> {
        let (set, tag) = self.split(line);
        let ways = self.sets.entry(set).or_default();
        if let Some(pos) = ways.iter().position(|&(t, _)| t == tag) {
            let entry = ways.remove(pos);
            ways.insert(0, entry);
            Some(entry.1)
        } else {
            None
        }
    }

    fn fill(&mut self, line: LineAddr, state: MesiState) -> Option<(LineAddr, MesiState)> {
        let (set, tag) = self.split(line);
        let ways_cap = self.ways;
        let set_bits = self.set_bits;
        let ways = self.sets.entry(set).or_default();
        if let Some(pos) = ways.iter().position(|&(t, _)| t == tag) {
            ways.remove(pos);
            ways.insert(0, (tag, state));
            return None;
        }
        let victim = if ways.len() == ways_cap {
            let (vt, vs) = ways.pop().expect("full set");
            Some((LineAddr::new((vt << set_bits) | set), vs))
        } else {
            None
        };
        ways.insert(0, (tag, state));
        victim
    }

    fn invalidate(&mut self, line: LineAddr) -> Option<MesiState> {
        let (set, tag) = self.split(line);
        let ways = self.sets.entry(set).or_default();
        ways.iter()
            .position(|&(t, _)| t == tag)
            .map(|pos| ways.remove(pos).1)
    }
}

/// Operations driven against both cache models.
#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Probe(u64),
    Fill(u64, MesiState),
    Invalidate(u64),
}

fn random_cache_op(rng: &mut Xoshiro256) -> CacheOp {
    let line = rng.next_below(64);
    match rng.next_below(3) {
        0 => CacheOp::Probe(line),
        1 => {
            let state = match rng.next_below(3) {
                0 => MesiState::Modified,
                1 => MesiState::Exclusive,
                _ => MesiState::Shared,
            };
            CacheOp::Fill(line, state)
        }
        _ => CacheOp::Invalidate(line),
    }
}

/// The production cache agrees with the naive reference model on every
/// probe/fill/invalidate outcome, including victim choice.
#[test]
fn cache_matches_reference_model() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xCAC4E + case);
        let len = 1 + rng.next_below(300) as usize;
        // Small geometry maximises eviction traffic: 4 sets × 2 ways.
        let cfg = CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 32,
        };
        let mut real = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for _ in 0..len {
            match random_cache_op(&mut rng) {
                CacheOp::Probe(l) => {
                    assert_eq!(
                        real.probe(LineAddr::new(l)),
                        reference.probe(LineAddr::new(l)),
                        "case {case}"
                    );
                }
                CacheOp::Fill(l, s) => {
                    assert_eq!(
                        real.fill(LineAddr::new(l), s),
                        reference.fill(LineAddr::new(l), s),
                        "case {case}"
                    );
                }
                CacheOp::Invalidate(l) => {
                    assert_eq!(
                        real.invalidate(LineAddr::new(l)),
                        reference.invalidate(LineAddr::new(l)),
                        "case {case}"
                    );
                }
            }
        }
    }
}

/// Bus grants never overlap: any two grants are at least the bus occupancy
/// apart, and each grant is at or after its request.
#[test]
fn bus_grants_are_exclusive() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xB5 + case);
        let len = 1 + rng.next_below(200) as usize;
        let occupancy = rng.next_range(1, 3);
        let mut bus = Bus::new(occupancy, 1);
        let mut grants = Vec::new();
        for _ in 0..len {
            let ts = rng.next_below(2_000);
            let g = bus.arbitrate(Cycle::new(ts));
            assert!(g.grant.as_u64() >= ts, "case {case}: grant before request");
            grants.push(g.grant.as_u64());
        }
        grants.sort_unstable();
        for w in grants.windows(2) {
            assert!(
                w[1] - w[0] >= occupancy,
                "case {case}: overlapping grants {w:?}"
            );
        }
    }
}

/// Response-bus slots are also exclusive.
#[test]
fn response_slots_are_exclusive() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x4E59 + case);
        let len = 1 + rng.next_below(200) as usize;
        let occupancy = rng.next_range(1, 3);
        let mut bus = Bus::new(1, occupancy);
        let mut ends = Vec::new();
        for _ in 0..len {
            let ts = rng.next_below(2_000);
            let done = bus.respond(Cycle::new(ts));
            assert!(done.as_u64() >= ts + occupancy, "case {case}");
            ends.push(done.as_u64());
        }
        ends.sort_unstable();
        for w in ends.windows(2) {
            assert!(
                w[1] - w[0] >= occupancy,
                "case {case}: overlapping transfers {w:?}"
            );
        }
    }
}

/// Cache-map protocol invariants under arbitrary transition streams: Rd
/// grants E only when alone, S otherwise; RdX grants M and invalidates
/// every other sharer; writebacks clear the writer.
#[test]
fn cache_map_protocol_invariants() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x3A9 + case);
        let len = 1 + rng.next_below(300) as usize;
        let mut map = CacheMap::new(4);
        // Shadow state: per line, the set of holders.
        let mut shadow: HashMap<u64, std::collections::BTreeSet<u16>> = HashMap::new();
        for _ in 0..len {
            let op = [BusOp::Rd, BusOp::RdX, BusOp::Wb][rng.next_below(3) as usize];
            let line = rng.next_below(8);
            let core = rng.next_below(4) as u16;
            let ts = rng.next_below(10_000);
            let out = map.transition(op, LineAddr::new(line), CoreId::new(core), Cycle::new(ts));
            let holders = shadow.entry(line).or_default();
            match op {
                BusOp::Rd => {
                    let others_before = holders.iter().any(|&c| c != core);
                    if others_before {
                        assert_eq!(out.grant, MesiState::Shared, "case {case}");
                    } else {
                        assert_eq!(out.grant, MesiState::Exclusive, "case {case}");
                    }
                    assert!(
                        out.invalidate.is_empty(),
                        "case {case}: Rd never invalidates"
                    );
                    holders.insert(core);
                }
                BusOp::RdX => {
                    assert_eq!(out.grant, MesiState::Modified, "case {case}");
                    let expected: Vec<u16> =
                        holders.iter().copied().filter(|&c| c != core).collect();
                    let got: Vec<u16> = out.invalidate.iter().map(|c| c.index() as u16).collect();
                    assert_eq!(got, expected, "case {case}: RdX must invalidate all others");
                    holders.clear();
                    holders.insert(core);
                }
                BusOp::Wb => {
                    holders.remove(&core);
                }
                BusOp::Upgr => unreachable!(),
            }
            // The map's sharer view must match the shadow.
            let map_sharers: Vec<u16> = map
                .sharers(LineAddr::new(line))
                .iter()
                .map(|c| c.index() as u16)
                .collect();
            let shadow_sharers: Vec<u16> = holders.iter().copied().collect();
            assert_eq!(map_sharers, shadow_sharers, "case {case}");
        }
    }
}

/// Barriers release exactly when the last participant arrives, at the
/// maximum arrival time plus the device latency, whatever the order.
#[test]
fn barrier_release_law() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xBA44 + case);
        let arrival_ts: Vec<u64> = (0..4).map(|_| rng.next_below(10_000)).collect();
        let latency = rng.next_below(16);
        // Fisher-Yates shuffle of the arrival order.
        let mut order = [0u16, 1, 2, 3];
        for i in (1..4).rev() {
            order.swap(i, rng.next_below(i as u64 + 1) as usize);
        }
        let mut dev = SyncDevice::new(4, latency, 1);
        let mut released = None;
        for (i, &core) in order.iter().enumerate() {
            let ts = arrival_ts[core as usize];
            let out = dev.barrier_arrive(CoreId::new(core), 0, Cycle::new(ts));
            if i < 3 {
                assert!(out.is_none(), "case {case}: released early");
            } else {
                released = out;
            }
        }
        let (release, cores) = released.expect("all arrived");
        let max_ts = *arrival_ts.iter().max().expect("nonempty");
        assert_eq!(release.as_u64(), max_ts + latency, "case {case}");
        assert_eq!(cores.len(), 4, "case {case}");
    }
}

/// Locks provide mutual exclusion with FIFO handover: grants never
/// overlap and follow request order among waiters.
#[test]
fn lock_fifo_mutual_exclusion() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x10CC + case);
        let len = 2 + rng.next_below(18) as usize;
        let mut dev = SyncDevice::new(4, 1, 2);
        let mut hold_order: Vec<u16> = Vec::new();
        let mut queue: Vec<u16> = Vec::new();
        let mut holder: Option<u16> = None;
        // All on one lock id; each core acquires then releases immediately
        // at a later timestamp.
        let mut t = 0u64;
        for _ in 0..len {
            let core = rng.next_below(4) as u16;
            t += rng.next_below(1_000);
            match dev.lock_acquire(CoreId::new(core), 9, Cycle::new(t)) {
                Some(_) => {
                    assert!(holder.is_none(), "case {case}: grant while held");
                    holder = Some(core);
                    hold_order.push(core);
                }
                None => queue.push(core),
            }
            // Holder releases immediately.
            if let Some(h) = holder.take() {
                t += 1;
                if let Some((next, _)) = dev.lock_release(CoreId::new(h), 9, Cycle::new(t)) {
                    let expected = queue.remove(0);
                    assert_eq!(next.index() as u16, expected, "case {case}: FIFO handover");
                    holder = Some(next.index() as u16);
                    hold_order.push(expected);
                }
            }
        }
        assert!(!hold_order.is_empty(), "case {case}");
    }
}

/// Sharer-set persistence is canonical at directory scale: for random
/// populations over up to 1024 cores — crossing the inline/spilled
/// boundary in both directions — save → load reproduces an equal set,
/// and re-saving the loaded set reproduces identical bytes.
#[test]
fn sharer_set_save_load_round_trips_at_directory_scale() {
    use slacksim_cmp::sharers::SharerSet;
    use slacksim_core::persist::{ByteReader, ByteWriter};

    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x54A12 + case);
        let n_cores = 1 + rng.next_below(1024) as usize;
        let mut set = SharerSet::new();
        for _ in 0..rng.next_below(48) {
            let core = CoreId::new(rng.next_below(n_cores as u64) as u16);
            if rng.next_below(4) == 0 {
                set.remove(core);
            } else {
                set.insert(core);
            }
        }
        let mut w = ByteWriter::new();
        set.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let loaded = SharerSet::load(&mut r, n_cores).expect("load");
        r.finish().expect("no trailing bytes");
        assert_eq!(loaded, set, "case {case}: {n_cores} cores");
        let mut w2 = ByteWriter::new();
        loaded.save(&mut w2);
        assert_eq!(
            w2.into_bytes(),
            bytes,
            "case {case}: re-save must be byte-identical"
        );
    }
}

/// Directory persistence past the bus cap: random transaction histories
/// at 32–1024 cores survive save → load bit-identically, bank states,
/// sharer sets, monitors and counters included.
#[test]
fn directory_save_load_round_trips_past_sixteen_cores() {
    use slacksim_cmp::directory::Directory;
    use slacksim_core::persist::{ByteReader, ByteWriter};

    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xD15C0 + case);
        let n_cores = [32usize, 64, 128, 1024][rng.next_below(4) as usize];
        let mut dir = Directory::new(n_cores, 4);
        for i in 0..1 + rng.next_below(200) {
            let op = [BusOp::Rd, BusOp::RdX, BusOp::Upgr, BusOp::Wb][rng.next_below(4) as usize];
            let line = LineAddr::new(rng.next_below(512));
            let core = CoreId::new(rng.next_below(n_cores as u64) as u16);
            dir.access(op, line, core, Cycle::new(i * 13 + rng.next_below(7)));
        }
        let mut w = ByteWriter::new();
        dir.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Directory::new(n_cores, 4);
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).expect("load");
        r.finish().expect("no trailing bytes");
        assert_eq!(restored, dir, "case {case}: {n_cores} cores");
        assert_eq!(restored.transitions(), dir.transitions(), "case {case}");
        assert_eq!(
            restored.order_violations(),
            dir.order_violations(),
            "case {case}"
        );
    }
}
