//! Host-time self-profiler: scoped spans over a fixed site enum.
//!
//! The tracer and metrics registry observe *simulated* time; this module
//! answers the complementary question — where does the *host's* wall clock
//! go? Every interesting stretch of engine code (a core burst, a manager
//! drain, each tier of the spin→yield→park wait ladder, checkpoint capture
//! and restore, persist I/O, export) is bracketed by a [`ProfScope`] guard
//! tagged with a [`ProfSite`]. On drop the guard reads the monotonic clock
//! and accumulates the elapsed nanoseconds into shared per-site atomics,
//! splitting *total* time from *self* time (total minus time spent in
//! nested scopes on the same thread).
//!
//! The cost model mirrors [`super::trace::Tracer`]:
//!
//! * **disabled** (the default): entering a scope is one relaxed atomic
//!   load and the guard is inert — cheap enough to leave in release-mode
//!   hot loops;
//! * **enabled**: two monotonic-clock reads per scope plus three relaxed
//!   `fetch_add`s on drop. No locks, no allocation, ever.
//!
//! Because accumulation goes straight into the shared [`Profiler`] atomics
//! (rather than thread-local tables merged at the end), a concurrent
//! observer — the live-telemetry emitter in [`super::live`] — can read
//! per-site totals mid-run without stalling any engine thread.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum supported scope nesting depth per thread. Deeper nesting still
/// times correctly in *total* terms; self-time attribution just stops
/// subtracting children past this depth (the engines nest at most 2 deep).
const MAX_DEPTH: usize = 8;

/// Every instrumented stretch of engine code. The set is fixed at compile
/// time so per-site accumulators live in a flat array indexed without
/// hashing or allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfSite {
    /// A core advancing target cycles inside its slack window (both
    /// engines' burst loops).
    CoreTick = 0,
    /// A core thread in the spin tier of the wait ladder.
    CoreWaitSpin = 1,
    /// A core thread in the yield tier of the wait ladder.
    CoreWaitYield = 2,
    /// A core thread parked (timed) at the bottom of the wait ladder.
    CoreWaitPark = 3,
    /// The manager moving events from core OutQs into the global queue.
    ManagerDrain = 4,
    /// The manager servicing the global queue through the uncore model.
    ManagerService = 5,
    /// The manager in the spin tier of its wait ladder.
    ManagerWaitSpin = 6,
    /// The manager in the yield tier of its wait ladder.
    ManagerWaitYield = 7,
    /// The manager parked (timed) at the bottom of its wait ladder.
    ManagerWaitPark = 8,
    /// Capturing a checkpoint (full clone or delta capture).
    CheckpointCapture = 9,
    /// Committing a captured checkpoint into the standing base (delta
    /// merge / bookkeeping after a successful interval).
    CheckpointApply = 10,
    /// Restoring model state from a checkpoint during rollback.
    CheckpointRestore = 11,
    /// Durable snapshot encode + atomic write (`--save-state`).
    PersistIo = 12,
    /// Rendering/writing report artifacts after the run.
    Export = 13,
    /// The batched engine's inner loop: one core running a full quantum
    /// window in a single `run_window` call.
    BatchedRun = 14,
    /// The batched engine's quantum-boundary resolution: staged cross-core
    /// events serviced in timestamp order.
    BatchedResolve = 15,
    /// A shard-manager thread forwarding its cores' events toward the
    /// root (threaded engine with `shards > 1`).
    ShardService = 16,
}

/// Number of profiling sites (length of [`ProfSite::ALL`]).
pub const SITE_COUNT: usize = 17;

impl ProfSite {
    /// Every site, in index order.
    pub const ALL: [ProfSite; SITE_COUNT] = [
        ProfSite::CoreTick,
        ProfSite::CoreWaitSpin,
        ProfSite::CoreWaitYield,
        ProfSite::CoreWaitPark,
        ProfSite::ManagerDrain,
        ProfSite::ManagerService,
        ProfSite::ManagerWaitSpin,
        ProfSite::ManagerWaitYield,
        ProfSite::ManagerWaitPark,
        ProfSite::CheckpointCapture,
        ProfSite::CheckpointApply,
        ProfSite::CheckpointRestore,
        ProfSite::PersistIo,
        ProfSite::Export,
        ProfSite::BatchedRun,
        ProfSite::BatchedResolve,
        ProfSite::ShardService,
    ];

    /// Stable kebab-case name used in tables, CSV and heartbeat JSON.
    pub fn name(self) -> &'static str {
        match self {
            ProfSite::CoreTick => "core-tick",
            ProfSite::CoreWaitSpin => "core-wait-spin",
            ProfSite::CoreWaitYield => "core-wait-yield",
            ProfSite::CoreWaitPark => "core-wait-park",
            ProfSite::ManagerDrain => "manager-drain",
            ProfSite::ManagerService => "manager-service",
            ProfSite::ManagerWaitSpin => "manager-wait-spin",
            ProfSite::ManagerWaitYield => "manager-wait-yield",
            ProfSite::ManagerWaitPark => "manager-wait-park",
            ProfSite::CheckpointCapture => "checkpoint-capture",
            ProfSite::CheckpointApply => "checkpoint-apply",
            ProfSite::CheckpointRestore => "checkpoint-restore",
            ProfSite::PersistIo => "persist-io",
            ProfSite::Export => "export",
            ProfSite::BatchedRun => "batched-run",
            ProfSite::BatchedResolve => "batched-resolve",
            ProfSite::ShardService => "shard-service",
        }
    }

    /// Parses a stable site name back to the site (inverse of
    /// [`name`](Self::name)).
    pub fn parse(name: &str) -> Option<ProfSite> {
        ProfSite::ALL.iter().copied().find(|s| s.name() == name)
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// One site's shared accumulators.
#[derive(Debug)]
struct SiteAtom {
    count: AtomicU64,
    self_ns: AtomicU64,
    total_ns: AtomicU64,
}

impl SiteAtom {
    const fn zero() -> SiteAtom {
        SiteAtom {
            count: AtomicU64::new(0),
            self_ns: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct ProfShared {
    enabled: AtomicBool,
    sites: [SiteAtom; SITE_COUNT],
}

/// The shared half of the profiler: the enable flag plus the per-site
/// accumulators. Cloning is cheap (`Arc`); every clone and every
/// [`ProfHandle`] observes the same flag and feeds the same totals.
///
/// # Examples
///
/// ```
/// use slacksim_core::obs::prof::{ProfSite, Profiler};
///
/// let prof = Profiler::enabled();
/// let handle = prof.handle();
/// {
///     let _outer = handle.enter(ProfSite::ManagerService);
///     let _inner = handle.enter(ProfSite::CheckpointCapture);
/// }
/// let (count, self_ns, total_ns) = prof.site_totals(ProfSite::ManagerService);
/// assert_eq!(count, 1);
/// assert!(self_ns <= total_ns);
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    shared: Arc<ProfShared>,
}

impl Profiler {
    fn with_enabled(on: bool) -> Self {
        Profiler {
            shared: Arc::new(ProfShared {
                enabled: AtomicBool::new(on),
                sites: [const { SiteAtom::zero() }; SITE_COUNT],
            }),
        }
    }

    /// Creates an enabled profiler.
    pub fn enabled() -> Self {
        Profiler::with_enabled(true)
    }

    /// Creates a disabled profiler: every [`ProfHandle::enter`] costs one
    /// relaxed atomic load and returns an inert guard.
    pub fn disabled() -> Self {
        Profiler::with_enabled(false)
    }

    /// Whether timing is currently enabled (relaxed load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Creates a per-thread scope handle. Handles are `Send` (move one
    /// onto each engine thread) but not `Sync`: the nesting stack is
    /// thread-local by construction.
    pub fn handle(&self) -> ProfHandle {
        ProfHandle {
            shared: Arc::clone(&self.shared),
            depth: Cell::new(0),
            child_ns: [const { Cell::new(0) }; MAX_DEPTH],
        }
    }

    /// A site's accumulated `(count, self_ns, total_ns)` so far (relaxed
    /// loads — safe to call concurrently with recording threads; the live
    /// emitter does exactly that).
    pub fn site_totals(&self, site: ProfSite) -> (u64, u64, u64) {
        let a = &self.shared.sites[site.idx()];
        (
            a.count.load(Ordering::Relaxed),
            a.self_ns.load(Ordering::Relaxed),
            a.total_ns.load(Ordering::Relaxed),
        )
    }

    /// Sum of self-time over every site, in nanoseconds.
    pub fn total_self_ns(&self) -> u64 {
        self.shared
            .sites
            .iter()
            .map(|a| a.self_ns.load(Ordering::Relaxed))
            .sum()
    }

    /// Freezes the accumulated totals into a [`ProfData`] for the final
    /// report. `wall` is the run's measured wall-clock and `threads` the
    /// number of host threads that were recording (cores + manager on the
    /// threaded engine, 1 on the sequential engine) — together they define
    /// the coverage denominator.
    pub fn snapshot(&self, wall: Duration, threads: u64) -> ProfData {
        let mut sites = Vec::new();
        for site in ProfSite::ALL {
            let (count, self_ns, total_ns) = self.site_totals(site);
            if count > 0 {
                sites.push(SiteStat {
                    site,
                    count,
                    self_ns,
                    total_ns,
                });
            }
        }
        ProfData {
            sites,
            wall_ns: wall.as_nanos() as u64,
            threads: threads.max(1),
        }
    }
}

/// A per-thread handle that opens [`ProfScope`] guards and tracks their
/// nesting so self-time can be attributed (total minus nested children).
#[derive(Debug)]
pub struct ProfHandle {
    shared: Arc<ProfShared>,
    depth: Cell<usize>,
    child_ns: [Cell<u64>; MAX_DEPTH],
}

impl ProfHandle {
    /// Opens a scope over `site`; timing stops when the guard drops.
    ///
    /// When the profiler is disabled this is one relaxed atomic load and
    /// the returned guard is inert.
    #[inline]
    pub fn enter(&self, site: ProfSite) -> ProfScope<'_> {
        if !self.shared.enabled.load(Ordering::Relaxed) {
            return ProfScope { inner: None };
        }
        let depth = self.depth.get();
        if depth < MAX_DEPTH {
            self.child_ns[depth].set(0);
        }
        self.depth.set(depth + 1);
        ProfScope {
            inner: Some(ScopeInner {
                handle: self,
                site,
                start: Instant::now(),
            }),
        }
    }

    /// Whether the owning profiler is enabled (relaxed load) — lets
    /// callers skip argument computation for scope-adjacent work.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct ScopeInner<'a> {
    handle: &'a ProfHandle,
    site: ProfSite,
    start: Instant,
}

/// An RAII span guard: drop it to stop the clock and accumulate the
/// elapsed time into the profiler (see [`ProfHandle::enter`]).
#[derive(Debug)]
#[must_use = "a ProfScope times the span until it is dropped"]
pub struct ProfScope<'a> {
    inner: Option<ScopeInner<'a>>,
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let total = inner.start.elapsed().as_nanos() as u64;
        let h = inner.handle;
        let depth = h.depth.get().saturating_sub(1);
        h.depth.set(depth);
        let child = if depth < MAX_DEPTH {
            h.child_ns[depth].get()
        } else {
            0
        };
        if depth > 0 && depth - 1 < MAX_DEPTH {
            let parent = &h.child_ns[depth - 1];
            parent.set(parent.get().saturating_add(total));
        }
        let atom = &h.shared.sites[inner.site.idx()];
        atom.count.fetch_add(1, Ordering::Relaxed);
        atom.self_ns
            .fetch_add(total.saturating_sub(child), Ordering::Relaxed);
        atom.total_ns.fetch_add(total, Ordering::Relaxed);
    }
}

/// One site's frozen statistics in a [`ProfData`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteStat {
    /// The instrumented site.
    pub site: ProfSite,
    /// Number of spans recorded.
    pub count: u64,
    /// Nanoseconds spent in the site itself (nested scopes subtracted).
    pub self_ns: u64,
    /// Nanoseconds spent in the site including nested scopes.
    pub total_ns: u64,
}

/// The host-time profile attached to a finished run's `SimReport`:
/// per-site span counts and self/total nanoseconds, plus the wall-clock
/// and thread count that define coverage.
#[derive(Debug, Clone, Default)]
pub struct ProfData {
    /// Per-site statistics, in [`ProfSite::ALL`] order, sites with at
    /// least one span only.
    pub sites: Vec<SiteStat>,
    /// The run's measured wall-clock, in nanoseconds.
    pub wall_ns: u64,
    /// Host threads that were recording (coverage denominator is
    /// `wall_ns × threads`).
    pub threads: u64,
}

impl ProfData {
    /// Adds externally measured host time to a site (used by the CLI to
    /// account export/write time that happens after the engine returned).
    pub fn record(&mut self, site: ProfSite, count: u64, ns: u64) {
        match self.sites.iter_mut().find(|s| s.site == site) {
            Some(s) => {
                s.count += count;
                s.self_ns += ns;
                s.total_ns += ns;
            }
            None => self.sites.push(SiteStat {
                site,
                count,
                self_ns: ns,
                total_ns: ns,
            }),
        }
    }

    /// Sum of self-time over every site, in nanoseconds.
    pub fn total_self_ns(&self) -> u64 {
        self.sites.iter().map(|s| s.self_ns).sum()
    }

    /// Fraction of the available host time (`wall × threads`) accounted
    /// for by self-time, in `[0, 1]`-ish (can exceed 1 slightly when
    /// clock reads straddle scope edges). 0 when no wall-clock was set.
    pub fn coverage(&self) -> f64 {
        let denom = self.wall_ns.saturating_mul(self.threads.max(1));
        if denom == 0 {
            return 0.0;
        }
        self.total_self_ns() as f64 / denom as f64
    }

    /// Renders the per-site table as aligned text (see
    /// [`super::export::prof_table`]).
    pub fn table(&self) -> String {
        super::export::prof_table(self)
    }

    /// Renders the per-site table as CSV (see
    /// [`super::export::prof_csv`]).
    pub fn csv(&self) -> String {
        super::export::prof_csv(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_are_stable_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, site) in ProfSite::ALL.into_iter().enumerate() {
            assert_eq!(site.idx(), i, "ALL order matches discriminants");
            assert!(seen.insert(site.name()), "duplicate name {}", site.name());
            assert_eq!(ProfSite::parse(site.name()), Some(site));
        }
        assert_eq!(seen.len(), SITE_COUNT);
        assert_eq!(ProfSite::parse("no-such-site"), None);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let prof = Profiler::disabled();
        let h = prof.handle();
        for _ in 0..100 {
            let _s = h.enter(ProfSite::CoreTick);
        }
        assert_eq!(prof.site_totals(ProfSite::CoreTick), (0, 0, 0));
        assert!(prof.snapshot(Duration::from_secs(1), 1).sites.is_empty());
    }

    #[test]
    fn scopes_accumulate_counts_and_time() {
        let prof = Profiler::enabled();
        let h = prof.handle();
        for _ in 0..10 {
            let _s = h.enter(ProfSite::ManagerDrain);
        }
        let (count, self_ns, total_ns) = prof.site_totals(ProfSite::ManagerDrain);
        assert_eq!(count, 10);
        assert_eq!(self_ns, total_ns, "no nesting => self equals total");
    }

    #[test]
    fn nested_scope_time_is_subtracted_from_parent_self() {
        let prof = Profiler::enabled();
        let h = prof.handle();
        {
            let _outer = h.enter(ProfSite::ManagerService);
            {
                let _inner = h.enter(ProfSite::CheckpointCapture);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        let (_, outer_self, outer_total) = prof.site_totals(ProfSite::ManagerService);
        let (_, inner_self, inner_total) = prof.site_totals(ProfSite::CheckpointCapture);
        assert!(
            inner_self >= 10_000_000,
            "inner slept ~20ms: {inner_self}ns"
        );
        assert_eq!(inner_self, inner_total);
        assert!(
            outer_total >= inner_total,
            "outer total {outer_total} contains inner {inner_total}"
        );
        assert!(
            outer_self < outer_total / 2,
            "outer self {outer_self} must exclude the inner sleep ({outer_total} total)"
        );
    }

    #[test]
    fn handles_merge_across_threads() {
        let prof = Profiler::enabled();
        let joins: Vec<_> = (0..4)
            .map(|_| {
                let h = prof.handle();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let _s = h.enter(ProfSite::CoreTick);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().expect("profiled thread");
        }
        let (count, _, _) = prof.site_totals(ProfSite::CoreTick);
        assert_eq!(count, 100);
    }

    #[test]
    fn snapshot_and_record_roundtrip() {
        let prof = Profiler::enabled();
        let h = prof.handle();
        drop(h.enter(ProfSite::CoreTick));
        let mut data = prof.snapshot(Duration::from_millis(100), 2);
        assert_eq!(data.threads, 2);
        assert_eq!(data.sites.len(), 1);
        data.record(ProfSite::Export, 1, 5_000);
        data.record(ProfSite::Export, 1, 5_000);
        let exp = data
            .sites
            .iter()
            .find(|s| s.site == ProfSite::Export)
            .expect("export site added");
        assert_eq!(exp.count, 2);
        assert_eq!(exp.self_ns, 10_000);
        assert!(data.total_self_ns() >= 10_000);
        assert!(data.coverage() > 0.0);
    }

    #[test]
    fn deep_nesting_past_cap_still_counts_totals() {
        let prof = Profiler::enabled();
        let h = prof.handle();
        fn nest(h: &ProfHandle, n: usize) {
            if n == 0 {
                return;
            }
            let _s = h.enter(ProfSite::CoreTick);
            nest(h, n - 1);
        }
        nest(&h, MAX_DEPTH + 4);
        let (count, _, _) = prof.site_totals(ProfSite::CoreTick);
        assert_eq!(count as usize, MAX_DEPTH + 4);
    }
}
