//! Small deterministic pseudo-random number generators.
//!
//! The kernel and the workload generators need reproducible randomness whose
//! stream is stable across library upgrades (an experiment rerun a year later
//! must produce the same instruction streams and host-schedule perturbations).
//! We therefore ship a self-contained [SplitMix64] seeder and a
//! [xoshiro256\*\*] generator instead of depending on an external RNG crate.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256\*\*]: https://prng.di.unimi.it/xoshiro256starstar.c

/// SplitMix64: a tiny, high-quality 64-bit mixer used to expand a single
/// `u64` seed into the xoshiro state (and usable as a generator on its own).
///
/// # Examples
///
/// ```
/// use slacksim_core::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed, including 0, is valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workhorse generator for workload streams and the
/// deterministic engine's burst scheduler.
///
/// Deterministic: two generators created with the same seed produce the same
/// sequence forever.
///
/// # Examples
///
/// ```
/// use slacksim_core::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::new(42);
/// let in_range = rng.next_below(10);
/// assert!(in_range < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator seeded via SplitMix64 expansion of `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `0..bound` using Lemire's
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire (2019): unbiased bounded generation without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The raw generator state (persistence).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from raw state captured via
    /// [`state`](Self::state); the stream continues exactly where it left
    /// off.
    pub const fn from_state(s: [u64; 4]) -> Self {
        Xoshiro256 { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values from the canonical C implementation with seed 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::new(123);
        let mut b = Xoshiro256::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = Xoshiro256::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Xoshiro256::new(99);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[rng.next_below(8) as usize] += 1;
        }
        let expected = n / 8;
        for &b in &buckets {
            // 5% tolerance is generous at this sample size.
            assert!((b as i64 - expected as i64).unsigned_abs() < expected as u64 / 20);
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut rng = Xoshiro256::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.next_range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::new(11);
        for _ in 0..100 {
            assert!(!rng.chance(0, 10));
            assert!(rng.chance(10, 10));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(13);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        Xoshiro256::new(1).next_below(0);
    }
}
