//! Durable campaign artifacts: the manifest, per-job result rows, and
//! the streamed / final aggregate renderings.
//!
//! A campaign directory holds:
//!
//! * `manifest.json` — written atomically once, before any job runs:
//!   grid size, the canonical spec fingerprint (compared on resume so a
//!   changed spec is refused, not silently merged), and the original
//!   spec source (so `--dir` alone can resume a campaign).
//! * `jobs/<token>/report.json` — one [`JobRow`] per finished job,
//!   written atomically *before* that job's checkpoints are pruned: a
//!   crash between the two leaves either a resumable checkpoint or a
//!   finished report, never neither. Its existence is the job's "done"
//!   marker on resume.
//! * `aggregate.jsonl` — the streaming aggregate: one [`JobRow`] line
//!   appended as each job settles (`tail -f`-able alongside the
//!   heartbeats). Rebuilt from scratch on resume, so a half-written
//!   line from a kill never survives into the final artifact.
//! * `aggregate.csv` — the final aggregate, written atomically when the
//!   campaign completes: all rows in grid order under [`CSV_HEADER`].
//!
//! Every field in a row is simulated-outcome data (cycles, commits,
//! violations) or grid identity — never wall-clock — so for
//! deterministic engines the final aggregate is byte-identical whether
//! the campaign ran uninterrupted or was SIGKILLed and resumed. That
//! byte-identity is the crash-safety acceptance test.

use crate::obs::escape_json;
use crate::obs::json::Json;

/// Version of the manifest / row JSON schemas (their `v` fields).
pub const AGGREGATE_VERSION: u64 = 1;

/// Header line of `aggregate.csv` (no trailing newline).
pub const CSV_HEADER: &str =
    "job,index,workload,scheme,uncore,bound,quantum,cores,seed,cycles,committed,violations";

/// Header line written by builds that predate the uncore column.
/// `slacksim report` still reads aggregates under this header, defaulting
/// every row's uncore to `bus`.
pub const LEGACY_CSV_HEADER: &str =
    "job,index,workload,scheme,bound,quantum,cores,seed,cycles,committed,violations";

/// The campaign manifest: identity of the grid a directory belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Expanded grid size.
    pub total: u64,
    /// Canonical spec fingerprint (`SweepSpec::canonical`).
    pub canonical: String,
    /// The original sweep-spec source text, verbatim.
    pub spec_source: String,
}

impl Manifest {
    /// Renders the manifest as a single JSON document.
    pub fn render(&self) -> String {
        format!(
            "{{\"v\":{AGGREGATE_VERSION},\"total\":{},\"canonical\":\"{}\",\"spec\":\"{}\"}}\n",
            self.total,
            escape_json(&self.canonical),
            escape_json(&self.spec_source),
        )
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed or version-skewed
    /// input.
    pub fn parse(src: &str) -> Result<Manifest, String> {
        let doc = Json::parse(src).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
        let v = doc
            .get("v")
            .and_then(Json::as_f64)
            .ok_or("manifest is missing 'v'")?;
        if v != AGGREGATE_VERSION as f64 {
            return Err(format!(
                "unsupported manifest version {v} (this build reads v={AGGREGATE_VERSION})"
            ));
        }
        let total = doc
            .get("total")
            .and_then(Json::as_f64)
            .filter(|t| *t >= 0.0 && t.fract() == 0.0)
            .ok_or("manifest is missing 'total'")? as u64;
        let canonical = doc
            .get("canonical")
            .and_then(Json::as_str)
            .ok_or("manifest is missing 'canonical'")?
            .to_string();
        let spec_source = doc
            .get("spec")
            .and_then(Json::as_str)
            .ok_or("manifest is missing 'spec'")?
            .to_string();
        Ok(Manifest {
            total,
            canonical,
            spec_source,
        })
    }
}

/// One settled job's deterministic outcome: the unit of aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRow {
    /// Dense grid index (expansion order).
    pub index: u64,
    /// The job's identity token (`Job::token`).
    pub token: String,
    /// Workload name.
    pub workload: String,
    /// Scheme-axis token (`SchemeKind::name`).
    pub scheme: String,
    /// Uncore-axis token (`UncoreToken::name`); rows written before the
    /// uncore axis existed parse back as `bus`.
    pub uncore: String,
    /// Bound-axis value.
    pub bound: u64,
    /// Quantum-axis value.
    pub quantum: u64,
    /// Core count.
    pub cores: u64,
    /// Run seed.
    pub seed: u64,
    /// Final global simulated cycles.
    pub cycles: u64,
    /// Committed target instructions.
    pub committed: u64,
    /// Total violations surviving in the committed timeline.
    pub violations: u64,
}

impl JobRow {
    /// Renders the row as one `\n`-terminated JSON line (the
    /// `report.json` body and the `aggregate.jsonl` record).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"v\":{AGGREGATE_VERSION},\"job\":\"{}\",\"index\":{},\"workload\":\"{}\",\"scheme\":\"{}\",\"uncore\":\"{}\",\"bound\":{},\"quantum\":{},\"cores\":{},\"seed\":{},\"cycles\":{},\"committed\":{},\"violations\":{}}}\n",
            escape_json(&self.token),
            self.index,
            escape_json(&self.workload),
            escape_json(&self.scheme),
            escape_json(&self.uncore),
            self.bound,
            self.quantum,
            self.cores,
            self.seed,
            self.cycles,
            self.committed,
            self.violations,
        )
    }

    /// Parses one row from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse_json(src: &str) -> Result<JobRow, String> {
        let doc = Json::parse(src.trim()).map_err(|e| format!("job row is not valid JSON: {e}"))?;
        let v = doc
            .get("v")
            .and_then(Json::as_f64)
            .ok_or("job row is missing 'v'")?;
        if v != AGGREGATE_VERSION as f64 {
            return Err(format!(
                "unsupported job-row version {v} (this build reads v={AGGREGATE_VERSION})"
            ));
        }
        let text = |key: &'static str| -> Result<String, String> {
            Ok(doc
                .get(key)
                .and_then(Json::as_str)
                .ok_or(format!("job row is missing '{key}'"))?
                .to_string())
        };
        let num = |key: &'static str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as u64)
                .ok_or(format!("job row is missing '{key}'"))
        };
        // Rows written before the uncore axis existed have no "uncore"
        // key; they were all bus runs.
        let uncore = match doc.get("uncore") {
            None => "bus".to_string(),
            Some(j) => j
                .as_str()
                .ok_or("job row field 'uncore' must be a string")?
                .to_string(),
        };
        Ok(JobRow {
            index: num("index")?,
            token: text("job")?,
            workload: text("workload")?,
            scheme: text("scheme")?,
            uncore,
            bound: num("bound")?,
            quantum: num("quantum")?,
            cores: num("cores")?,
            seed: num("seed")?,
            cycles: num("cycles")?,
            committed: num("committed")?,
            violations: num("violations")?,
        })
    }

    /// Renders the row as one CSV line (no trailing newline), matching
    /// [`CSV_HEADER`]. Tokens are `[a-z0-9-]` by construction, so no
    /// quoting is needed.
    pub fn render_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            self.token,
            self.index,
            self.workload,
            self.scheme,
            self.uncore,
            self.bound,
            self.quantum,
            self.cores,
            self.seed,
            self.cycles,
            self.committed,
            self.violations,
        )
    }
}

/// Renders the final aggregate CSV: header plus every row sorted into
/// grid order. Deterministic given equal row sets — the byte-identity
/// anchor of the kill-and-resume acceptance test.
pub fn render_aggregate_csv(rows: &[JobRow]) -> String {
    let mut sorted: Vec<&JobRow> = rows.iter().collect();
    sorted.sort_by_key(|r| r.index);
    let mut out = String::with_capacity(64 * (rows.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for row in sorted {
        out.push_str(&row.render_csv());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_row(index: u64) -> JobRow {
        JobRow {
            index,
            token: format!("fft-bounded-b8-q50-c2-s{index}"),
            workload: "fft".to_string(),
            scheme: "bounded".to_string(),
            uncore: "bus".to_string(),
            bound: 8,
            quantum: 50,
            cores: 2,
            seed: index,
            cycles: 120_000 + index,
            committed: 40_000,
            violations: 17,
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            total: 24,
            canonical: "v1;commit=4000;engine=seq;...".to_string(),
            spec_source: "{\n  \"v\": 1\n}".to_string(),
        };
        let parsed = Manifest::parse(&m.render()).unwrap();
        assert_eq!(parsed, m, "escaping preserves newlines and quotes");
    }

    #[test]
    fn manifest_rejections_name_the_problem() {
        assert!(Manifest::parse("{").unwrap_err().contains("not valid JSON"));
        assert!(
            Manifest::parse("{\"v\":2,\"total\":1,\"canonical\":\"c\",\"spec\":\"s\"}")
                .unwrap_err()
                .contains("version 2")
        );
        assert!(Manifest::parse("{\"v\":1,\"total\":1,\"spec\":\"s\"}")
            .unwrap_err()
            .contains("'canonical'"));
    }

    #[test]
    fn job_row_round_trips_through_json() {
        let row = demo_row(3);
        let parsed = JobRow::parse_json(&row.render_json()).unwrap();
        assert_eq!(parsed, row);
    }

    #[test]
    fn legacy_job_rows_parse_as_bus() {
        // A report.json written before the uncore axis existed.
        let legacy = "{\"v\":1,\"job\":\"fft-cc-b8-q50-c2-s1\",\"index\":0,\
                      \"workload\":\"fft\",\"scheme\":\"cc\",\"bound\":8,\
                      \"quantum\":50,\"cores\":2,\"seed\":1,\"cycles\":100,\
                      \"committed\":50,\"violations\":0}";
        let row = JobRow::parse_json(legacy).unwrap();
        assert_eq!(row.uncore, "bus");
    }

    #[test]
    fn aggregate_csv_is_sorted_and_headed() {
        let rows = vec![demo_row(2), demo_row(0), demo_row(1)];
        let csv = render_aggregate_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 4);
        for (i, line) in lines[1..].iter().enumerate() {
            assert!(
                line.contains(&format!("s{i},")),
                "row {i} sorted into place: {line}"
            );
        }
        // Determinism: same rows in any order render identical bytes.
        let csv2 = render_aggregate_csv(&[demo_row(1), demo_row(2), demo_row(0)]);
        assert_eq!(csv, csv2);
    }
}
