//! Tables 3 and 4: checkpoint-interval violation statistics under the
//! base adaptive scheme (0.01% target, 5% band).
//!
//! * Table 3 — fraction `F` of checkpoint intervals containing at least
//!   one violation (grows with the interval; paper: Barnes highest, LU
//!   lowest).
//! * Table 4 — mean distance `Dr` from the start of a violating interval
//!   to its first violation (grows sublinearly with the interval).
//!
//! Measured on the deterministic engine with checkpoint-only speculation
//! (checkpoints taken, never rolled back), exactly the paper's
//! instrumentation.

use slacksim::scheme::Scheme;
use slacksim::{Benchmark, EngineKind, SpeculationConfig};

use crate::runner::{adaptive, sim};
use crate::scale::Scale;
use crate::table::Table;

/// Checkpoint intervals, in simulated cycles (paper values).
pub const INTERVALS: [u64; 3] = [10_000, 50_000, 100_000];

/// Interval statistics for one benchmark at one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalStats {
    /// The benchmark measured.
    pub benchmark: Benchmark,
    /// The checkpoint interval in cycles.
    pub interval: u64,
    /// Fraction of intervals with at least one violation.
    pub fraction_violating: f64,
    /// Mean distance to the first violation in violating intervals
    /// (simulated cycles).
    pub first_distance: f64,
    /// Intervals observed.
    pub intervals_total: u64,
}

/// Measures one benchmark at one interval.
pub fn interval_stats(scale: &Scale, benchmark: Benchmark, interval: u64) -> IntervalStats {
    let mut s = sim(scale, benchmark);
    s.scheme(Scheme::Adaptive(adaptive(0.01, 5.0)))
        .engine(EngineKind::Sequential)
        .speculation(SpeculationConfig::checkpoint_only(interval));
    let r = s.run().expect("interval run");
    let total = r.kernel.get("intervals_total");
    let violating = r.kernel.get("intervals_violating");
    IntervalStats {
        benchmark,
        interval,
        fraction_violating: if total == 0 {
            0.0
        } else {
            violating as f64 / total as f64
        },
        first_distance: r.kernel.get("mean_first_violation_distance_x1000") as f64 / 1000.0,
        intervals_total: total,
    }
}

/// Measures the full grid.
pub fn measure(scale: &Scale) -> Vec<IntervalStats> {
    let mut out = Vec::new();
    for benchmark in Benchmark::ALL {
        for interval in INTERVALS {
            let s = interval_stats(scale, benchmark, interval);
            eprintln!(
                "table3/4: {benchmark} I={interval}: F={:.0}% Dr={:.1}k over {} intervals",
                s.fraction_violating * 100.0,
                s.first_distance / 1000.0,
                s.intervals_total
            );
            out.push(s);
        }
    }
    out
}

/// Renders Table 3 (fraction of violating intervals).
pub fn render_table3(stats: &[IntervalStats]) -> Table {
    let mut t =
        Table::new("Table 3. Fraction of checkpoint intervals that have at least one violation.");
    t.headers(["", "10K", "50K", "100K"]);
    for benchmark in Benchmark::ALL {
        let mut row = vec![benchmark.name().to_string()];
        for interval in INTERVALS {
            let s = find(stats, benchmark, interval);
            row.push(format!("{:.0}%", s.fraction_violating * 100.0));
        }
        t.row(row);
    }
    t.note("base scheme: adaptive slack, 0.01% target, 5% band (deterministic engine)");
    t
}

/// Renders Table 4 (mean distance to the first violation).
pub fn render_table4(stats: &[IntervalStats]) -> Table {
    let mut t = Table::new("Table 4. Average distance of first violation within one interval.");
    t.headers(["", "10K", "50K", "100K"]);
    for benchmark in Benchmark::ALL {
        let mut row = vec![benchmark.name().to_string()];
        for interval in INTERVALS {
            let s = find(stats, benchmark, interval);
            row.push(format!("{:.1}k", s.first_distance / 1000.0));
        }
        t.row(row);
    }
    t.note("distance in simulated cycles from interval start to its first violation");
    t
}

fn find(stats: &[IntervalStats], benchmark: Benchmark, interval: u64) -> &IntervalStats {
    stats
        .iter()
        .find(|s| s.benchmark == benchmark && s.interval == interval)
        .expect("full grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_match_paper() {
        assert_eq!(INTERVALS, [10_000, 50_000, 100_000]);
    }

    #[test]
    fn stats_are_measurable_at_small_scale() {
        let scale = Scale {
            commit: 120_000,
            seed: 1,
            cores: 8,
        };
        let s = interval_stats(&scale, Benchmark::Fft, 2_000);
        assert!(s.intervals_total > 3, "intervals: {}", s.intervals_total);
        assert!((0.0..=1.0).contains(&s.fraction_violating));
        assert!(s.first_distance >= 0.0);
        assert!(s.first_distance < 2_000.0, "Dr bounded by the interval");
    }

    #[test]
    fn render_produces_four_rows() {
        let stats: Vec<IntervalStats> = Benchmark::ALL
            .iter()
            .flat_map(|&benchmark| {
                INTERVALS.iter().map(move |&interval| IntervalStats {
                    benchmark,
                    interval,
                    fraction_violating: 0.5,
                    first_distance: 4_000.0,
                    intervals_total: 10,
                })
            })
            .collect();
        assert_eq!(render_table3(&stats).len(), 4);
        assert_eq!(render_table4(&stats).len(), 4);
    }
}
