//! Table 5: estimated overall simulation time of fully deployed
//! speculative slack simulation, from the paper's analytical model
//! (`Ts = (1−F)·Tcpt + F·Dr·Tcpt/I + F·Tcc`) fed with the measurements of
//! Tables 2–4.
//!
//! Paper shape: at a 0.01% base violation rate the estimate always exceeds
//! cycle-by-cycle time — speculation is not (yet) profitable.

use slacksim::model::{speculation_profitable, speculative_time, SpeculativeModelInputs};
use slacksim::scheme::Scheme;
use slacksim::{Benchmark, SpeculationConfig};

use crate::experiments::table34::{interval_stats, IntervalStats};
use crate::runner::{calibrated_adaptive, run_threaded};
use crate::scale::Scale;
use crate::table::Table;

/// Checkpoint intervals evaluated by the paper's Table 5.
pub const INTERVALS: [u64; 2] = [50_000, 100_000];

/// Model evaluation for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// The benchmark evaluated.
    pub benchmark: Benchmark,
    /// Measured cycle-by-cycle wall seconds.
    pub t_cc: f64,
    /// Estimated speculative time per interval of [`INTERVALS`].
    pub t_spec: [f64; 2],
    /// Whether the model predicts a win over CC per interval.
    pub profitable: [bool; 2],
}

/// Measures the model inputs and evaluates the estimate.
pub fn measure(scale: &Scale) -> Vec<Table5Row> {
    Benchmark::ALL
        .iter()
        .map(|&benchmark| {
            let t_cc = run_threaded(scale, benchmark, Scheme::CycleByCycle)
                .wall
                .as_secs_f64();
            let (adaptive_cfg, _) = calibrated_adaptive(scale, benchmark, 0.01, 5.0);
            let mut t_spec = [0.0; 2];
            let mut profitable = [false; 2];
            for (i, &interval) in INTERVALS.iter().enumerate() {
                // Tcpt: adaptive + checkpointing wall time (threaded).
                let mut sim = crate::runner::sim(scale, benchmark);
                sim.scheme(Scheme::Adaptive(adaptive_cfg.clone()))
                    .engine(slacksim::EngineKind::Threaded)
                    .speculation(SpeculationConfig::checkpoint_only(interval));
                let t_cpt = sim.run().expect("Tcpt run").wall.as_secs_f64();
                // F, Dr: deterministic interval statistics, measured on a
                // 10x longer run so that even 100k-cycle intervals are
                // observed many times.
                let stats_scale = Scale {
                    commit: scale.commit.saturating_mul(40),
                    ..*scale
                };
                let stats: IntervalStats = interval_stats(&stats_scale, benchmark, interval);
                let inputs = SpeculativeModelInputs {
                    t_cc,
                    t_cpt,
                    fraction_violating: stats.fraction_violating,
                    rollback_distance: stats.first_distance,
                    interval: interval as f64,
                };
                t_spec[i] = speculative_time(&inputs);
                profitable[i] = speculation_profitable(&inputs);
                eprintln!(
                    "table5: {benchmark} I={interval}: Tcc={t_cc:.3} Tcpt={t_cpt:.3} F={:.2} Dr={:.0} -> Ts={:.3}",
                    stats.fraction_violating, stats.first_distance, t_spec[i]
                );
            }
            Table5Row {
                benchmark,
                t_cc,
                t_spec,
                profitable,
            }
        })
        .collect()
}

/// Renders the table.
pub fn render(rows: &[Table5Row]) -> Table {
    let mut t = Table::new(
        "Table 5. Estimated overall simulation time of speculative simulation (seconds).",
    );
    t.headers(["", "CC", "50K", "100K"]);
    for r in rows {
        t.row([
            r.benchmark.name().to_string(),
            format!("{:.3}", r.t_cc),
            format!(
                "{:.3}{}",
                r.t_spec[0],
                if r.profitable[0] { " *" } else { "" }
            ),
            format!(
                "{:.3}{}",
                r.t_spec[1],
                if r.profitable[1] { " *" } else { "" }
            ),
        ]);
    }
    t.note("Ts = (1-F)·Tcpt + F·Dr·Tcpt/I + F·Tcc  (paper §5.2)");
    t.note("* = model predicts speculation beats cycle-by-cycle");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_match_paper() {
        assert_eq!(INTERVALS, [50_000, 100_000]);
    }

    #[test]
    fn render_marks_profitability() {
        let rows = vec![Table5Row {
            benchmark: Benchmark::Lu,
            t_cc: 1.0,
            t_spec: [0.8, 1.2],
            profitable: [true, false],
        }];
        let s = render(&rows).to_string();
        assert!(s.contains("0.800 *"));
        assert!(s.contains("1.200"));
    }
}
