//! On-disk snapshot encoding for the concrete CMP simulation.
//!
//! The generic engines expose checkpoints as borrowed
//! [`CheckpointView`]s and accept restored state as [`EngineResume`]
//! values; this module is where those views meet the concrete
//! [`CmpCore`]/[`CmpUncore`] models and become bytes. The container
//! format (magic, version, config fingerprint, checksum, atomic writes)
//! lives in [`slacksim_core::persist`]; this module owns the payload
//! layout and the checkpoint-directory conventions (`cp-<ordinal>` files,
//! newest kept, older pruned).

use std::path::{Path, PathBuf};

use slacksim_cmp::core::CmpCore;
use slacksim_cmp::event::MemEvent;
use slacksim_cmp::uncore::CmpUncore;
use slacksim_core::engine::{CheckpointView, EngineResume};
use slacksim_core::event::{Inbox, Timestamped};
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};
use slacksim_core::rng::Xoshiro256;
use slacksim_core::scheme::Scheme;
use slacksim_core::speculative::IntervalTracker;
use slacksim_core::time::Cycle;
use slacksim_core::violation::ViolationTally;

/// One line of the config fingerprint: the scheme with every parameter
/// that changes simulation behaviour, so a resume under a different bound
/// or seed is refused instead of silently diverging.
pub(crate) fn scheme_token(scheme: &Scheme) -> String {
    match scheme {
        Scheme::CycleByCycle => "cycle-by-cycle".to_owned(),
        Scheme::BoundedSlack { bound } => format!("bounded-slack:{bound}"),
        Scheme::UnboundedSlack => "unbounded-slack".to_owned(),
        Scheme::Quantum { quantum } => format!("quantum:{quantum}"),
        Scheme::Adaptive(cfg) => format!(
            "adaptive-slack:{}:{}:{}:{}:{}:{}:{:?}",
            cfg.target_rate,
            cfg.band,
            cfg.initial_bound,
            cfg.min_bound,
            cfg.max_bound,
            cfg.sample_period,
            cfg.step,
        ),
        Scheme::LaxP2p { lead, period, seed } => {
            format!("lax-p2p:{lead}:{period}:{seed}")
        }
    }
}

/// File name of checkpoint `ordinal` inside the save directory.
pub(crate) fn checkpoint_path(dir: &Path, ordinal: u64) -> PathBuf {
    dir.join(format!("cp-{ordinal:08}"))
}

/// Removes every `cp-*` file in `dir` other than the one just written.
/// Failures are ignored: pruning is housekeeping, and a leftover older
/// checkpoint is still a valid resume point.
pub(crate) fn prune_checkpoints(dir: &Path, keep: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(ordinal) = name.strip_prefix("cp-").and_then(|s| s.parse::<u64>().ok()) else {
            continue;
        };
        if ordinal != keep {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn save_tally(w: &mut ByteWriter, tally: ViolationTally) {
    for c in tally.counts() {
        w.u64(c);
    }
}

fn load_tally(r: &mut ByteReader<'_>) -> Result<ViolationTally, PersistError> {
    Ok(ViolationTally::from_counts([
        r.u64()?,
        r.u64()?,
        r.u64()?,
        r.u64()?,
        r.u64()?,
    ]))
}

fn save_inbox(w: &mut ByteWriter, inbox: &Inbox<MemEvent>) {
    let events = inbox.sorted_events();
    w.u32(events.len() as u32);
    for ev in &events {
        w.u64(ev.ts.as_u64());
        ev.payload.save_state(w);
    }
}

fn load_inbox(r: &mut ByteReader<'_>) -> Result<Inbox<MemEvent>, PersistError> {
    let n = r.u32()?;
    let mut inbox = Inbox::new();
    for _ in 0..n {
        let ts = Cycle::new(r.u64()?);
        let payload = MemEvent::load_state(r)?;
        inbox.deliver(Timestamped::new(ts, payload));
    }
    Ok(inbox)
}

/// Serializes a committed checkpoint into the snapshot payload (the
/// container around it — magic, version, fingerprint, checksum — is added
/// by [`slacksim_core::persist::encode_container`]).
pub(crate) fn encode_snapshot(view: &CheckpointView<'_, CmpCore, CmpUncore>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(view.ordinal);
    w.u64(view.global.as_u64());
    w.u32(view.cores.len() as u32);
    for (core, inbox) in &view.cores {
        core.save_state(&mut w);
        save_inbox(&mut w, inbox);
    }
    view.uncore.save_state(&mut w);
    w.u64(view.committed);
    save_tally(&mut w, view.tally);
    save_tally(&mut w, view.detected);
    w.u64(view.next_sample);
    save_tally(&mut w, view.last_sample_tally);
    w.u64(view.spec_stats.checkpoints);
    w.u64(view.spec_stats.rollbacks);
    w.u64(view.spec_stats.wasted_cycles);
    w.u64(view.spec_stats.replay_cycles);
    match view.tracker {
        Some(tr) => {
            w.bool(true);
            tr.save_state(&mut w);
        }
        None => w.bool(false),
    }
    view.pacer.save_state(&mut w);
    match view.rng {
        Some(rng) => {
            w.bool(true);
            for word in rng.state() {
                w.u64(word);
            }
        }
        None => w.bool(false),
    }
    w.u32(view.bound_trace.len() as u32);
    for &(cycle, bound) in view.bound_trace {
        w.u64(cycle.as_u64());
        w.u64(bound);
    }
    w.u64(view.max_spread);
    // Shard section (container format version 3): per-shard forwarded
    // counters from the threaded manager tree. Omitted entirely — not
    // written as a zero-length list — when the run has no remote shards,
    // so `--shards 1` snapshots stay byte-identical to version-2 files.
    if !view.shard_forwarded.is_empty() {
        w.u32(view.shard_forwarded.len() as u32);
        for &f in &view.shard_forwarded {
            w.u64(f);
        }
    }
    w.into_bytes()
}

/// Decodes a snapshot payload into restored engine state. `fresh_cores`
/// and `fresh_uncore` must be newly built from the same configuration as
/// the persisted run (streams at position zero, empty caches); each
/// model's `load_state` then rebuilds its exact state in place.
pub(crate) fn decode_snapshot(
    payload: &[u8],
    fresh_cores: Vec<CmpCore>,
    fresh_uncore: CmpUncore,
    scheme: &Scheme,
    spec_interval: Option<u64>,
) -> Result<EngineResume<CmpCore, CmpUncore>, PersistError> {
    let mut r = ByteReader::new(payload);
    let _ordinal = r.u64()?;
    let global = Cycle::new(r.u64()?);
    let n = r.u32()? as usize;
    if n != fresh_cores.len() {
        return Err(PersistError::Corrupt(
            "snapshot core count does not match the configuration",
        ));
    }
    let mut cores = Vec::with_capacity(n);
    for mut core in fresh_cores {
        core.load_state(&mut r)?;
        let inbox = load_inbox(&mut r)?;
        cores.push((core, inbox));
    }
    let mut uncore = fresh_uncore;
    uncore.load_state(&mut r)?;
    let committed = r.u64()?;
    let tally = load_tally(&mut r)?;
    let detected = load_tally(&mut r)?;
    let next_sample = r.u64()?;
    let last_sample_tally = load_tally(&mut r)?;
    let spec_stats = slacksim_core::speculative::SpeculationStats {
        checkpoints: r.u64()?,
        rollbacks: r.u64()?,
        wasted_cycles: r.u64()?,
        replay_cycles: r.u64()?,
    };
    let tracker = if r.bool()? {
        let interval = spec_interval.ok_or(PersistError::Corrupt(
            "snapshot carries an interval tracker but speculation is off",
        ))?;
        let mut tr = IntervalTracker::new(interval);
        tr.load_state(&mut r)?;
        Some(tr)
    } else {
        None
    };
    let mut pacer = scheme.clone().into_pacer();
    pacer.load_state(&mut r)?;
    let rng = if r.bool()? {
        Some(Xoshiro256::from_state([
            r.u64()?,
            r.u64()?,
            r.u64()?,
            r.u64()?,
        ]))
    } else {
        None
    };
    let n_bounds = r.u32()? as usize;
    let mut bound_trace = Vec::with_capacity(n_bounds.min(1 << 20));
    for _ in 0..n_bounds {
        bound_trace.push((Cycle::new(r.u64()?), r.u64()?));
    }
    let max_spread = r.u64()?;
    // Optional shard section: present only in sharded (version-3)
    // snapshots, so its absence is detected by payload exhaustion.
    let shard_forwarded = if r.remaining() > 0 {
        let k = r.u32()? as usize;
        let mut fwd = Vec::with_capacity(k.min(1 << 16));
        for _ in 0..k {
            fwd.push(r.u64()?);
        }
        fwd
    } else {
        Vec::new()
    };
    r.finish()?;
    Ok(EngineResume {
        global,
        cores,
        uncore,
        pacer,
        committed,
        tally,
        detected,
        next_sample,
        last_sample_tally,
        spec_stats,
        tracker,
        rng,
        bound_trace,
        max_spread,
        shard_forwarded,
    })
}
