//! Synthetic FFT (64 K points, paper Table 1).
//!
//! The SPLASH-2 radix-√N FFT alternates *compute* phases — streaming
//! butterfly arithmetic over thread-local rows — with all-to-all
//! *transpose* phases in which every thread reads blocks written by every
//! other thread, separated by global barriers. The generator reproduces
//! that signature: long FP-heavy streaming bursts over a private working
//! set that exceeds the L1, then short bursts of remote reads from other
//! threads' exported matrix regions (cache-to-cache transfers and
//! invalidation traffic), with a barrier between every phase.

use std::collections::VecDeque;

use slacksim_cmp::isa::{Instr, InstrStream, Op};
use slacksim_core::rng::Xoshiro256;

use crate::mix::{CodeWalker, FillerMix, Regions};
use crate::params::WorkloadParams;

/// Instructions per compute phase.
const COMPUTE_LEN: u64 = 6_000;
/// Instructions per transpose phase.
const TRANSPOSE_LEN: u64 = 1_600;
/// Per-thread matrix slice: 64 K points × 8 B / 8 threads = 64 KiB.
const SLICE_BYTES: u64 = 64 * 1024;
/// Private scratch working set (mostly L1-resident).
const SCRATCH_BYTES: u64 = 12 * 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Compute,
    Transpose,
}

/// Per-thread FFT instruction stream.
#[derive(Debug, Clone)]
pub struct FftStream {
    tid: usize,
    n_threads: usize,
    rng: Xoshiro256,
    code: CodeWalker,
    queue: VecDeque<Op>,
    phase: Phase,
    phase_left: i64,
    episode: u32,
    scratch_cursor: u64,
    slice_cursor: u64,
    remote_cursor: u64,
    partner: usize,
}

impl FftStream {
    /// Creates the stream for one workload thread.
    pub fn new(params: &WorkloadParams) -> Self {
        FftStream {
            tid: params.thread_id,
            n_threads: params.n_threads,
            rng: Xoshiro256::new(params.thread_seed(0xFF7)),
            code: CodeWalker::new(Regions::code(0), 2048),
            queue: VecDeque::new(),
            phase: Phase::Compute,
            phase_left: COMPUTE_LEN as i64,
            episode: 0,
            scratch_cursor: 0,
            slice_cursor: 0,
            remote_cursor: 0,
            partner: (params.thread_id + 1) % params.n_threads.max(1),
        }
    }

    fn next_partner(&mut self) {
        if self.n_threads > 1 {
            self.partner = (self.partner + 1) % self.n_threads;
            if self.partner == self.tid {
                self.partner = (self.partner + 1) % self.n_threads;
            }
        }
    }

    fn refill(&mut self) {
        if self.phase_left <= 0 {
            // Phase boundary: barrier, then switch.
            self.queue.push_back(Op::Barrier { id: self.episode });
            self.episode += 1;
            self.phase = match self.phase {
                Phase::Compute => {
                    self.phase_left = TRANSPOSE_LEN as i64;
                    self.code.rebase(Regions::code(1), 1024);
                    Phase::Transpose
                }
                Phase::Transpose => {
                    self.phase_left = COMPUTE_LEN as i64;
                    self.code.rebase(Regions::code(0), 2048);
                    self.next_partner();
                    Phase::Compute
                }
            };
            self.phase_left -= 1;
            return;
        }
        let chunk: u64 = match self.phase {
            Phase::Compute => self.compute_chunk(),
            Phase::Transpose => self.transpose_chunk(),
        };
        self.phase_left -= chunk as i64;
    }

    /// One butterfly: two loads from the (mostly resident) private
    /// scratch, a long FP tail, and one streaming store into the thread's
    /// exported matrix slice.
    fn compute_chunk(&mut self) -> u64 {
        let scratch = Regions::new(self.tid).private();
        let slice = Regions::thread_shared(self.tid);
        let mut count = 0u64;
        for _ in 0..2 {
            self.queue.push_back(Op::Load {
                addr: scratch + self.scratch_cursor,
            });
            self.scratch_cursor = (self.scratch_cursor + 8) % SCRATCH_BYTES;
            count += 1;
            for _ in 0..4 {
                self.queue.push_back(FillerMix::FP.draw(&mut self.rng));
                count += 1;
            }
        }
        // Stores revisit a 4 KiB per-phase segment of the slice: resident
        // after the first traversal, so bus writes concentrate at phase
        // starts (as real row-major butterflies do).
        let segment = (self.episode as u64 % (SLICE_BYTES / 4096)) * 4096;
        self.queue.push_back(Op::Store {
            addr: slice + segment + self.slice_cursor,
        });
        self.slice_cursor = (self.slice_cursor + 8) % 4096;
        count += 1;
        for _ in 0..8 {
            self.queue.push_back(FillerMix::FP.draw(&mut self.rng));
            count += 1;
        }
        count
    }

    /// One transpose step: a line-strided remote read from the current
    /// partner's slice plus a local store.
    fn transpose_chunk(&mut self) -> u64 {
        let remote = Regions::thread_shared(self.partner);
        let own = Regions::thread_shared(self.tid);
        let mut count = 0u64;
        self.queue.push_back(Op::Load {
            addr: remote + self.remote_cursor,
        });
        // Line-strided: every access is a fresh line of the remote slice.
        self.remote_cursor = (self.remote_cursor + 32) % SLICE_BYTES;
        count += 1;
        for _ in 0..8 {
            self.queue.push_back(FillerMix::INT.draw(&mut self.rng));
            count += 1;
        }
        self.queue.push_back(Op::Store {
            addr: own + (self.remote_cursor % SCRATCH_BYTES),
        });
        count += 1;
        for _ in 0..2 {
            self.queue.push_back(FillerMix::INT.draw(&mut self.rng));
            count += 1;
        }
        if self.rng.chance(1, 4) {
            self.next_partner();
        }
        count
    }
}

impl InstrStream for FftStream {
    fn next_instr(&mut self) -> Instr {
        if self.queue.is_empty() {
            self.refill();
        }
        let op = self.queue.pop_front().expect("refill fills the queue");
        let pc = self.code.pc();
        self.code.advance();
        Instr::new(op, pc)
    }

    fn clone_box(&self) -> Box<dyn InstrStream> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_testkit::{barrier_ids, determinism_check, op_census};

    fn stream(tid: usize) -> FftStream {
        FftStream::new(&WorkloadParams::new(tid, 8, 42))
    }

    #[test]
    fn deterministic_per_seed() {
        determinism_check(|| Box::new(stream(3)));
    }

    #[test]
    fn barriers_align_across_threads() {
        let a = barrier_ids(&mut stream(0), 40_000);
        let b = barrier_ids(&mut stream(5), 40_000);
        let shared = a.len().min(b.len());
        assert!(shared >= 3, "several phases in 40k instructions");
        assert_eq!(a[..shared], b[..shared], "same barrier sequence");
        // Episode ids are consecutive.
        assert!(a.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn mix_has_fp_and_memory() {
        let census = op_census(&mut stream(1), 30_000);
        assert!(census.loads > 3_000, "loads: {census:?}");
        assert!(census.stores > 1_000, "stores: {census:?}");
        assert!(census.fp > 5_000, "fp: {census:?}");
        assert!(census.barriers >= 3, "barriers: {census:?}");
        assert_eq!(census.locks, 0, "FFT uses no locks");
    }

    #[test]
    fn transpose_reads_remote_regions() {
        let mut s = stream(2);
        let mut remote_reads = 0;
        for _ in 0..40_000 {
            if let Op::Load { addr } = s.next_instr().op {
                let own = Regions::thread_shared(2);
                if (Regions::thread_shared(0)..Regions::thread_shared(16)).contains(&addr)
                    && !(own..own + 0x0100_0000).contains(&addr)
                {
                    remote_reads += 1;
                }
            }
        }
        assert!(remote_reads > 500, "remote reads: {remote_reads}");
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let mut s = FftStream::new(&WorkloadParams::new(0, 1, 1));
        for _ in 0..20_000 {
            let _ = s.next_instr();
        }
    }
}
