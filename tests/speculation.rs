//! Checkpointing and speculative rollback across the full stack.

use slacksim::scheme::Scheme;
use slacksim::{
    Benchmark, EngineKind, Simulation, SpeculationConfig, ViolationKind, ViolationSelect,
};

const COMMIT: u64 = 80_000;

#[test]
fn checkpoint_only_runs_barely_perturb_results() {
    // Checkpoint stop-syncs clamp the scheduling windows, which perturbs
    // the run slightly — the paper makes the same observation about its
    // own instrumentation (§3). The simulated outcome must stay within a
    // small tolerance of the uncheckpointed run.
    let plain = Simulation::new(Benchmark::Lu)
        .commit_target(COMMIT)
        .scheme(Scheme::BoundedSlack { bound: 8 })
        .engine(EngineKind::Sequential)
        .run()
        .expect("plain");
    let mut sim = Simulation::new(Benchmark::Lu);
    sim.commit_target(COMMIT)
        .scheme(Scheme::BoundedSlack { bound: 8 })
        .engine(EngineKind::Sequential)
        .speculation(SpeculationConfig::checkpoint_only(2_000));
    let checked = sim.run().expect("checkpointed");
    let err =
        slacksim::percent_error(checked.global_cycles as f64, plain.global_cycles as f64).abs();
    assert!(
        err < 1.0,
        "checkpointing perturbed execution time by {err:.3}%"
    );
    assert!(checked.committed >= COMMIT);
    assert!(checked.kernel.get("checkpoints") > 0);
    assert_eq!(checked.kernel.get("rollbacks"), 0);
}

#[test]
fn checkpoint_count_scales_inversely_with_interval() {
    let counts: Vec<u64> = [1_000u64, 4_000]
        .into_iter()
        .map(|interval| {
            let mut sim = Simulation::new(Benchmark::Fft);
            sim.commit_target(COMMIT)
                .scheme(Scheme::BoundedSlack { bound: 8 })
                .engine(EngineKind::Sequential)
                .speculation(SpeculationConfig::checkpoint_only(interval));
            sim.run().expect("run").kernel.get("checkpoints")
        })
        .collect();
    assert!(
        counts[0] > 2 * counts[1],
        "1k intervals must checkpoint far more often: {counts:?}"
    );
}

#[test]
fn rollback_on_all_violations_leaves_a_clean_timeline() {
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.commit_target(COMMIT)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Sequential)
        .speculation(SpeculationConfig::speculative(
            2_000,
            ViolationSelect::all(),
        ));
    let r = sim.run().expect("speculative run");
    assert!(r.committed >= COMMIT, "forward progress guaranteed");
    assert!(
        r.kernel.get("rollbacks") > 0,
        "FFT at bound 16 must violate"
    );
    assert!(r.kernel.get("replay_cycles") > 0);
    // Violations that triggered rollbacks were erased by restoring the
    // checkpoint; only the final (unfinished) interval may retain any.
    assert!(
        r.violations.total() <= r.kernel.get("violations_detected_total"),
        "surviving violations cannot exceed detections"
    );
}

#[test]
fn map_only_rollback_ignores_bus_violations() {
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.commit_target(COMMIT)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Sequential)
        .speculation(SpeculationConfig::speculative(
            2_000,
            ViolationSelect::only(&[ViolationKind::Map]),
        ));
    let r = sim.run().expect("speculative run");
    assert!(r.committed >= COMMIT);
    // Bus violations survive (not selected), so plenty remain.
    assert!(
        r.violations.count(ViolationKind::Bus) > 0,
        "unselected bus violations must survive"
    );
}

#[test]
fn speculative_execution_time_tracks_cc() {
    // With rollback-on-all, every violating interval is replayed
    // cycle-by-cycle, so the simulated execution time must be very close
    // to the CC reference.
    let cc = Simulation::new(Benchmark::WaterNsquared)
        .commit_target(COMMIT)
        .engine(EngineKind::Sequential)
        .run()
        .expect("cc");
    let mut sim = Simulation::new(Benchmark::WaterNsquared);
    sim.commit_target(COMMIT)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Sequential)
        .speculation(SpeculationConfig::speculative(
            2_000,
            ViolationSelect::all(),
        ));
    let spec = sim.run().expect("spec");
    let err = slacksim::percent_error(spec.global_cycles as f64, cc.global_cycles as f64).abs();
    assert!(err < 3.0, "speculative timeline error {err:.2}% vs CC");
}

#[test]
fn threaded_checkpointing_completes_and_counts() {
    let mut sim = Simulation::new(Benchmark::Lu);
    sim.commit_target(COMMIT)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Threaded)
        .speculation(SpeculationConfig::checkpoint_only(5_000));
    let r = sim.run().expect("threaded checkpointed run");
    assert!(r.committed >= COMMIT);
    assert!(r.kernel.get("checkpoints") > 0);
    assert_eq!(r.kernel.get("rollbacks"), 0);
}

#[test]
fn threaded_rollback_completes() {
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.commit_target(50_000)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Threaded)
        .speculation(SpeculationConfig::speculative(
            2_000,
            ViolationSelect::all(),
        ));
    let r = sim.run().expect("threaded speculative run");
    assert!(r.committed >= 50_000, "forward progress under rollback");
}

#[test]
fn one_cycle_interval_checkpoints_every_cycle_and_still_progresses() {
    // Degenerate interval I = 1: a checkpoint at every global cycle, so
    // every rollback lands exactly on a checkpoint boundary and every
    // replay covers at most one cycle. Forward progress must survive the
    // worst case the interval knob allows.
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.cores(2)
        .commit_target(2_000)
        .scheme(Scheme::BoundedSlack { bound: 4 })
        .engine(EngineKind::Sequential)
        .speculation(SpeculationConfig::speculative(1, ViolationSelect::all()));
    let r = sim.run().expect("degenerate-interval run completes");
    assert!(r.committed >= 2_000, "forward progress");
    assert!(r.kernel.get("checkpoints") > 0);
    // Each rollback replays its one-cycle interval in CC mode; replayed
    // cycles can never exceed one per rollback.
    assert!(r.kernel.get("replay_cycles") <= r.kernel.get("rollbacks"));
    assert!(r.kernel.get("violations_detected_total") >= r.violations.total());
}
