//! Synthetic Barnes-Hut N-body (1024 bodies, paper Table 1).
//!
//! SPLASH-2 Barnes spends most of its time walking a shared octree with
//! data-dependent, irregular reads, punctuated by locked updates of shared
//! tree cells and occasional whole-phase barriers. The generator
//! reproduces that signature: random-line loads over a shared tree region
//! much larger than the L1, frequent short lock/update/unlock episodes on
//! hashed cell locks, and a barrier every major phase. This gives Barnes
//! the highest bus density and the highest fraction of violating
//! checkpoint intervals in the paper (Table 3: 83–94 %).

use std::collections::VecDeque;

use slacksim_cmp::isa::{Instr, InstrStream, Op};
use slacksim_core::rng::Xoshiro256;

use crate::mix::{CodeWalker, FillerMix, Regions};
use crate::params::WorkloadParams;

/// Shared octree size (1024 bodies ≈ 2k cells × 128 B ≈ 256 KiB).
const TREE_BYTES: u64 = 256 * 1024;
/// Tree region offset inside the shared segment.
const TREE_OFFSET: u64 = 0x10_0000;
/// Distinct cell locks.
const CELL_LOCKS: u32 = 64;
/// Instructions between locked cell updates (mean).
const LOCK_PERIOD: u64 = 400;
/// Instructions per major phase (tree build / force / advance).
const PHASE_LEN: u64 = 40_000;
/// Private body array.
const BODY_BYTES: u64 = 16 * 1024;

/// Per-thread Barnes instruction stream.
#[derive(Debug, Clone)]
pub struct BarnesStream {
    tid: usize,
    rng: Xoshiro256,
    code: CodeWalker,
    queue: VecDeque<Op>,
    episode: u32,
    phase_left: i64,
    until_lock: u64,
    body_cursor: u64,
    /// Current subtree (pointer-chase locality state).
    subtree: u64,
    /// Line within the current subtree.
    walk_line: u64,
}

impl BarnesStream {
    /// Creates the stream for one workload thread.
    pub fn new(params: &WorkloadParams) -> Self {
        let mut rng = Xoshiro256::new(params.thread_seed(0xBA2));
        let subtree = rng.next_below(TREE_BYTES / 4096);
        let walk_line = rng.next_below(4096 / 32);
        BarnesStream {
            tid: params.thread_id,
            rng,
            code: CodeWalker::new(Regions::code(4), 3072),
            queue: VecDeque::new(),
            episode: 0,
            phase_left: PHASE_LEN as i64,
            until_lock: LOCK_PERIOD,
            body_cursor: 0,
            subtree,
            walk_line,
        }
    }

    fn tree_addr(&mut self) -> u64 {
        // Pointer-chase with strong temporal locality: the walk dwells
        // inside one L1-resident subtree (4 KiB) for a long stretch, then
        // jumps to a random subtree — the irregular component that
        // periodically floods the bus with a burst of misses.
        const SUBTREE_LINES: u64 = 4096 / 32;
        if self.rng.chance(1, 600) {
            self.subtree = self.rng.next_below(TREE_BYTES / 4096);
        }
        if self.rng.chance(1, 3) {
            self.walk_line = (self.walk_line + 1) % SUBTREE_LINES;
        } else {
            self.walk_line = self.rng.next_below(SUBTREE_LINES);
        }
        Regions::SHARED
            + TREE_OFFSET
            + self.subtree * 4096
            + self.walk_line * 32
            + self.rng.next_below(4) * 8
    }

    fn refill(&mut self) {
        if self.phase_left <= 0 {
            self.queue.push_back(Op::Barrier { id: self.episode });
            self.episode += 1;
            self.phase_left = PHASE_LEN as i64;
            self.phase_left -= 1;
            return;
        }
        let chunk = if self.until_lock == 0 {
            self.until_lock = LOCK_PERIOD / 2 + self.rng.next_below(LOCK_PERIOD);
            self.lock_episode()
        } else {
            self.walk_chunk()
        };
        self.phase_left -= chunk as i64;
    }

    /// A locked update of a shared tree cell: acquire, read-modify-write,
    /// release.
    fn lock_episode(&mut self) -> u64 {
        let id = self.rng.next_below(u64::from(CELL_LOCKS)) as u32;
        let cell = self.tree_addr();
        self.queue.push_back(Op::LockAcquire { id });
        self.queue.push_back(Op::Load { addr: cell });
        self.queue.push_back(FillerMix::INT.draw(&mut self.rng));
        self.queue.push_back(Op::Store { addr: cell });
        self.queue.push_back(Op::LockRelease { id });
        5
    }

    /// A few steps of tree walking plus private body bookkeeping.
    fn walk_chunk(&mut self) -> u64 {
        let mut count = 0u64;
        let addr = self.tree_addr();
        self.queue.push_back(Op::Load { addr });
        count += 1;
        for _ in 0..9 {
            self.queue.push_back(FillerMix::INT.draw(&mut self.rng));
            count += 1;
        }
        if self.rng.chance(1, 6) {
            let base = Regions::new(self.tid).private();
            self.queue.push_back(Op::Store {
                addr: base + self.body_cursor,
            });
            self.body_cursor = (self.body_cursor + 8) % BODY_BYTES;
            count += 1;
        }
        self.until_lock = self.until_lock.saturating_sub(count);
        count
    }
}

impl InstrStream for BarnesStream {
    fn next_instr(&mut self) -> Instr {
        if self.queue.is_empty() {
            self.refill();
        }
        let op = self.queue.pop_front().expect("refill fills the queue");
        let pc = self.code.pc();
        self.code.advance();
        Instr::new(op, pc)
    }

    fn clone_box(&self) -> Box<dyn InstrStream> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_testkit::{barrier_ids, determinism_check, op_census};

    fn stream(tid: usize) -> BarnesStream {
        BarnesStream::new(&WorkloadParams::new(tid, 8, 42))
    }

    #[test]
    fn deterministic_per_seed() {
        determinism_check(|| Box::new(stream(4)));
    }

    #[test]
    fn locks_are_frequent_and_balanced() {
        let census = op_census(&mut stream(0), 60_000);
        assert!(census.locks > 80, "lock episodes: {census:?}");
        assert_eq!(census.locks, census.unlocks, "acquire/release pairs");
    }

    #[test]
    fn lock_sequences_are_well_formed() {
        // Between an acquire and its release there is no other sync op.
        let mut s = stream(1);
        let mut held: Option<u32> = None;
        for _ in 0..100_000 {
            match s.next_instr().op {
                Op::LockAcquire { id } => {
                    assert!(held.is_none(), "nested lock");
                    held = Some(id);
                }
                Op::LockRelease { id } => {
                    assert_eq!(held, Some(id), "release matches acquire");
                    held = None;
                }
                Op::Barrier { .. } => assert!(held.is_none(), "barrier inside lock"),
                _ => {}
            }
        }
    }

    #[test]
    fn barriers_align_across_threads() {
        let a = barrier_ids(&mut stream(0), 200_000);
        let b = barrier_ids(&mut stream(3), 200_000);
        let shared = a.len().min(b.len());
        assert!(shared >= 2);
        assert_eq!(a[..shared], b[..shared]);
    }

    #[test]
    fn tree_walk_is_shared_and_irregular() {
        let mut s = stream(2);
        let mut shared_lines = std::collections::BTreeSet::new();
        let mut shared_loads = 0u64;
        for _ in 0..30_000 {
            if let Op::Load { addr } = s.next_instr().op {
                if addr >= Regions::SHARED {
                    shared_loads += 1;
                    shared_lines.insert(addr / 32);
                }
            }
        }
        assert!(shared_loads > 2_000, "shared loads: {shared_loads}");
        // Irregular: the walk visits many distinct tree lines across
        // subtree jumps (far more than one resident subtree's 128 lines).
        assert!(
            shared_lines.len() > 300,
            "distinct lines: {}",
            shared_lines.len()
        );
    }

    #[test]
    fn different_threads_walk_differently() {
        let mut a = stream(0);
        let mut b = stream(1);
        let mut same = 0;
        for _ in 0..1000 {
            if a.next_instr().op == b.next_instr().op {
                same += 1;
            }
        }
        assert!(same < 900, "threads must not be clones of each other");
    }
}
