//! Detection and accounting of simulation violations.
//!
//! A *simulation violation* (paper §3) occurs when a resource is accessed by
//! two cores in a different order in the simulation than in the target
//! system. Detection attaches a *monitoring variable* to each tracked
//! resource: the monitor records the largest timestamp of any operation seen
//! so far, and an incoming operation with a **smaller** timestamp is a
//! violation (equal timestamps are resolved by the deterministic same-cycle
//! arbitration priority and are *not* violations).
//!
//! The paper distinguishes three violation classes:
//!
//! * **simulation state** violations — internal simulator bookkeeping (here:
//!   the bus grant order, [`ViolationKind::Bus`]);
//! * **simulated system state** violations — target storage structures
//!   (here: the global cache status map, [`ViolationKind::Map`]);
//! * **simulated workload state** violations — racy target memory values;
//!   these cannot occur in SlackSim because workload synchronisation is
//!   executed reliably inside the simulator, but the kind is kept for
//!   completeness ([`ViolationKind::Workload`]).

use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::fxhash::FxHashMap;
use crate::time::Cycle;

/// The class of resource on which a violation was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// Bus granted out of timestamp order (simulation state violation).
    Bus,
    /// Cache-status-map entry transitioned out of timestamp order
    /// (simulated system state violation).
    Map,
    /// Directory bank serviced a request out of timestamp order (the
    /// sharded-uncore analogue of [`ViolationKind::Bus`]: each bank is an
    /// independently monitored shared resource).
    Directory,
    /// Target memory values crossed out of order (simulated workload state
    /// violation) — cannot occur with simulator-executed synchronisation.
    Workload,
    /// Any other model-defined monitored resource.
    Other,
}

impl ViolationKind {
    /// All violation kinds, in counter-index order.
    pub const ALL: [ViolationKind; 5] = [
        ViolationKind::Bus,
        ViolationKind::Map,
        ViolationKind::Directory,
        ViolationKind::Workload,
        ViolationKind::Other,
    ];

    #[inline]
    const fn index(self) -> usize {
        match self {
            ViolationKind::Bus => 0,
            ViolationKind::Map => 1,
            ViolationKind::Directory => 2,
            ViolationKind::Workload => 3,
            ViolationKind::Other => 4,
        }
    }
}

/// A single detected violation: what kind, at which simulated time the
/// out-of-order operation was stamped, and how far ahead the resource's
/// monitoring variable already was.
///
/// `high_water - ts` is the *violation distance* — how many cycles too late
/// the straggler arrived. Observability consumers (the trace recorder, the
/// metrics registry) use it to characterise how badly ordering was broken,
/// not just how often.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViolationEvent {
    /// Resource class on which the reordering was detected.
    pub kind: ViolationKind,
    /// Timestamp of the late (out-of-order) operation.
    pub ts: Cycle,
    /// The monitoring variable's largest previously observed timestamp at
    /// detection time (always `> ts` for a real violation).
    pub high_water: Cycle,
}

impl ViolationEvent {
    /// How many cycles too late the out-of-order operation arrived.
    pub fn distance(&self) -> u64 {
        self.high_water.as_u64().saturating_sub(self.ts.as_u64())
    }
}

/// Monitoring variable for a single shared resource.
///
/// # Examples
///
/// ```
/// use slacksim_core::time::Cycle;
/// use slacksim_core::violation::TimestampMonitor;
///
/// let mut bus = TimestampMonitor::new();
/// assert!(!bus.observe(Cycle::new(10))); // in order
/// assert!(!bus.observe(Cycle::new(10))); // equal: same-cycle arbitration
/// assert!(bus.observe(Cycle::new(7)));   // straggler: violation
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimestampMonitor {
    max_ts: Cycle,
}

impl TimestampMonitor {
    /// Creates a monitor that has seen no operations yet.
    pub const fn new() -> Self {
        TimestampMonitor {
            max_ts: Cycle::ZERO,
        }
    }

    /// Creates a monitor whose high-water mark is already `high_water`
    /// (checkpoint restore).
    pub const fn with_high_water(high_water: Cycle) -> Self {
        TimestampMonitor { max_ts: high_water }
    }

    /// Records an operation with timestamp `ts`; returns `true` iff the
    /// operation is a violation (strictly smaller than the running maximum).
    #[inline]
    pub fn observe(&mut self, ts: Cycle) -> bool {
        if ts < self.max_ts {
            true
        } else {
            self.max_ts = ts;
            false
        }
    }

    /// The largest timestamp observed so far.
    #[inline]
    pub fn high_water(&self) -> Cycle {
        self.max_ts
    }

    /// Forgets all observed operations (used on rollback).
    pub fn reset(&mut self) {
        self.max_ts = Cycle::ZERO;
    }
}

/// A family of monitoring variables keyed by resource identity (e.g. one per
/// cache-status-map entry), allocated lazily on first touch.
///
/// # Examples
///
/// ```
/// use slacksim_core::time::Cycle;
/// use slacksim_core::violation::KeyedMonitor;
///
/// let mut map: KeyedMonitor<u64> = KeyedMonitor::new();
/// assert!(!map.observe(0x40, Cycle::new(9)));
/// assert!(!map.observe(0x80, Cycle::new(3))); // different entry: no order relation
/// assert!(map.observe(0x40, Cycle::new(5)));  // same entry, earlier ts: violation
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyedMonitor<K> {
    monitors: FxHashMap<K, TimestampMonitor>,
}

impl<K: Eq + Hash> PartialEq for KeyedMonitor<K> {
    fn eq(&self, other: &Self) -> bool {
        self.monitors == other.monitors
    }
}

impl<K: Eq + Hash> Eq for KeyedMonitor<K> {}

impl<K: Eq + Hash> KeyedMonitor<K> {
    /// Creates an empty monitor family.
    pub fn new() -> Self {
        KeyedMonitor {
            monitors: FxHashMap::default(),
        }
    }

    /// Records an operation on entry `key`; returns `true` iff it violates.
    #[inline]
    pub fn observe(&mut self, key: K, ts: Cycle) -> bool {
        self.monitors.entry(key).or_default().observe(ts)
    }

    /// Records an operation on entry `key` and returns the verdict
    /// together with the entry's post-observation high-water mark, in one
    /// table lookup. Identical to `observe` followed by `high_water` —
    /// the single probe matters on the boundary-servicing hot path, where
    /// every bus event consults its line's monitor.
    #[inline]
    pub fn observe_high_water(&mut self, key: K, ts: Cycle) -> (bool, Cycle) {
        let m = self.monitors.entry(key).or_default();
        let violation = m.observe(ts);
        (violation, m.high_water())
    }

    /// The largest timestamp observed so far on entry `key`
    /// ([`Cycle::ZERO`] for a never-touched entry).
    #[inline]
    pub fn high_water(&self, key: &K) -> Cycle {
        self.monitors
            .get(key)
            .map(TimestampMonitor::high_water)
            .unwrap_or(Cycle::ZERO)
    }

    /// The high-water mark of entry `key`, or `None` when the entry was
    /// never touched. Unlike [`high_water`](Self::high_water) this
    /// distinguishes an absent entry from one stuck at [`Cycle::ZERO`],
    /// which checkpoint deltas need to restore entry presence exactly.
    #[inline]
    pub fn get(&self, key: &K) -> Option<Cycle> {
        self.monitors.get(key).map(TimestampMonitor::high_water)
    }

    /// Overwrites entry `key` with the given high-water mark, or removes
    /// it entirely with `None` (checkpoint restore).
    pub fn set(&mut self, key: K, high_water: Option<Cycle>) {
        match high_water {
            Some(hw) => {
                self.monitors
                    .insert(key, TimestampMonitor::with_high_water(hw));
            }
            None => {
                self.monitors.remove(&key);
            }
        }
    }

    /// Number of entries touched at least once.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Returns `true` if no entries were ever touched.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Forgets all observed operations (used on rollback).
    pub fn reset(&mut self) {
        self.monitors.clear();
    }

    /// Visits every tracked entry as `(key, high_water)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, Cycle)> {
        self.monitors.iter().map(|(k, m)| (k, m.high_water()))
    }

    /// Drops every entry whose high-water mark is at or below `horizon`,
    /// returning the removed keys.
    ///
    /// Safe at a committed checkpoint with `horizon` equal to the
    /// checkpoint's global cycle: every operation that can still arrive
    /// (including rollback replays, which restart from the checkpoint)
    /// carries a timestamp `ts >= horizon`, and a violation requires
    /// `ts < high_water <= horizon <= ts` — a contradiction. A removed
    /// entry's fresh re-creation on next touch therefore yields the exact
    /// same verdicts and final high-water mark the retained entry would
    /// have produced.
    pub fn compact(&mut self, horizon: Cycle) -> Vec<K>
    where
        K: Clone,
    {
        let removed: Vec<K> = self
            .monitors
            .iter()
            .filter(|(_, m)| m.high_water() <= horizon)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &removed {
            self.monitors.remove(k);
        }
        removed
    }
}

/// Per-kind violation counters for a single-threaded context.
///
/// The *violation rate* (violations per simulated cycle) over any window can
/// be formed by dividing a count delta by a cycle delta; the adaptive
/// controller does exactly this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViolationTally {
    counts: [u64; 5],
}

impl ViolationTally {
    /// Creates a zeroed tally.
    pub const fn new() -> Self {
        ViolationTally { counts: [0; 5] }
    }

    /// Records one violation of `kind`.
    #[inline]
    pub fn record(&mut self, kind: ViolationKind) {
        self.counts[kind.index()] += 1;
    }

    /// Returns the count for one kind.
    #[inline]
    pub fn count(&self, kind: ViolationKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Returns the count summed over all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Violations per simulated cycle for one kind.
    ///
    /// Returns 0 when `cycles` is 0.
    pub fn rate(&self, kind: ViolationKind, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.count(kind) as f64 / cycles as f64
        }
    }

    /// Total violations per simulated cycle.
    pub fn total_rate(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total() as f64 / cycles as f64
        }
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &ViolationTally) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
    }

    /// Component-wise difference `self - earlier` (saturating).
    #[must_use]
    pub fn since(&self, earlier: &ViolationTally) -> ViolationTally {
        let mut out = ViolationTally::new();
        for i in 0..self.counts.len() {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }

    /// Raw per-kind counts in [`ViolationKind::ALL`] order (persistence).
    pub fn counts(&self) -> [u64; 5] {
        self.counts
    }

    /// Rebuilds a tally from raw per-kind counts (persistence).
    pub const fn from_counts(counts: [u64; 5]) -> Self {
        ViolationTally { counts }
    }
}

/// Thread-safe violation counters shared between the manager thread and
/// observers (progress reporting, the adaptive controller).
#[derive(Debug, Default)]
pub struct SharedViolationTally {
    counts: [AtomicU64; 5],
}

impl SharedViolationTally {
    /// Creates a zeroed shared tally.
    pub fn new() -> Self {
        SharedViolationTally::default()
    }

    /// Records one violation of `kind`.
    #[inline]
    pub fn record(&self, kind: ViolationKind) {
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the current count for one kind.
    #[inline]
    pub fn count(&self, kind: ViolationKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> ViolationTally {
        let mut t = ViolationTally::new();
        for kind in ViolationKind::ALL {
            t.counts[kind.index()] = self.count(kind);
        }
        t
    }

    /// Resets all counters to zero (used on rollback).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Overwrites the counters with `tally` (used when restoring a
    /// checkpoint).
    pub fn restore(&self, tally: &ViolationTally) {
        for kind in ViolationKind::ALL {
            self.counts[kind.index()].store(tally.count(kind), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(t: u64) -> Cycle {
        Cycle::new(t)
    }

    #[test]
    fn monitor_flags_only_strict_regressions() {
        let mut m = TimestampMonitor::new();
        assert!(!m.observe(c(5)));
        assert!(!m.observe(c(5)));
        assert!(!m.observe(c(6)));
        assert!(m.observe(c(5)));
        // A violating observation does not move the high-water mark.
        assert_eq!(m.high_water(), c(6));
    }

    #[test]
    fn monitor_reset() {
        let mut m = TimestampMonitor::new();
        m.observe(c(100));
        m.reset();
        assert!(!m.observe(c(1)));
    }

    #[test]
    fn keyed_monitor_isolates_entries() {
        let mut km = KeyedMonitor::new();
        assert!(!km.observe("a", c(10)));
        assert!(!km.observe("b", c(1)));
        assert!(km.observe("a", c(2)));
        assert!(!km.observe("b", c(2)));
        assert_eq!(km.len(), 2);
        km.reset();
        assert!(km.is_empty());
        assert!(!km.observe("a", c(1)));
    }

    #[test]
    fn keyed_monitor_compacts_below_horizon() {
        let mut km = KeyedMonitor::new();
        km.observe("cold", c(5));
        km.observe("warm", c(10));
        km.observe("hot", c(20));
        let mut removed = km.compact(c(10));
        removed.sort_unstable();
        assert_eq!(removed, vec!["cold", "warm"]);
        assert_eq!(km.len(), 1);
        assert_eq!(km.get(&"hot"), Some(c(20)));
        // A re-touched compacted entry behaves exactly like a fresh one
        // would for any legal post-checkpoint timestamp (ts >= horizon).
        assert!(!km.observe("cold", c(10)));
        assert!(km.observe("cold", c(9)));
    }

    #[test]
    fn tally_counts_and_rates() {
        let mut t = ViolationTally::new();
        t.record(ViolationKind::Bus);
        t.record(ViolationKind::Bus);
        t.record(ViolationKind::Map);
        assert_eq!(t.count(ViolationKind::Bus), 2);
        assert_eq!(t.count(ViolationKind::Map), 1);
        assert_eq!(t.count(ViolationKind::Workload), 0);
        assert_eq!(t.total(), 3);
        assert!((t.rate(ViolationKind::Bus, 1000) - 0.002).abs() < 1e-12);
        assert!((t.total_rate(1000) - 0.003).abs() < 1e-12);
        assert_eq!(t.total_rate(0), 0.0);
    }

    #[test]
    fn tally_merge_and_since() {
        let mut a = ViolationTally::new();
        a.record(ViolationKind::Bus);
        let mut b = a;
        b.record(ViolationKind::Bus);
        b.record(ViolationKind::Map);
        let d = b.since(&a);
        assert_eq!(d.count(ViolationKind::Bus), 1);
        assert_eq!(d.count(ViolationKind::Map), 1);
        a.merge(&d);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_tally_roundtrip() {
        let s = SharedViolationTally::new();
        s.record(ViolationKind::Map);
        s.record(ViolationKind::Bus);
        s.record(ViolationKind::Bus);
        let snap = s.snapshot();
        assert_eq!(snap.count(ViolationKind::Bus), 2);
        assert_eq!(snap.count(ViolationKind::Map), 1);
        s.reset();
        assert_eq!(s.snapshot().total(), 0);
        s.restore(&snap);
        assert_eq!(s.snapshot(), snap);
    }

    #[test]
    fn shared_tally_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedViolationTally>();
    }
}
