//! Runs the complete reproduction: every table and figure of the paper
//! plus the extension experiments, at the configured scale.

use slacksim_bench::experiments::{ext, fig3, fig4, table1, table2, table34, table5};
use slacksim_bench::scale::Scale;
use slacksim_workloads::Benchmark;

fn main() {
    let scale = Scale::from_env(200_000);
    eprintln!("repro_all at scale: {scale:?}");

    println!("{}", table1());

    let points = fig3::measure(&scale);
    let (bus, map) = fig3::render(&points);
    println!("{bus}");
    println!("{map}");

    let fig4_points = fig4::measure(&scale, Benchmark::Fft);
    println!("{}", fig4::render(Benchmark::Fft, &fig4_points));

    let t2 = table2::measure(&scale);
    println!("{}", table2::render(&t2));

    // Interval statistics need runs long enough to observe many 100k-cycle
    // intervals: scale the commit target up for Tables 3/4.
    let interval_scale = Scale {
        commit: scale.commit * 40,
        ..scale
    };
    let stats = table34::measure(&interval_scale);
    println!("{}", table34::render_table3(&stats));
    println!("{}", table34::render_table4(&stats));

    let t5 = table5::measure(&scale);
    println!("{}", table5::render(&t5));

    let spec = ext::measure_speculative(&scale, 5_000);
    println!("{}", ext::render_speculative(5_000, &spec));

    for benchmark in Benchmark::ALL {
        let rows = ext::measure_quantum(&scale, benchmark);
        println!("{}", ext::render_quantum(benchmark, &rows));
    }

    for benchmark in [Benchmark::Fft, Benchmark::Barnes] {
        let rows = ext::measure_p2p(&scale, benchmark);
        println!("{}", ext::render_p2p(benchmark, &rows));
    }
}
