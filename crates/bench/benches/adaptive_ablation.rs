//! Criterion bench: ablation of the adaptive controller's step policy
//! (DESIGN.md experiment E9) — wall cost of each policy at the same
//! target rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slacksim::scheme::{AdaptiveConfig, Scheme, StepPolicy};
use slacksim::{Benchmark, EngineKind, Simulation};

fn run(step: StepPolicy) {
    let cfg = AdaptiveConfig {
        target_rate: 1e-3,
        band: 0.05,
        step,
        ..AdaptiveConfig::default()
    };
    let report = Simulation::new(Benchmark::Barnes)
        .cores(8)
        .commit_target(40_000)
        .seed(1)
        .scheme(Scheme::Adaptive(cfg))
        .engine(EngineKind::Sequential)
        .run()
        .expect("bench run");
    assert!(report.committed >= 40_000);
}

fn adaptive_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_step_policy");
    group.sample_size(10);
    for (name, step) in [
        ("additive", StepPolicy::Additive { up: 1.0, down: 1.0 }),
        ("aimd", StepPolicy::Aimd { up: 1.0 }),
        ("multiplicative", StepPolicy::Multiplicative),
        (
            "proportional",
            StepPolicy::Proportional {
                step: 0.5,
                max_throttle: 256.0,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &step, |b, step| {
            b.iter(|| run(*step))
        });
    }
    group.finish();
}

criterion_group!(benches, adaptive_ablation);
criterion_main!(benches);
