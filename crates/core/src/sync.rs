//! Minimal std-only concurrency primitives for the threaded engine.
//!
//! The kernel must build in fully offline environments, so it depends on
//! nothing outside `std`. The threaded engine needs three shared
//! structures: a fast single-producer/single-consumer event channel for
//! the per-core OutQ/InQ paths ([`SpscRing`]), a general mutex-backed
//! queue for low-rate paths and tests ([`SharedQueue`]), and a
//! single-slot snapshot mailbox ([`SnapshotSlot`]).
//!
//! [`SpscRing`] is the hot path: a lock-free bounded ring of
//! Acquire/Release atomics with cached indices (one cache-line handoff
//! per batch in the common case) backed by a mutex-protected overflow
//! spill, so the queue keeps the unbounded FIFO semantics the engine was
//! built on while the steady state never takes a lock or allocates.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::sched::{HostSched, SchedSite};

/// Optional scheduling-point instrumentation shared by the sync
/// primitives: `None` (the production default) costs one predictable
/// branch per operation; `Some` routes a labelled [`SchedSite`] to a
/// virtual scheduler before the operation proceeds, so a conformance
/// harness can interleave the producer and consumer protocols at
/// operation granularity.
type SchedHook = Option<Arc<dyn HostSched>>;

#[inline]
fn sched_point(hook: &SchedHook, site: SchedSite) {
    if let Some(h) = hook {
        h.point(site);
    }
}

/// Pads a value to its own cache line so the producer and consumer
/// indices of a ring never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// A lock-free bounded SPSC FIFO ring with a mutex-backed overflow spill.
///
/// The ring proper is a power-of-two array of slots indexed by two
/// monotonically increasing counters: `tail` (written by the producer
/// with Release ordering) and `head` (written by the consumer with
/// Release ordering). Each side keeps a cached copy of the other side's
/// counter and only reloads it (Acquire) when the cache says the ring
/// looks full/empty, so steady-state operation is one atomic store per
/// push/pop and no shared-line ping-pong on the fast path.
///
/// When the ring fills, pushes overflow into a mutex-protected
/// `VecDeque` *spill*. FIFO order across the boundary is preserved by
/// two invariants:
///
/// 1. the producer never pushes into the ring while the spill is
///    non-empty (spill entries are always newer than ring entries);
/// 2. the consumer always drains the ring before touching the spill.
///
/// The producer can check "is the spill empty" with a relaxed load of
/// `spill_len` because the producer is the only thread that ever
/// *increments* it: a zero it reads is exact.
///
/// # Threading contract
///
/// At most one thread may act as producer (`push`, `push_batch`) and at
/// most one as consumer (`pop`, `drain_into`, `clear`) at any instant.
/// The roles may be handed between threads if the handoff itself
/// synchronizes (e.g. over a channel ack, as the engine's stop-sync
/// protocol does). Violating the contract is a logic error that can
/// lose or duplicate elements; memory safety is still preserved for the
/// index bookkeeping but slot reads may race, which is why the type is
/// only shared inside the engine.
///
/// # Examples
///
/// ```
/// use slacksim_core::sync::SpscRing;
///
/// let q: SpscRing<u32> = SpscRing::with_capacity(4);
/// for i in 0..10 {
///     q.push(i); // 4 in the ring, 6 spilled
/// }
/// let mut out = Vec::new();
/// q.drain_into(&mut out);
/// assert_eq!(out, (0..10).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct SpscRing<T> {
    mask: usize,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer position (next slot to pop). Written by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Producer position (next slot to fill). Written by the producer.
    tail: CachePadded<AtomicUsize>,
    /// Producer-private cache of `head` (accessed only by the producer).
    head_cache: CachePadded<UnsafeCell<usize>>,
    /// Consumer-private cache of `tail` (accessed only by the consumer).
    tail_cache: CachePadded<UnsafeCell<usize>>,
    /// Overflow spill; entries here are always newer than ring entries.
    spill: Mutex<VecDeque<T>>,
    /// Spill length mirror; raised only by the producer (Release, under
    /// the spill lock), lowered only by the consumer.
    spill_len: AtomicUsize,
    /// Relaxed element counter for `depth_hint`.
    depth: AtomicUsize,
    /// Scheduling-point hook; `None` in production.
    hook: SchedHook,
}

// SAFETY: the SPSC contract above restricts each field to one role;
// cross-thread element handoff is ordered by the Release store of `tail`
// (producer) and the Acquire load in the consumer (and vice versa for
// slot reuse through `head`).
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Default ring capacity used by the engine's OutQ/InQ channels.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a ring with at least `capacity` lock-free slots (rounded
    /// up to a power of two, minimum 2). Pushes beyond the ring capacity
    /// spill to the mutex-backed overflow, so the queue as a whole is
    /// unbounded.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_sched(capacity, None)
    }

    /// Like [`with_capacity`](Self::with_capacity), with a
    /// scheduling-point hook invoked at the top of every queue operation.
    /// Production callers pass `None` (see
    /// [`SchedRef::instrumentation_hook`](crate::sched::SchedRef::instrumentation_hook)).
    pub fn with_capacity_and_sched(capacity: usize, hook: SchedHook) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            mask: cap - 1,
            buf,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            head_cache: CachePadded(UnsafeCell::new(0)),
            tail_cache: CachePadded(UnsafeCell::new(0)),
            spill: Mutex::new(VecDeque::new()),
            spill_len: AtomicUsize::new(0),
            depth: AtomicUsize::new(0),
            hook,
        }
    }

    /// Creates a ring with the engine's default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a ring with the engine's default capacity and a
    /// scheduling-point hook. Production callers pass `None`.
    pub fn with_sched(hook: SchedHook) -> Self {
        Self::with_capacity_and_sched(Self::DEFAULT_CAPACITY, hook)
    }

    /// Number of lock-free slots.
    pub fn ring_capacity(&self) -> usize {
        self.mask + 1
    }

    /// Appends one element (producer side).
    pub fn push(&self, value: T) {
        sched_point(&self.hook, SchedSite::RingPush);
        if self.spill_len.load(Ordering::Relaxed) == 0 {
            let tail = self.tail.0.load(Ordering::Relaxed);
            // SAFETY: head_cache is touched only by the (single) producer.
            let cache = unsafe { &mut *self.head_cache.0.get() };
            if tail.wrapping_sub(*cache) == self.ring_capacity() {
                *cache = self.head.0.load(Ordering::Acquire);
            }
            if tail.wrapping_sub(*cache) < self.ring_capacity() {
                // SAFETY: slot `tail` is free — the consumer has not
                // passed it (checked above) and only this producer fills
                // slots.
                unsafe {
                    (*self.buf[tail & self.mask].get()).write(value);
                }
                self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
                self.depth.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.spill_push(value);
    }

    /// Appends every element of `src` in order, draining it (producer
    /// side). One cached-index check and one Release store cover the
    /// whole batch when it fits in the ring.
    pub fn push_batch(&self, src: &mut Vec<T>) {
        if src.is_empty() {
            return;
        }
        sched_point(&self.hook, SchedSite::RingPush);
        let n = src.len();
        let mut drained = src.drain(..);
        if self.spill_len.load(Ordering::Relaxed) == 0 {
            let tail = self.tail.0.load(Ordering::Relaxed);
            // SAFETY: producer-private cache (see `push`).
            let cache = unsafe { &mut *self.head_cache.0.get() };
            if self.ring_capacity() - tail.wrapping_sub(*cache) < n {
                *cache = self.head.0.load(Ordering::Acquire);
            }
            let free = self.ring_capacity() - tail.wrapping_sub(*cache);
            let into_ring = free.min(n);
            for (i, value) in drained.by_ref().take(into_ring).enumerate() {
                // SAFETY: slots `tail..tail+into_ring` are free (bounded
                // by `free` above).
                unsafe {
                    (*self.buf[tail.wrapping_add(i) & self.mask].get()).write(value);
                }
            }
            if into_ring > 0 {
                self.tail
                    .0
                    .store(tail.wrapping_add(into_ring), Ordering::Release);
                self.depth.fetch_add(into_ring, Ordering::Relaxed);
            }
        }
        for value in drained {
            self.spill_push(value);
        }
    }

    fn spill_push(&self, value: T) {
        let mut s = self.spill.lock().expect("spill poisoned");
        s.push_back(value);
        // Release pairs with the consumer's Acquire load in `pop` /
        // `drain_into`: a consumer that observes this spill entry must
        // also observe every ring entry committed before it, or it could
        // hand out the (newer) spill item while older ring items are
        // still invisible to its stale `tail` view.
        self.spill_len.store(s.len(), Ordering::Release);
        drop(s);
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes and returns the oldest ring element, if the ring looks
    /// non-empty from the consumer's current view (consumer side).
    fn pop_ring(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        // SAFETY: tail_cache is touched only by the (single) consumer.
        let cache = unsafe { &mut *self.tail_cache.0.get() };
        if head == *cache {
            *cache = self.tail.0.load(Ordering::Acquire);
        }
        if head != *cache {
            // SAFETY: slot `head` was filled by the producer (tail has
            // passed it, Acquire-observed above) and not yet consumed.
            let value = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
            self.head.0.store(head.wrapping_add(1), Ordering::Release);
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return Some(value);
        }
        None
    }

    /// Removes and returns the oldest element, if any (consumer side).
    pub fn pop(&self) -> Option<T> {
        sched_point(&self.hook, SchedSite::RingPop);
        if let Some(value) = self.pop_ring() {
            return Some(value);
        }
        // Ring looked empty: the spill (if any) holds the remaining items.
        if self.spill_len.load(Ordering::Acquire) == 0 {
            return None;
        }
        // The spill only ever receives items pushed while the ring was
        // full, so a non-empty spill means up to a full lap of OLDER ring
        // entries may exist that the empty-check above missed through a
        // stale `tail`. The Acquire load pairs with `spill_push`'s
        // Release store, making those tail stores visible — re-check the
        // ring before touching the strictly newer spill. (The producer
        // cannot re-enter the ring path until the spill drains, so no
        // newer ring entry can slip ahead of the spill here.)
        if let Some(value) = self.pop_ring() {
            return Some(value);
        }
        let mut s = self.spill.lock().expect("spill poisoned");
        let value = s.pop_front();
        self.spill_len.store(s.len(), Ordering::Relaxed);
        drop(s);
        if value.is_some() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        value
    }

    /// Moves every currently visible ring element into `out` and returns
    /// how many were moved (consumer side). One Release store covers the
    /// whole sweep.
    fn drain_ring_into(&self, out: &mut Vec<T>) -> usize {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        // SAFETY: consumer-private cache (see `pop`).
        unsafe {
            *self.tail_cache.0.get() = tail;
        }
        let n = tail.wrapping_sub(head);
        out.reserve(n);
        for i in 0..n {
            // SAFETY: slots `head..tail` are filled and unconsumed.
            let value =
                unsafe { (*self.buf[head.wrapping_add(i) & self.mask].get()).assume_init_read() };
            out.push(value);
        }
        if n > 0 {
            self.head.0.store(tail, Ordering::Release);
            self.depth.fetch_sub(n, Ordering::Relaxed);
        }
        n
    }

    /// Moves every currently queued element into `out`, preserving FIFO
    /// order, and returns how many were moved (consumer side). The ring
    /// portion is consumed with a single Release store.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        sched_point(&self.hook, SchedSite::RingDrain);
        let mut moved = self.drain_ring_into(out);
        if self.spill_len.load(Ordering::Acquire) != 0 {
            // Same stale-tail hazard as `pop`: the spill is strictly
            // newer than any committed ring entry, and the Acquire load
            // (pairing with `spill_push`'s Release) makes those entries
            // visible — sweep the ring once more before the spill.
            moved += self.drain_ring_into(out);
            let mut s = self.spill.lock().expect("spill poisoned");
            let k = s.len();
            out.extend(s.drain(..));
            self.spill_len.store(0, Ordering::Relaxed);
            drop(s);
            self.depth.fetch_sub(k, Ordering::Relaxed);
            moved += k;
        }
        moved
    }

    /// Moves every currently queued element into `out` through `f`,
    /// preserving FIFO order, and returns how many were moved (consumer
    /// side). Same visibility guarantees as [`drain_into`](Self::drain_into);
    /// the shard forwarders use this to tag each event with its producing
    /// core without an intermediate buffer.
    pub fn drain_map_into<U>(&self, out: &mut Vec<U>, mut f: impl FnMut(T) -> U) -> usize {
        sched_point(&self.hook, SchedSite::RingDrain);
        let mut moved = self.drain_ring_map_into(out, &mut f);
        if self.spill_len.load(Ordering::Acquire) != 0 {
            // Same stale-tail hazard as `drain_into`: the spill is
            // strictly newer than any committed ring entry, and the
            // Acquire load (pairing with `spill_push`'s Release) makes
            // those entries visible — sweep the ring once more first.
            moved += self.drain_ring_map_into(out, &mut f);
            let mut s = self.spill.lock().expect("spill poisoned");
            let k = s.len();
            out.extend(s.drain(..).map(&mut f));
            self.spill_len.store(0, Ordering::Relaxed);
            drop(s);
            self.depth.fetch_sub(k, Ordering::Relaxed);
            moved += k;
        }
        moved
    }

    /// Ring-only half of [`drain_map_into`](Self::drain_map_into); see
    /// [`drain_ring_into`](Self::drain_ring_into) for the memory-order
    /// argument.
    fn drain_ring_map_into<U>(&self, out: &mut Vec<U>, f: &mut impl FnMut(T) -> U) -> usize {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        // SAFETY: consumer-private cache (see `pop`).
        unsafe {
            *self.tail_cache.0.get() = tail;
        }
        let n = tail.wrapping_sub(head);
        out.reserve(n);
        for i in 0..n {
            // SAFETY: slots `head..tail` are filled and unconsumed.
            let value =
                unsafe { (*self.buf[head.wrapping_add(i) & self.mask].get()).assume_init_read() };
            out.push(f(value));
        }
        if n > 0 {
            self.head.0.store(tail, Ordering::Release);
            self.depth.fetch_sub(n, Ordering::Relaxed);
        }
        n
    }

    /// Discards every queued element (consumer side).
    pub fn clear(&self) {
        while self.pop().is_some() {}
    }

    /// Approximate number of queued elements: a relaxed counter read,
    /// safe from any thread and never taking the spill lock. Exact when
    /// both sides are quiescent.
    pub fn depth_hint(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Returns `true` when the queue looks empty (same caveats as
    /// [`depth_hint`](Self::depth_hint)).
    pub fn is_empty_hint(&self) -> bool {
        self.depth_hint() == 0
    }
}

impl<T> Default for SpscRing<T> {
    fn default() -> Self {
        SpscRing::new()
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drop the unconsumed ring slots; the spill's VecDeque drops
        // itself.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in 0..tail.wrapping_sub(head) {
            // SAFETY: &mut self — no concurrent access; slots head..tail
            // are initialized.
            unsafe {
                (*self.buf[head.wrapping_add(i) & self.mask].get()).assume_init_drop();
            }
        }
    }
}

/// An unbounded multi-producer multi-consumer FIFO queue.
///
/// Mutex-backed: correct under any threading, used for low-rate paths
/// and as the reference implementation in tests. The hot OutQ/InQ paths
/// use [`SpscRing`] instead.
///
/// # Examples
///
/// ```
/// use slacksim_core::sync::SharedQueue;
///
/// let q: SharedQueue<u32> = SharedQueue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.depth_hint(), 2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct SharedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    /// Mirror of the queue length, updated while holding the lock, so
    /// samplers can read the depth without contending for it.
    depth: AtomicUsize,
    /// Scheduling-point hook; `None` in production.
    hook: SchedHook,
}

impl<T> SharedQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_sched(None)
    }

    /// Creates an empty queue with a scheduling-point hook invoked at
    /// the top of every push/pop. Production callers pass `None`.
    pub fn with_sched(hook: SchedHook) -> Self {
        SharedQueue {
            inner: Mutex::new(VecDeque::new()),
            depth: AtomicUsize::new(0),
            hook,
        }
    }

    /// Appends an element at the tail.
    pub fn push(&self, value: T) {
        sched_point(&self.hook, SchedSite::QueueOp);
        let mut q = self.inner.lock().expect("queue poisoned");
        q.push_back(value);
        self.depth.store(q.len(), Ordering::Relaxed);
    }

    /// Removes and returns the head element, if any.
    pub fn pop(&self) -> Option<T> {
        sched_point(&self.hook, SchedSite::QueueOp);
        let mut q = self.inner.lock().expect("queue poisoned");
        let value = q.pop_front();
        self.depth.store(q.len(), Ordering::Relaxed);
        value
    }

    /// Number of queued elements at the instant of the call (takes the
    /// lock; use [`depth_hint`](Self::depth_hint) for sampling).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len()
    }

    /// Approximate queue depth from a relaxed atomic mirror — never
    /// takes the lock.
    pub fn depth_hint(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Returns `true` when no element is queued, without taking the
    /// lock (relaxed read of the depth mirror).
    pub fn is_empty(&self) -> bool {
        self.depth_hint() == 0
    }

    /// Discards every queued element.
    pub fn clear(&self) {
        let mut q = self.inner.lock().expect("queue poisoned");
        q.clear();
        self.depth.store(0, Ordering::Relaxed);
    }
}

/// A double-buffered mailbox used for checkpoint snapshots: the core
/// thread deposits its state, the manager takes it.
///
/// `put` always writes into the buffer the consumer is *not* reading
/// (the back buffer) and flips the front index afterwards, so a producer
/// never waits on a consumer still moving a large snapshot out of the
/// front buffer, and a displaced stale value is dropped by the producer
/// outside any lock the consumer can observe. `take` returns the most
/// recent `put`; older occupants are discarded lazily by the next `put`
/// that rotates onto their buffer.
#[derive(Debug, Default)]
pub struct SnapshotSlot<T> {
    bufs: [Mutex<Option<T>>; 2],
    /// Index of the buffer holding the most recent `put` (what the next
    /// `take` reads).
    front: AtomicUsize,
    /// Scheduling-point hook; `None` in production.
    hook: SchedHook,
}

impl<T> SnapshotSlot<T> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self::with_sched(None)
    }

    /// Creates an empty slot with a scheduling-point hook invoked on
    /// every put/take. Production callers pass `None`.
    pub fn with_sched(hook: SchedHook) -> Self {
        SnapshotSlot {
            bufs: [Mutex::new(None), Mutex::new(None)],
            front: AtomicUsize::new(0),
            hook,
        }
    }

    /// Stores `value`; a subsequent `take` returns it instead of any
    /// previous occupant.
    pub fn put(&self, value: T) {
        sched_point(&self.hook, SchedSite::SnapshotPut);
        let back = 1 - self.front.load(Ordering::Relaxed);
        let displaced = {
            let mut b = self.bufs[back].lock().expect("slot poisoned");
            b.replace(value)
        };
        self.front.store(back, Ordering::Release);
        // Dropping a stale snapshot can be expensive; do it outside the
        // buffer lock.
        drop(displaced);
    }

    /// Removes and returns the most recently `put` value, if any.
    pub fn take(&self) -> Option<T> {
        sched_point(&self.hook, SchedSite::SnapshotTake);
        let front = self.front.load(Ordering::Acquire);
        self.bufs[front].lock().expect("slot poisoned").take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_fifo_order() {
        let q = SharedQueue::new();
        assert!(q.is_empty());
        for i in 0..10 {
            q.push(i);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn queue_clear() {
        let q = SharedQueue::new();
        q.push('a');
        q.clear();
        assert_eq!(q.pop(), None);
        assert_eq!(q.depth_hint(), 0);
    }

    #[test]
    fn queue_depth_hint_tracks_len() {
        let q = SharedQueue::new();
        for i in 0..5 {
            q.push(i);
            assert_eq!(q.depth_hint(), q.len());
        }
        q.pop();
        assert_eq!(q.depth_hint(), 4);
    }

    #[test]
    fn queue_cross_thread() {
        let q: Arc<SharedQueue<u64>> = Arc::new(SharedQueue::new());
        let producer = Arc::clone(&q);
        let handle = std::thread::spawn(move || {
            for i in 0..1000u64 {
                producer.push(i);
            }
        });
        handle.join().expect("producer finishes");
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_slot_roundtrip() {
        let s = SnapshotSlot::new();
        assert!(s.take().is_none());
        s.put(7);
        s.put(9); // replaces: take only ever sees the most recent put
        assert_eq!(s.take(), Some(9));
        assert!(s.take().is_none());
        // The buffers rotate; stale occupants are discarded, never
        // resurrected.
        s.put(11);
        assert_eq!(s.take(), Some(11));
        assert!(s.take().is_none());
        s.put(13);
        s.put(15);
        s.put(17);
        assert_eq!(s.take(), Some(17));
        assert!(s.take().is_none());
    }

    #[test]
    fn ring_fifo_within_capacity() {
        let q: SpscRing<u32> = SpscRing::with_capacity(8);
        for i in 0..8 {
            q.push(i);
        }
        assert_eq!(q.depth_hint(), 8);
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());
        assert!(q.is_empty_hint());
    }

    #[test]
    fn ring_capacity_rounds_to_power_of_two() {
        let q: SpscRing<u8> = SpscRing::with_capacity(5);
        assert_eq!(q.ring_capacity(), 8);
        let q: SpscRing<u8> = SpscRing::with_capacity(0);
        assert_eq!(q.ring_capacity(), 2);
    }

    #[test]
    fn ring_overflow_spills_and_keeps_order() {
        let q: SpscRing<u32> = SpscRing::with_capacity(4);
        for i in 0..20 {
            q.push(i);
        }
        assert_eq!(q.depth_hint(), 20);
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn ring_interleaved_across_spill_boundary() {
        // Alternate pushes and pops around the full mark so elements
        // cross ring → spill → ring-refill boundaries in every pattern.
        let q: SpscRing<u32> = SpscRing::with_capacity(2);
        let mut next_push = 0u32;
        let mut next_pop = 0u32;
        for round in 0..100u32 {
            for _ in 0..(round % 7) {
                q.push(next_push);
                next_push += 1;
            }
            for _ in 0..(round % 5) {
                if let Some(v) = q.pop() {
                    assert_eq!(v, next_pop);
                    next_pop += 1;
                }
            }
        }
        while let Some(v) = q.pop() {
            assert_eq!(v, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, next_push);
    }

    #[test]
    fn ring_push_batch_and_drain_into() {
        let q: SpscRing<u32> = SpscRing::with_capacity(4);
        let mut batch: Vec<u32> = (0..10).collect();
        q.push_batch(&mut batch); // 4 ring + 6 spill
        assert!(batch.is_empty());
        let mut batch2: Vec<u32> = (10..13).collect();
        q.push_batch(&mut batch2); // all spill (spill non-empty)
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 13);
        assert_eq!(out, (0..13).collect::<Vec<_>>());
        assert_eq!(q.depth_hint(), 0);
    }

    #[test]
    fn ring_drain_map_into_tags_in_fifo_order() {
        let q: SpscRing<u32> = SpscRing::with_capacity(4);
        let mut batch: Vec<u32> = (0..10).collect();
        q.push_batch(&mut batch); // 4 ring + 6 spill
        let mut out: Vec<(u8, u32)> = vec![(7, 99)];
        assert_eq!(q.drain_map_into(&mut out, |v| (3u8, v)), 10);
        assert_eq!(out[0], (7, 99), "existing contents are preserved");
        assert_eq!(
            out[1..],
            (0..10).map(|v| (3u8, v)).collect::<Vec<_>>(),
            "FIFO order across the ring/spill boundary"
        );
        assert_eq!(q.depth_hint(), 0);
        assert_eq!(q.drain_map_into(&mut out, |v| (0u8, v)), 0);
    }

    #[test]
    fn ring_clear_discards_everything() {
        let q: SpscRing<String> = SpscRing::with_capacity(2);
        for i in 0..10 {
            q.push(format!("item{i}"));
        }
        q.clear();
        assert_eq!(q.pop(), None);
        assert_eq!(q.depth_hint(), 0);
    }

    #[test]
    fn ring_drop_releases_unconsumed_items() {
        // Drop with live ring + spill contents; Miri/leak checkers would
        // flag a leak here if Drop missed the slots.
        let q: SpscRing<Box<u64>> = SpscRing::with_capacity(4);
        for i in 0..10 {
            q.push(Box::new(i));
        }
        let _ = q.pop();
        drop(q);
    }

    #[test]
    fn ring_cross_thread_fifo() {
        let q: Arc<SpscRing<u64>> = Arc::new(SpscRing::with_capacity(16));
        let producer = Arc::clone(&q);
        let handle = std::thread::spawn(move || {
            for i in 0..50_000u64 {
                producer.push(i);
            }
        });
        let mut expected = 0u64;
        while expected < 50_000 {
            if let Some(v) = q.pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        handle.join().expect("producer finishes");
        assert_eq!(q.pop(), None);
    }
}
