//! Scalable sharer-set representation for the directory uncore.
//!
//! The snooping path tracks sharers in a `u16` bitmask, which hard-caps
//! the target at 16 cores. Directory entries instead use [`SharerSet`]:
//! a small-set inline representation (up to [`SMALL_CAP`] core ids in a
//! fixed array — the common case, since most lines have one or two
//! sharers) that spills to a word-vector bitmap when a line becomes
//! widely shared. Both representations are semantically equivalent;
//! equality, iteration order and the persisted byte form are all
//! representation-independent, so a set that spilled and shrank again
//! compares and serializes identically to one that never spilled.

use slacksim_core::event::CoreId;
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};

/// Core ids held inline before spilling to the word-vector bitmap.
pub const SMALL_CAP: usize = 4;

/// A set of cores sharing one line, scalable to 1024 cores.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::sharers::SharerSet;
/// use slacksim_core::event::CoreId;
///
/// let mut s = SharerSet::new();
/// assert!(s.insert(CoreId::new(3)));
/// assert!(!s.insert(CoreId::new(3)), "already present");
/// for i in 0..100 {
///     s.insert(CoreId::new(i)); // spills past the inline capacity
/// }
/// assert_eq!(s.len(), 100);
/// assert!(s.contains(CoreId::new(99)));
/// ```
#[derive(Debug, Clone)]
pub enum SharerSet {
    /// Up to [`SMALL_CAP`] core ids, ascending in `ids[..len]`.
    Small {
        /// Number of ids in use.
        len: u8,
        /// The member core ids, sorted ascending.
        ids: [u16; SMALL_CAP],
    },
    /// Bitmap spill: bit `i % 64` of word `i / 64` marks core `i`.
    Words(Vec<u64>),
}

impl Default for SharerSet {
    fn default() -> Self {
        SharerSet::new()
    }
}

impl SharerSet {
    /// Creates an empty set.
    pub const fn new() -> Self {
        SharerSet::Small {
            len: 0,
            ids: [0; SMALL_CAP],
        }
    }

    /// Creates a set holding exactly `core`.
    pub fn only(core: CoreId) -> Self {
        let mut s = SharerSet::new();
        s.insert(core);
        s
    }

    /// Adds `core`; returns `true` iff it was newly inserted.
    pub fn insert(&mut self, core: CoreId) -> bool {
        let idx = core.index() as u16;
        match self {
            SharerSet::Small { len, ids } => {
                let n = *len as usize;
                match ids[..n].binary_search(&idx) {
                    Ok(_) => false,
                    Err(pos) => {
                        if n < SMALL_CAP {
                            ids.copy_within(pos..n, pos + 1);
                            ids[pos] = idx;
                            *len += 1;
                        } else {
                            // Spill: sized to the highest member so far.
                            let top = ids[n - 1].max(idx) as usize;
                            let mut words = vec![0u64; top / 64 + 1];
                            for &id in ids[..n].iter() {
                                words[id as usize / 64] |= 1 << (id % 64);
                            }
                            words[idx as usize / 64] |= 1 << (idx % 64);
                            *self = SharerSet::Words(words);
                        }
                        true
                    }
                }
            }
            SharerSet::Words(words) => {
                let (w, b) = (idx as usize / 64, idx % 64);
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                let newly = words[w] & (1 << b) == 0;
                words[w] |= 1 << b;
                newly
            }
        }
    }

    /// Removes `core`; returns `true` iff it was present.
    pub fn remove(&mut self, core: CoreId) -> bool {
        let idx = core.index() as u16;
        match self {
            SharerSet::Small { len, ids } => {
                let n = *len as usize;
                match ids[..n].binary_search(&idx) {
                    Ok(pos) => {
                        ids.copy_within(pos + 1..n, pos);
                        ids[n - 1] = 0;
                        *len -= 1;
                        true
                    }
                    Err(_) => false,
                }
            }
            SharerSet::Words(words) => {
                let (w, b) = (idx as usize / 64, idx % 64);
                if w < words.len() && words[w] & (1 << b) != 0 {
                    words[w] &= !(1 << b);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether `core` is a member.
    pub fn contains(&self, core: CoreId) -> bool {
        let idx = core.index() as u16;
        match self {
            SharerSet::Small { len, ids } => ids[..*len as usize].binary_search(&idx).is_ok(),
            SharerSet::Words(words) => {
                let (w, b) = (idx as usize / 64, idx % 64);
                w < words.len() && words[w] & (1 << b) != 0
            }
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match self {
            SharerSet::Small { len, .. } => *len as usize,
            SharerSet::Words(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            SharerSet::Small { len, .. } => *len == 0,
            SharerSet::Words(words) => words.iter().all(|&w| w == 0),
        }
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        *self = SharerSet::new();
    }

    /// Members in ascending core order (the deterministic iteration
    /// order every snoop list and byte stream is built from).
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        let (small, words): (&[u16], &[u64]) = match self {
            SharerSet::Small { len, ids } => (&ids[..*len as usize], &[]),
            SharerSet::Words(words) => (&[], words.as_slice()),
        };
        let from_words = words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| CoreId::new((w * 64 + b) as u16))
        });
        small.iter().map(|&id| CoreId::new(id)).chain(from_words)
    }

    /// The single member, when the set has exactly one.
    pub fn sole(&self) -> Option<CoreId> {
        let mut it = self.iter();
        match (it.next(), it.next()) {
            (Some(c), None) => Some(c),
            _ => None,
        }
    }

    /// Serializes the set as a sorted id list — canonical regardless of
    /// representation.
    pub fn save(&self, w: &mut ByteWriter) {
        w.u32(self.len() as u32);
        for c in self.iter() {
            w.u16(c.index() as u16);
        }
    }

    /// Restores a set written by [`SharerSet::save`], rejecting ids at or
    /// beyond `n_cores` and non-canonical (unsorted or duplicate) streams.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for malformed bytes.
    pub fn load(r: &mut ByteReader<'_>, n_cores: usize) -> Result<SharerSet, PersistError> {
        let n = r.u32()? as usize;
        if n > n_cores {
            return Err(PersistError::Corrupt("sharer set larger than core count"));
        }
        let mut set = SharerSet::new();
        let mut prev: Option<u16> = None;
        for _ in 0..n {
            let id = r.u16()?;
            if (id as usize) >= n_cores {
                return Err(PersistError::Corrupt("sharer set references unknown core"));
            }
            if prev.is_some_and(|p| p >= id) {
                return Err(PersistError::Corrupt(
                    "sharer set ids not strictly ascending",
                ));
            }
            prev = Some(id);
            set.insert(CoreId::new(id));
        }
        Ok(set)
    }
}

/// Equality is semantic: representation (inline vs spilled) never
/// matters.
impl PartialEq for SharerSet {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for SharerSet {}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn small_set_stays_inline_and_sorted() {
        let mut s = SharerSet::new();
        for i in [9, 2, 7, 4] {
            assert!(s.insert(c(i)));
        }
        assert!(matches!(s, SharerSet::Small { .. }));
        let ids: Vec<u16> = s.iter().map(|c| c.index() as u16).collect();
        assert_eq!(ids, vec![2, 4, 7, 9]);
        assert!(!s.insert(c(7)), "duplicate insert is a no-op");
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn fifth_member_spills_to_words() {
        let mut s = SharerSet::new();
        for i in 0..5 {
            s.insert(c(i * 100));
        }
        assert!(matches!(s, SharerSet::Words(_)));
        assert_eq!(s.len(), 5);
        let ids: Vec<u16> = s.iter().map(|c| c.index() as u16).collect();
        assert_eq!(ids, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn remove_works_in_both_representations() {
        let mut small = SharerSet::new();
        small.insert(c(1));
        small.insert(c(3));
        assert!(small.remove(c(1)));
        assert!(!small.remove(c(1)));
        assert_eq!(small.sole(), Some(c(3)));

        let mut big = SharerSet::new();
        for i in 0..40 {
            big.insert(c(i));
        }
        assert!(big.remove(c(17)));
        assert!(!big.contains(c(17)));
        assert_eq!(big.len(), 39);
    }

    #[test]
    fn equality_is_representation_independent() {
        // Build {0,1,2} inline, and {0,1,2} via spill-then-shrink.
        let mut inline = SharerSet::new();
        let mut spilled = SharerSet::new();
        for i in 0..3 {
            inline.insert(c(i));
        }
        for i in 0..6 {
            spilled.insert(c(i));
        }
        for i in 3..6 {
            spilled.remove(c(i));
        }
        assert!(matches!(spilled, SharerSet::Words(_)));
        assert_eq!(inline, spilled);
        assert_eq!(spilled.sole(), None);
    }

    #[test]
    fn save_load_is_canonical_across_representations() {
        let mut inline = SharerSet::new();
        let mut spilled = SharerSet::new();
        for i in [0, 5, 9] {
            inline.insert(c(i));
        }
        for i in 0..10 {
            spilled.insert(c(i));
        }
        for i in 0..10 {
            if ![0, 5, 9].contains(&i) {
                spilled.remove(c(i));
            }
        }
        let bytes_of = |s: &SharerSet| {
            let mut w = ByteWriter::new();
            s.save(&mut w);
            w.into_bytes()
        };
        assert_eq!(bytes_of(&inline), bytes_of(&spilled));
        let bytes = bytes_of(&inline);
        let mut r = ByteReader::new(&bytes);
        let restored = SharerSet::load(&mut r, 16).unwrap();
        assert_eq!(restored, inline);
    }

    #[test]
    fn load_rejects_unknown_cores_and_unsorted_streams() {
        let mut s = SharerSet::new();
        s.insert(c(20));
        let mut w = ByteWriter::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(SharerSet::load(&mut r, 16).is_err(), "core 20 of 16");

        let mut w = ByteWriter::new();
        w.u32(2);
        w.u16(5);
        w.u16(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(SharerSet::load(&mut r, 16).is_err(), "duplicate id");
    }
}
