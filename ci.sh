#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. No network access required.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test -q"
cargo test --workspace -q --offline

echo "==> cargo test -q --release"
cargo test --workspace -q --release --offline

echo "==> conformance smoke (adversarial schedules, bounded seeds)"
# Bounded-time schedule-fuzzing pass: the virtual-scheduler matrix from
# crates/conformance runs in release with a pinned seed count per
# adversarial schedule so wall time stays inside the CI budget. Raise
# SLACKSIM_CONFORMANCE_SEEDS locally for a deeper exploration.
SLACKSIM_CONFORMANCE_SEEDS=4 \
    cargo test -p slacksim-conformance -q --release --offline

echo "==> delta-checkpoint smoke (bounded slack, full-vs-delta oracle + CLI)"
# The delta-vs-full state-equality oracle (DESIGN §11-§12) on the
# deterministic engine — delta-restored state must be bit-identical to a
# full-clone restore across the speculation matrix — plus one end-to-end
# threaded delta-mode run through the release binary under a greedy
# (bounded) scheme.
cargo test -p slacksim-conformance -q --release --offline \
    --test conformance delta_checkpoints_match_full_clones_exactly
./target/release/slacksim --scheme bounded --bound 16 --engine threaded \
    --commit 20000 --checkpoint 2000 --checkpoint-mode delta --rollback all \
    > /dev/null

echo "==> bench smoke (engine_throughput, short run, checked against baseline)"
# Short run into a scratch path, compared against the committed
# BENCH_threaded.json: every engine/scheme row must keep at least 0.25x
# the committed median throughput or the bench exits non-zero. The
# tolerance is deliberately generous — the smoke run's commit target is
# ~7x smaller than the committed full run's, so fixed startup costs weigh
# more and shared CI hosts add noise — but it still catches the silent
# multi-x regressions that previously drifted past this stage unnoticed.
smoke_out="$(mktemp /tmp/BENCH_threaded_smoke.XXXXXX.json)"
# Paths must be absolute: cargo bench runs the binary with the package
# directory as its working directory, not the repo root.
SLACKSIM_BENCH_SMOKE=1 SLACKSIM_BENCH_OUT="$smoke_out" \
SLACKSIM_BENCH_BASELINE="$PWD/BENCH_threaded.json" SLACKSIM_BENCH_TOLERANCE=0.25 \
    cargo bench -p slacksim-bench --bench engine_throughput --offline
test -s "$smoke_out" || { echo "ci: bench smoke produced no output" >&2; exit 1; }
rm -f "$smoke_out"

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "ci: all green"
