//! Property-based tests for the target-CMP substrate: the cache against a
//! reference model, bus slot-calendar exclusivity, cache-map protocol
//! invariants and synchronisation-device laws.

use std::collections::HashMap;

use proptest::prelude::*;

use slacksim_cmp::bus::Bus;
use slacksim_cmp::cache::{Cache, CacheConfig, LineAddr};
use slacksim_cmp::map::CacheMap;
use slacksim_cmp::mesi::{BusOp, MesiState};
use slacksim_cmp::sync::SyncDevice;
use slacksim_core::event::CoreId;
use slacksim_core::time::Cycle;

/// An independent, naive set-associative LRU model: per set, a vector of
/// (tag, state) ordered most-recently-used first.
#[derive(Debug, Default)]
struct RefCache {
    sets: HashMap<u64, Vec<(u64, MesiState)>>,
    ways: usize,
    set_mask: u64,
    set_bits: u32,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as u64;
        RefCache {
            sets: HashMap::new(),
            ways: cfg.ways,
            set_mask: sets - 1,
            set_bits: sets.trailing_zeros(),
        }
    }

    fn split(&self, line: LineAddr) -> (u64, u64) {
        (line.raw() & self.set_mask, line.raw() >> self.set_bits)
    }

    fn probe(&mut self, line: LineAddr) -> Option<MesiState> {
        let (set, tag) = self.split(line);
        let ways = self.sets.entry(set).or_default();
        if let Some(pos) = ways.iter().position(|&(t, _)| t == tag) {
            let entry = ways.remove(pos);
            ways.insert(0, entry);
            Some(entry.1)
        } else {
            None
        }
    }

    fn fill(&mut self, line: LineAddr, state: MesiState) -> Option<(LineAddr, MesiState)> {
        let (set, tag) = self.split(line);
        let ways_cap = self.ways;
        let set_bits = self.set_bits;
        let ways = self.sets.entry(set).or_default();
        if let Some(pos) = ways.iter().position(|&(t, _)| t == tag) {
            ways.remove(pos);
            ways.insert(0, (tag, state));
            return None;
        }
        let victim = if ways.len() == ways_cap {
            let (vt, vs) = ways.pop().expect("full set");
            Some((LineAddr::new((vt << set_bits) | set), vs))
        } else {
            None
        };
        ways.insert(0, (tag, state));
        victim
    }

    fn invalidate(&mut self, line: LineAddr) -> Option<MesiState> {
        let (set, tag) = self.split(line);
        let ways = self.sets.entry(set).or_default();
        ways.iter()
            .position(|&(t, _)| t == tag)
            .map(|pos| ways.remove(pos).1)
    }
}

/// Operations driven against both cache models.
#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Probe(u64),
    Fill(u64, MesiState),
    Invalidate(u64),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    let states = prop_oneof![
        Just(MesiState::Modified),
        Just(MesiState::Exclusive),
        Just(MesiState::Shared),
    ];
    prop_oneof![
        (0u64..64).prop_map(CacheOp::Probe),
        ((0u64..64), states).prop_map(|(l, s)| CacheOp::Fill(l, s)),
        (0u64..64).prop_map(CacheOp::Invalidate),
    ]
}

proptest! {
    /// The production cache agrees with the naive reference model on
    /// every probe/fill/invalidate outcome, including victim choice.
    #[test]
    fn cache_matches_reference_model(ops in prop::collection::vec(cache_op(), 1..300)) {
        // Small geometry maximises eviction traffic: 4 sets × 2 ways.
        let cfg = CacheConfig { size_bytes: 256, ways: 2, line_bytes: 32 };
        let mut real = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for &op in &ops {
            match op {
                CacheOp::Probe(l) => {
                    prop_assert_eq!(real.probe(LineAddr::new(l)), reference.probe(LineAddr::new(l)));
                }
                CacheOp::Fill(l, s) => {
                    prop_assert_eq!(real.fill(LineAddr::new(l), s), reference.fill(LineAddr::new(l), s));
                }
                CacheOp::Invalidate(l) => {
                    prop_assert_eq!(real.invalidate(LineAddr::new(l)), reference.invalidate(LineAddr::new(l)));
                }
            }
        }
    }

    /// Bus grants never overlap: any two grants are at least the bus
    /// occupancy apart, and each grant is at or after its request.
    #[test]
    fn bus_grants_are_exclusive(
        requests in prop::collection::vec(0u64..2_000, 1..200),
        occupancy in 1u64..4
    ) {
        let mut bus = Bus::new(occupancy, 1);
        let mut grants = Vec::new();
        for &ts in &requests {
            let g = bus.arbitrate(Cycle::new(ts));
            prop_assert!(g.grant.as_u64() >= ts, "grant before request");
            grants.push(g.grant.as_u64());
        }
        grants.sort_unstable();
        for w in grants.windows(2) {
            prop_assert!(w[1] - w[0] >= occupancy, "overlapping grants {w:?}");
        }
    }

    /// Response-bus slots are also exclusive.
    #[test]
    fn response_slots_are_exclusive(
        ready in prop::collection::vec(0u64..2_000, 1..200),
        occupancy in 1u64..4
    ) {
        let mut bus = Bus::new(1, occupancy);
        let mut ends = Vec::new();
        for &ts in &ready {
            let done = bus.respond(Cycle::new(ts));
            prop_assert!(done.as_u64() >= ts + occupancy);
            ends.push(done.as_u64());
        }
        ends.sort_unstable();
        for w in ends.windows(2) {
            prop_assert!(w[1] - w[0] >= occupancy, "overlapping transfers {w:?}");
        }
    }

    /// Cache-map protocol invariants under arbitrary transition streams:
    /// Rd grants E only when alone, S otherwise; RdX/Upgr grant M and
    /// invalidate every other sharer; writebacks clear the writer.
    #[test]
    fn cache_map_protocol_invariants(
        ops in prop::collection::vec(
            ((0u8..3), (0u64..8), (0u16..4), (0u64..10_000)),
            1..300
        )
    ) {
        let mut map = CacheMap::new(4);
        // Shadow state: per line, the set of holders.
        let mut shadow: HashMap<u64, std::collections::BTreeSet<u16>> = HashMap::new();
        for &(op_idx, line, core, ts) in &ops {
            let op = [BusOp::Rd, BusOp::RdX, BusOp::Wb][op_idx as usize];
            let out = map.transition(op, LineAddr::new(line), CoreId::new(core), Cycle::new(ts));
            let holders = shadow.entry(line).or_default();
            match op {
                BusOp::Rd => {
                    let others_before = holders.iter().any(|&c| c != core);
                    if others_before {
                        prop_assert_eq!(out.grant, MesiState::Shared);
                    } else {
                        prop_assert_eq!(out.grant, MesiState::Exclusive);
                    }
                    prop_assert!(out.invalidate.is_empty(), "Rd never invalidates");
                    holders.insert(core);
                }
                BusOp::RdX => {
                    prop_assert_eq!(out.grant, MesiState::Modified);
                    let expected: Vec<u16> =
                        holders.iter().copied().filter(|&c| c != core).collect();
                    let got: Vec<u16> =
                        out.invalidate.iter().map(|c| c.index() as u16).collect();
                    prop_assert_eq!(got, expected, "RdX must invalidate all others");
                    holders.clear();
                    holders.insert(core);
                }
                BusOp::Wb => {
                    holders.remove(&core);
                }
                BusOp::Upgr => unreachable!(),
            }
            // The map's sharer view must match the shadow.
            let map_sharers: Vec<u16> = map
                .sharers(LineAddr::new(line))
                .iter()
                .map(|c| c.index() as u16)
                .collect();
            let shadow_sharers: Vec<u16> = holders.iter().copied().collect();
            prop_assert_eq!(map_sharers, shadow_sharers);
        }
    }

    /// Barriers release exactly when the last participant arrives, at the
    /// maximum arrival time plus the device latency, whatever the order.
    #[test]
    fn barrier_release_law(
        arrival_ts in prop::collection::vec(0u64..10_000, 4),
        order in Just([0u16, 1, 2, 3]).prop_shuffle(),
        latency in 0u64..16
    ) {
        let mut dev = SyncDevice::new(4, latency, 1);
        let mut released = None;
        for (i, &core) in order.iter().enumerate() {
            let ts = arrival_ts[core as usize];
            let out = dev.barrier_arrive(CoreId::new(core), 0, Cycle::new(ts));
            if i < 3 {
                prop_assert!(out.is_none(), "released early");
            } else {
                released = out;
            }
        }
        let (release, cores) = released.expect("all arrived");
        let max_ts = *arrival_ts.iter().max().expect("nonempty");
        prop_assert_eq!(release.as_u64(), max_ts + latency);
        prop_assert_eq!(cores.len(), 4);
    }

    /// Locks provide mutual exclusion with FIFO handover: grants never
    /// overlap and follow request order among waiters.
    #[test]
    fn lock_fifo_mutual_exclusion(
        requests in prop::collection::vec((0u16..4, 0u64..1_000), 2..20)
    ) {
        let mut dev = SyncDevice::new(4, 1, 2);
        let mut hold_order: Vec<u16> = Vec::new();
        let mut queue: Vec<u16> = Vec::new();
        let mut holder: Option<u16> = None;
        // All on one lock id; each core acquires then releases immediately
        // at a later timestamp.
        let mut t = 0u64;
        for &(core, gap) in &requests {
            t += gap;
            match dev.lock_acquire(CoreId::new(core), 9, Cycle::new(t)) {
                Some(_) => {
                    prop_assert!(holder.is_none(), "grant while held");
                    holder = Some(core);
                    hold_order.push(core);
                }
                None => queue.push(core),
            }
            // Holder releases immediately.
            if let Some(h) = holder.take() {
                t += 1;
                if let Some((next, _)) = dev.lock_release(CoreId::new(h), 9, Cycle::new(t)) {
                    let expected = queue.remove(0);
                    prop_assert_eq!(next.index() as u16, expected, "FIFO handover");
                    holder = Some(next.index() as u16);
                    hold_order.push(expected);
                }
            }
        }
        prop_assert!(!hold_order.is_empty());
    }
}
