//! The threaded engine: one host thread per target core plus the
//! simulation-manager logic, exactly as SlackSim maps a CMP simulation
//! onto a host CMP (paper §2).
//!
//! Each core thread owns its [`CoreModel`] and advances it while its local
//! time is below the max local time published by the manager. Events flow
//! through shared queues (OutQ/InQ); the manager consolidates OutQ
//! entries into the global queue and services them — greedily under slack
//! schemes, in sorted batches at window boundaries under barrier schemes
//! (cycle-by-cycle, quantum, and post-rollback replay).
//!
//! Checkpoints and rollbacks use a stop-sync protocol over per-core command
//! channels: *stop → run-to common local time → drain → snapshot/restore →
//! resume*, the in-memory equivalent of the paper's `fork()`-based global
//! checkpoints.
//!
//! Everything here is built on `std` alone: `std::sync::mpsc` channels for
//! commands/acks (each core's receiver is moved into its thread), the
//! lock-free [`SpscRing`] for the OutQ/InQ event paths, and the
//! mutex-backed [`SnapshotSlot`] for checkpoint hand-off.
//!
//! ## Host-synchronization design (see DESIGN.md "Engine concurrency")
//!
//! * OutQ/InQ are bounded lock-free SPSC rings with an overflow spill;
//!   each direction has exactly one producer and one consumer, and the
//!   stop-sync protocol's channel acks order every role handoff (e.g. the
//!   manager clearing a core's InQ during rollback while the core is
//!   parked in its command loop).
//! * The manager drains each OutQ in one batch per visit and batch-inserts
//!   into the global queue; its loop reuses persistent scratch buffers and
//!   interned metric keys, so the steady state performs no heap
//!   allocation.
//! * Waiting is an adaptive ladder — spin, then `yield_now`, then
//!   park/unpark with a timeout backstop — for both core threads capped by
//!   the window and the manager when no core made progress.
//! * With `shards > 1` (see DESIGN.md §18) the manager becomes a two-level
//!   tree: shard-manager threads each consolidate a contiguous run of
//!   cores' OutQs into a per-shard forwarding ring and publish a
//!   conservative clock floor; the root manager (shard 0, folded into the
//!   classic manager loop) reconciles the floors into the slack window,
//!   drains the forwarding rings into the global queue, and keeps sole
//!   ownership of servicing, checkpointing and window publication. Every
//!   ring stays strictly SPSC; stop-sync paths pause the shard tier first
//!   (channel acks hand the ring-consumer role to the root). `--shards 1`
//!   builds none of this and is byte-identical to the single-manager
//!   engine.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::checkpoint::{CheckpointMode, Checkpointable};
use crate::engine::{
    CheckpointView, CoreModel, EngineConfig, EngineError, EngineResume, FinishReason, SaveHook,
    ServiceSink, TickCtx, UncoreModel,
};
use crate::event::{CoreId, GlobalQueue, Inbox, Timestamped};
use crate::obs::live::NO_BOUND;
use crate::obs::{
    GaugeId, HistId, LiveStats, MetricsRegistry, ObsData, Phase, ProfHandle, ProfSite, Profiler,
    QueueKind, TraceEvent, TraceHandle, Tracer,
};
use crate::sched::{HostSched, SchedSite, TaskId};
use crate::scheme::{PaceSample, Pacer};
use crate::speculative::{IntervalTracker, SpeculationStats};
use crate::stats::{Counters, SimReport};
use crate::sync::{SnapshotSlot, SpscRing};
use crate::time::Cycle;
use crate::violation::ViolationTally;

/// Spin iterations before a capped core starts yielding (plenty-of-CPUs
/// hosts only; oversubscribed hosts skip the spin tier).
const CORE_SPIN_ITERS: u32 = 64;
/// Yield iterations before a capped core parks.
const CORE_YIELD_ITERS: u32 = 64;
/// Park-timeout backstop for core threads: the manager unparks them on
/// every window publish, the timeout only covers lost-wakeup races.
const CORE_PARK_TIMEOUT: Duration = Duration::from_micros(100);

/// Spin iterations before an idle manager starts yielding.
const MGR_SPIN_ITERS: u32 = 32;
/// Yield iterations before an idle manager parks.
const MGR_YIELD_ITERS: u32 = 32;
/// Yield iterations before an idle manager parks on an oversubscribed
/// host (the spin tier is skipped there: spinning steals the quanta the
/// core threads need, while yielding hands the CPU over within a few
/// scheduler decisions).
const MGR_YIELD_ITERS_OVERSUB: u32 = 128;
/// Yield iterations before a capped core parks on an oversubscribed host.
const CORE_YIELD_ITERS_OVERSUB: u32 = 256;
/// Manager park timeout: nobody unparks the manager, so this is the
/// polling cadence once the ladder bottoms out.
const MGR_PARK_TIMEOUT: Duration = Duration::from_micros(20);

/// Yield-tier depth used under a virtual scheduler (both ladders): the
/// spin tier is skipped and the yield tier pinned to a short,
/// machine-independent count so explored schedules do not depend on the
/// host's core count or timing.
const VIRT_YIELD_ITERS: u32 = 2;

/// True when the host cannot run all `n` core threads plus the manager
/// concurrently. Spinning in that regime only burns the quanta the
/// productive threads need, so both wait ladders skip their spin tier and
/// lead with `yield_now`.
fn host_oversubscribed(n: usize) -> bool {
    std::thread::available_parallelism().map_or(true, |p| p.get() < n + 1)
}

/// Commands the manager sends to a core thread.
enum Command<C: CoreModel> {
    /// Pause at the current local time and acknowledge it.
    Stop,
    /// Run (ignoring the published max local time) until the local clock
    /// reaches the given cycle, then acknowledge.
    RunTo(u64),
    /// Capture the core's state into the snapshot slot: a full clone of
    /// the model and pending inbox, or (delta mode) a delta against the
    /// generation recorded at the previous capture.
    Snapshot { delta: bool },
    /// Replace the core model and inbox with the given restored state
    /// (full mode).
    Restore(Box<CoreSnapshot<C>>),
    /// Rewind the model onto the given checkpoint base via
    /// [`Checkpointable::restore_from`] (delta mode) and hand the
    /// untouched base back through the snapshot slot.
    RestoreDelta(Box<CoreSnapshot<C>>),
    /// Leave the control sub-loop and return to normal execution.
    Resume,
}

/// A core thread's snapshot: the model plus its undelivered inbox events.
type CoreSnapshot<C> = (C, Inbox<<C as CoreModel>::Event>);

/// What a core thread deposits in its snapshot slot.
enum CoreCapture<C: CoreModel + Checkpointable> {
    /// Full clone of the model and pending inbox.
    Full(Box<CoreSnapshot<C>>),
    /// Delta against the previous capture, plus the pending inbox
    /// (inboxes are tiny at checkpoint boundaries; deltas do not pay to
    /// diff them).
    Delta(Box<(C::Delta, Inbox<<C as CoreModel>::Event>)>),
    /// The checkpoint base handed back untouched after a delta-mode
    /// rollback, so the manager keeps its standing copy without a clone.
    Base(Box<CoreSnapshot<C>>),
}

/// State shared between the manager and one core thread.
struct CoreShared<C: CoreModel + Checkpointable> {
    local: AtomicU64,
    max_local: AtomicU64,
    /// Core produces, manager consumes.
    outq: SpscRing<Timestamped<C::Event>>,
    /// Manager produces, core consumes.
    inq: SpscRing<Timestamped<C::Event>>,
    snapshot: SnapshotSlot<CoreCapture<C>>,
    /// True while the core thread is (about to be) parked on the window.
    parked: AtomicBool,
    /// Raised by the manager before every command send; the core's
    /// pre-park re-check reads it so a command can never be lost to the
    /// park race (the parked flag alone is not enough: an earlier wake
    /// may have already claimed it, and the window/done re-check says
    /// nothing about the command channel). Cleared by the core at the
    /// top of its loop, before it polls the channel.
    cmd_pending: AtomicBool,
    /// The core thread's scheduler task, registered once at thread
    /// startup so the manager can unpark it.
    task: OnceLock<TaskId>,
    /// Number of times the core thread reached the park tier.
    parks: AtomicU64,
}

/// Unparks the core thread behind `s` if it is parked (or about to park).
///
/// The SeqCst fence pairs with the core's store-fence-recheck sequence
/// before it parks: the caller's preceding state change (window store,
/// done flag, `cmd_pending`) and the core's parked flag cannot both be
/// missed, so a wake-up is never lost — provided the state change is one
/// the re-check actually reads. Command sends must therefore go through
/// [`send_cmd`], which raises `cmd_pending` first; the send alone is
/// invisible to the re-check, and the parked flag may already have been
/// claimed by an earlier wake, in which case this function does nothing.
fn wake_core<C: CoreModel + Checkpointable>(s: &CoreShared<C>, sched: &dyn HostSched) {
    fence(Ordering::SeqCst);
    if s.parked.load(Ordering::Relaxed) && s.parked.swap(false, Ordering::SeqCst) {
        if let Some(&t) = s.task.get() {
            sched.unpark(t);
        }
    }
}

/// Sends a command to a core with a park-safe wake-up: `cmd_pending` is
/// raised before the send so the core either sees it in its pre-park
/// re-check or is already awake and polls the channel on its next loop
/// iteration. Without the flag a command could strand a core in its park
/// until the timeout backstop — a stall the virtual-scheduler conformance
/// runs (which park without timeouts) diagnose as a livelock.
fn send_cmd<C: CoreModel + Checkpointable>(
    s: &CoreShared<C>,
    tx: &Sender<Command<C>>,
    cmd: Command<C>,
    sched: &dyn HostSched,
) {
    s.cmd_pending.store(true, Ordering::SeqCst);
    tx.send(cmd).expect("core alive");
    wake_core(s, sched);
}

/// Commands the root manager sends to a shard-manager thread
/// (threaded engine with `shards > 1`).
enum ShardCmd {
    /// Forward everything visible, acknowledge, and hold: until `Resume`
    /// arrives the root owns the shard's rings (the forwarding ring and
    /// its cores' OutQs) — the channel ack is the role handoff, exactly
    /// like the core stop-sync protocol.
    Pause,
    /// Leave the control sub-loop and return to forwarding.
    Resume,
}

/// State shared between the root manager and one shard-manager thread.
///
/// A shard-manager owns a contiguous run of cores and runs the
/// consolidation half of the manager loop locally: it drains its cores'
/// OutQs into `fwd` (tagging each event with its producing core) and
/// publishes a conservative clock floor. The root folds every shard's
/// floor into its window arithmetic (see
/// [`reconcile_shard_floor`](crate::scheme::reconcile_shard_floor)) and
/// is the only consumer of `fwd`, so every ring stays strictly SPSC.
struct ShardShared<C: CoreModel> {
    /// Shard produces, root consumes: the shard's cores' events, each
    /// tagged with its producing core so the root can feed the global
    /// queue without knowing the shard split.
    fwd: SpscRing<(CoreId, Timestamped<C::Event>)>,
    /// Conservative floor: every event the shard's cores produced below
    /// this cycle has been pushed into `fwd`. Release-stored after the
    /// push, so the root's Acquire load followed by a ring drain observes
    /// them all.
    min_time: AtomicU64,
    /// Cumulative events forwarded (host-side telemetry; carried across
    /// checkpoint/resume via `CheckpointView::shard_forwarded`).
    forwarded: AtomicU64,
    /// True while the shard thread is (about to be) parked.
    parked: AtomicBool,
    /// Same lost-wakeup guard as [`CoreShared::cmd_pending`].
    cmd_pending: AtomicBool,
    /// The shard thread's scheduler task.
    task: OnceLock<TaskId>,
    /// Number of times the shard thread reached the park tier.
    parks: AtomicU64,
}

/// Unparks the shard thread behind `sh` if it is parked (or about to
/// park). Same fence pairing as [`wake_core`].
fn wake_shard<C: CoreModel>(sh: &ShardShared<C>, sched: &dyn HostSched) {
    fence(Ordering::SeqCst);
    if sh.parked.load(Ordering::Relaxed) && sh.parked.swap(false, Ordering::SeqCst) {
        if let Some(&t) = sh.task.get() {
            sched.unpark(t);
        }
    }
}

/// Sends a command to a shard with the same park-safe wake-up protocol as
/// [`send_cmd`].
fn send_shard_cmd<C: CoreModel>(
    sh: &ShardShared<C>,
    tx: &Sender<ShardCmd>,
    cmd: ShardCmd,
    sched: &dyn HostSched,
) {
    sh.cmd_pending.store(true, Ordering::SeqCst);
    tx.send(cmd).expect("shard alive");
    wake_shard(sh, sched);
}

/// The root manager's handle on the shard tier. Empty when `shards == 1`:
/// every helper then degrades to the classic single-manager behaviour
/// (`k0 == n`, no forwarding rings, floors trivially satisfied), keeping
/// the default configuration on the exact pre-shard code path.
struct ShardSet<C: CoreModel + Checkpointable> {
    /// Remote shards `1..S` (shard 0 is folded into the root).
    shards: Vec<Arc<ShardShared<C>>>,
    cmd_txs: Vec<Sender<ShardCmd>>,
    ack_rxs: Vec<Receiver<()>>,
    /// Cores the root consolidates directly (`shared[..k0]`).
    k0: usize,
    /// `shard_forwarded` total carried from a resumed snapshot taken
    /// under a different shard split (per-shard seeding is impossible, so
    /// the sum keeps the aggregate counter monotone).
    resume_base: u64,
    /// Per-shard forwarded counts captured at the last pause — the
    /// values a checkpoint persists, exact because shards are always
    /// paused while a checkpoint is taken.
    paused_forwarded: Vec<u64>,
    /// Scratch for forwarding-ring drains.
    buf: Vec<(CoreId, Timestamped<C::Event>)>,
}

impl<C: CoreModel + Checkpointable> ShardSet<C> {
    /// The single-manager configuration: no remote shards, the root owns
    /// all `n` cores.
    fn solo(n: usize) -> Self {
        ShardSet {
            shards: Vec::new(),
            cmd_txs: Vec::new(),
            ack_rxs: Vec::new(),
            k0: n,
            resume_base: 0,
            paused_forwarded: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Drains every (visible) forwarded event into the global queue. The
    /// root is the forwarding rings' only consumer, so this is equally
    /// legal in steady state and mid-pause. Per-core FIFO order is
    /// preserved end to end (core OutQ → shard drain → `fwd` → here), so
    /// the global queue's `(ts, core, seq)` order — and with it
    /// cycle-by-cycle determinism — is independent of shard interleaving.
    fn drain_forward(&mut self, gq: &mut GlobalQueue<C::Event>) -> usize {
        let mut total = 0;
        for sh in &self.shards {
            self.buf.clear();
            if sh.fwd.drain_into(&mut self.buf) > 0 {
                total += self.buf.len();
                for (from, ev) in self.buf.drain(..) {
                    gq.push(from, ev);
                }
            }
        }
        total
    }

    /// Steady-state consolidation: the root's own cores' OutQs plus every
    /// shard's forwarding ring.
    fn drain_steady(
        &mut self,
        shared: &[Arc<CoreShared<C>>],
        gq: &mut GlobalQueue<C::Event>,
        drain_buf: &mut Vec<Timestamped<C::Event>>,
    ) -> usize {
        let direct = drain_outqs(&shared[..self.k0], gq, drain_buf);
        direct + self.drain_forward(gq)
    }

    /// The slack floor greedy window publication paces against: the
    /// root's own cores' minimum reconciled with every shard's published
    /// floor. With no shards this is exactly the global minimum, so the
    /// single-manager window arithmetic is unchanged.
    fn floor(&self, locals: &[u64]) -> Cycle {
        let root_min = locals[..self.k0].iter().copied().min().expect("k0 >= 1");
        crate::scheme::reconcile_shard_floor(
            std::iter::once(Cycle::new(root_min)).chain(
                self.shards
                    .iter()
                    .map(|sh| Cycle::new(sh.min_time.load(Ordering::Acquire))),
            ),
        )
        .expect("at least the root floor")
    }

    /// True when every shard has published a floor at or past `c`
    /// (trivially true with no shards) — the barrier flush gate: combined
    /// with all locals at the boundary it guarantees every event below
    /// the boundary is visible in the forwarding rings.
    fn flushed_to(&self, c: Cycle) -> bool {
        self.shards
            .iter()
            .all(|sh| sh.min_time.load(Ordering::Acquire) >= c.as_u64())
    }

    /// Pauses every shard: each forwards its remaining visible events,
    /// acknowledges, and blocks until [`resume`](Self::resume). Also
    /// captures the per-shard forwarded counts for checkpoint persist.
    fn pause(&mut self, sched: &dyn HostSched) {
        if self.shards.is_empty() {
            return;
        }
        for (sh, tx) in self.shards.iter().zip(&self.cmd_txs) {
            send_shard_cmd(sh, tx, ShardCmd::Pause, sched);
        }
        let virt = sched.virtualized();
        for rx in &self.ack_rxs {
            if !virt {
                rx.recv().expect("shard alive");
            } else {
                loop {
                    match rx.try_recv() {
                        Ok(()) => break,
                        Err(TryRecvError::Empty) => sched.idle_yield(SchedSite::AwaitAck),
                        Err(TryRecvError::Disconnected) => panic!("shard alive"),
                    }
                }
            }
        }
        self.paused_forwarded.clear();
        self.paused_forwarded.extend(
            self.shards
                .iter()
                .map(|sh| sh.forwarded.load(Ordering::Relaxed)),
        );
    }

    /// Discards every forwarded-but-unserviced event (rollback path; the
    /// shards must be paused).
    fn clear_forward(&self) {
        for sh in &self.shards {
            sh.fwd.clear();
        }
    }

    /// Re-seeds every shard's floor while paused (rollback rewinds it to
    /// the checkpoint; stop-syncs advance it to the common stop point so
    /// the first post-resume window does not shrink to a stale floor).
    fn set_floors(&self, c: Cycle) {
        for sh in &self.shards {
            sh.min_time.store(c.as_u64(), Ordering::Release);
        }
    }

    /// Sends `Resume` to every (paused) shard.
    fn resume(&self, sched: &dyn HostSched) {
        for (sh, tx) in self.shards.iter().zip(&self.cmd_txs) {
            send_shard_cmd(sh, tx, ShardCmd::Resume, sched);
        }
    }
}

/// One shard consolidation pass: read the owned cores' clocks (the
/// floor), drain their OutQs into the forwarding ring tagged with the
/// producing core, then publish the floor. Reading the clocks *before*
/// draining is what makes the floor conservative: a core Release-stores
/// its clock only after pushing that tick's events, so every event below
/// the floor read here is already visible to the drain that follows.
/// Returns how many events moved and whether the floor advanced.
fn forward_shard<C: CoreModel + Checkpointable>(
    owned: &[Arc<CoreShared<C>>],
    sh: &ShardShared<C>,
    base: u16,
    buf: &mut Vec<(CoreId, Timestamped<C::Event>)>,
) -> (usize, bool) {
    let floor = owned
        .iter()
        .map(|s| s.local.load(Ordering::Acquire))
        .min()
        .expect("shard owns >= 1 core");
    buf.clear();
    let mut moved = 0;
    for (j, s) in owned.iter().enumerate() {
        let id = CoreId::new(base + j as u16);
        moved += s.outq.drain_map_into(buf, |ev| (id, ev));
    }
    if moved > 0 {
        sh.fwd.push_batch(buf);
        sh.forwarded.fetch_add(moved as u64, Ordering::Relaxed);
    }
    let advanced = sh.min_time.load(Ordering::Relaxed) < floor;
    sh.min_time.store(floor, Ordering::Release);
    (moved, advanced)
}

/// Shard-manager thread main loop (threaded engine with `shards > 1`):
/// consolidate the owned cores' OutQs toward the root, publish the
/// shard's floor, obey root pause/resume commands, exit when the done
/// flag rises. Waiting escalates through the same manager-profile ladder
/// (spin → yield → park) with the Dekker pre-park re-check guarding the
/// command channel.
#[allow(clippy::too_many_arguments)]
fn shard_thread<C: CoreModel + Checkpointable>(
    index: usize,
    base: u16,
    owned: &[Arc<CoreShared<C>>],
    sh: &ShardShared<C>,
    done: &AtomicBool,
    cmd_rx: &Receiver<ShardCmd>,
    ack_tx: &Sender<()>,
    oversubscribed: bool,
    sched: &dyn HostSched,
    ph: ProfHandle,
) {
    let virt = sched.virtualized();
    let task = sched.register(&format!("shard{index}"));
    let _ = sh.task.set(task);
    let mut buf: Vec<(CoreId, Timestamped<C::Event>)> = Vec::new();
    let (spin_iters, yield_iters) = if virt {
        (0u32, VIRT_YIELD_ITERS)
    } else if oversubscribed {
        (0u32, MGR_YIELD_ITERS_OVERSUB)
    } else {
        (MGR_SPIN_ITERS, MGR_YIELD_ITERS)
    };
    let mut idle = 0u32;
    'main: loop {
        sched.point(SchedSite::ShardLoop);
        // Same clear-before-poll discipline as the core threads: a flag
        // raised after the clear whose command this poll misses is
        // re-derived next iteration.
        sh.cmd_pending.store(false, Ordering::Relaxed);
        match cmd_rx.try_recv() {
            Ok(mut cmd) => loop {
                match cmd {
                    ShardCmd::Pause => {
                        let _span = ph.enter(ProfSite::ShardService);
                        forward_shard(owned, sh, base, &mut buf);
                        ack_tx.send(()).expect("root alive");
                    }
                    ShardCmd::Resume => {
                        idle = 0;
                        continue 'main;
                    }
                }
                cmd = if virt {
                    loop {
                        match cmd_rx.try_recv() {
                            Ok(c) => break c,
                            Err(TryRecvError::Empty) => sched.idle_yield(SchedSite::AwaitCmd),
                            Err(TryRecvError::Disconnected) => break 'main,
                        }
                    }
                } else {
                    match cmd_rx.recv() {
                        Ok(c) => c,
                        Err(_) => break 'main,
                    }
                };
            },
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => break 'main,
        }
        if done.load(Ordering::Acquire) {
            break 'main;
        }
        let (moved, advanced) = {
            let _span = ph.enter(ProfSite::ShardService);
            forward_shard(owned, sh, base, &mut buf)
        };
        if moved > 0 || advanced {
            idle = 0;
            continue;
        }
        idle = idle.saturating_add(1);
        if idle <= spin_iters {
            let _span = ph.enter(ProfSite::ManagerWaitSpin);
            sched.idle_spin(SchedSite::ShardIdle);
        } else if idle <= spin_iters + yield_iters {
            let _span = ph.enter(ProfSite::ManagerWaitYield);
            sched.idle_yield(SchedSite::ShardIdle);
        } else {
            let _span = ph.enter(ProfSite::ManagerWaitPark);
            // Dekker-style publication, mirroring the core pre-park: the
            // root raises `cmd_pending` before every command send, so
            // either this re-check sees it or the root's `wake_shard`
            // sees the parked flag.
            sh.parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            sched.point(SchedSite::PreParkCheck);
            if !done.load(Ordering::Relaxed) && !sh.cmd_pending.load(Ordering::Relaxed) {
                sh.parks.fetch_add(1, Ordering::Relaxed);
                sched.park_timeout(SchedSite::ShardIdle, MGR_PARK_TIMEOUT);
            }
            sh.parked.store(false, Ordering::Relaxed);
        }
    }
    sched.unregister();
}

/// The manager's adaptive wait ladder: spin, then yield, then park with a
/// timeout. Reset on any progress. On oversubscribed hosts the spin tier
/// is skipped and the yield tier shortened: no core can advance while the
/// manager holds the CPU, so burning it is counterproductive.
struct Backoff {
    idle: u32,
    parks: u64,
    spin_iters: u32,
    park_after: u32,
}

impl Backoff {
    fn new(oversubscribed: bool, virtualized: bool) -> Self {
        let (spin_iters, yield_iters) = if virtualized {
            (0, VIRT_YIELD_ITERS)
        } else if oversubscribed {
            (0, MGR_YIELD_ITERS_OVERSUB)
        } else {
            (MGR_SPIN_ITERS, MGR_YIELD_ITERS)
        };
        Backoff {
            idle: 0,
            parks: 0,
            spin_iters,
            park_after: spin_iters + yield_iters,
        }
    }

    #[inline]
    fn reset(&mut self) {
        self.idle = 0;
    }

    /// Profiler site the *next* `wait` call will land in, so the caller
    /// can open the matching span before entering the ladder.
    #[inline]
    fn next_site(&self) -> ProfSite {
        let next = self.idle.saturating_add(1);
        if next <= self.spin_iters {
            ProfSite::ManagerWaitSpin
        } else if next <= self.park_after {
            ProfSite::ManagerWaitYield
        } else {
            ProfSite::ManagerWaitPark
        }
    }

    fn wait(&mut self, sched: &dyn HostSched) {
        self.idle = self.idle.saturating_add(1);
        if self.idle <= self.spin_iters {
            sched.idle_spin(SchedSite::ManagerIdle);
        } else if self.idle <= self.park_after {
            sched.idle_yield(SchedSite::ManagerIdle);
        } else {
            self.parks += 1;
            sched.park_timeout(SchedSite::ManagerIdle, MGR_PARK_TIMEOUT);
        }
    }
}

/// Execution mode of the speculation state machine (mirrors the
/// sequential engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Base,
    Replay,
}

/// Manager-side copy of a global checkpoint.
///
/// The snapshot always holds *full* state in both checkpoint modes; the
/// mode only changes how it is maintained. Full mode rebuilds it from
/// fresh clones at every checkpoint; delta mode applies the cores'
/// capture deltas onto the standing copy in place and rolls back via
/// `restore_from`, which copies only the units that diverged.
struct ManagerSnapshot<C: CoreModel, U> {
    cores: Vec<CoreSnapshot<C>>,
    uncore: U,
    /// Generation token of the live uncore at this checkpoint (the
    /// baseline the next delta capture diffs against; unused in full
    /// mode).
    uncore_gen: u64,
    global: Cycle,
    tally: ViolationTally,
    committed: u64,
    pacer: Box<dyn Pacer>,
    next_sample: u64,
    last_sample_tally: ViolationTally,
}

/// Parallel slack-simulation engine: `n` core threads plus the manager.
///
/// Semantics are identical to
/// [`SequentialEngine`](crate::engine::SequentialEngine); under
/// cycle-by-cycle pacing the two produce bit-identical statistics. Under
/// slack pacing the threaded engine inherits the host scheduler's real
/// nondeterminism — which is the paper's point.
pub struct ThreadedEngine<C: CoreModel, U: UncoreModel<C::Event>> {
    cores: Vec<C>,
    uncore: U,
    cfg: EngineConfig,
    save_hook: Option<SaveHook<C, U>>,
    resume: Option<EngineResume<C, U>>,
}

/// Manager-side scalar state carried into `manager_loop` when resuming
/// from a persisted snapshot (the cores, uncore, pacer and aggregate
/// commit count are applied in `run` before the loop starts).
struct ManagerResume {
    global: Cycle,
    tally: ViolationTally,
    detected: ViolationTally,
    next_sample: u64,
    last_sample_tally: ViolationTally,
    spec_stats: SpeculationStats,
    tracker: Option<IntervalTracker>,
    bound_trace: Vec<(Cycle, u64)>,
    max_spread: u64,
}

impl<C, U> ThreadedEngine<C, U>
where
    C: CoreModel + Checkpointable,
    U: UncoreModel<C::Event> + Checkpointable,
{
    /// Creates an engine over the given target cores and uncore.
    pub fn new(cores: Vec<C>, uncore: U, cfg: EngineConfig) -> Self {
        ThreadedEngine {
            cores,
            uncore,
            cfg,
            save_hook: None,
            resume: None,
        }
    }

    /// Installs a hook invoked with a borrowed view of every committed
    /// checkpoint (e.g. to persist it to disk). Runs on the manager
    /// thread while the cores are paused at the checkpoint boundary.
    #[must_use]
    pub fn with_save_hook(mut self, hook: SaveHook<C, U>) -> Self {
        self.save_hook = Some(hook);
        self
    }

    /// Seeds the engine with restored state so the run continues from a
    /// persisted checkpoint instead of cycle zero. The engine must have
    /// been built with the same configuration (core count, scheme,
    /// speculation settings) as the run that produced the snapshot.
    #[must_use]
    pub fn with_resume(mut self, resume: EngineResume<C, U>) -> Self {
        self.resume = Some(resume);
        self
    }

    /// Runs the simulation to completion, spawning one host thread per
    /// target core.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoCores`] for an empty core set.
    pub fn run(self) -> Result<SimReport, EngineError> {
        let ThreadedEngine {
            cores,
            uncore,
            cfg,
            mut save_hook,
            resume,
        } = self;
        let n = cores.len();
        if n == 0 {
            return Err(EngineError::NoCores);
        }
        let started = Instant::now();

        if cfg.commit_target == 0 {
            // Trivial run: nothing to simulate.
            return Ok(SimReport {
                per_core: cores.iter().map(CoreModel::counters).collect(),
                uncore: uncore.counters(),
                obs: cfg.obs.map(|o| ObsData {
                    cores: n,
                    records: Vec::new(),
                    dropped: 0,
                    metrics: MetricsRegistry::new(o.sample_every),
                }),
                ..SimReport::default()
            });
        }

        // The host scheduler every wait path goes through. The data-structure
        // hook is `None` under the native scheduler, so production queue
        // operations stay instrumentation-free.
        let sched = Arc::clone(cfg.sched.get());
        let hook = cfg.sched.instrumentation_hook();

        // Apply restored state before anything is shared with the core
        // threads: cores and their undelivered inboxes replace the fresh
        // models, every clock starts at the snapshot's global time, and
        // the aggregate commit counter is re-seeded.
        let mut cores = cores;
        let mut uncore = uncore;
        let mut core_inboxes: Vec<Inbox<C::Event>> = (0..n).map(|_| Inbox::new()).collect();
        let mut start_committed = 0u64;
        let mut pacer = cfg.scheme.clone().into_pacer();
        let mut mgr_resume: Option<ManagerResume> = None;
        let mut resume_shard_forwarded: Vec<u64> = Vec::new();
        if let Some(res) = resume {
            if res.cores.len() != n {
                return Err(EngineError::Resume(format!(
                    "snapshot holds {} cores but the engine was built with {n}",
                    res.cores.len()
                )));
            }
            cores.clear();
            core_inboxes.clear();
            for (core, inbox) in res.cores {
                cores.push(core);
                core_inboxes.push(inbox);
            }
            uncore = res.uncore;
            pacer = res.pacer;
            start_committed = res.committed;
            resume_shard_forwarded = res.shard_forwarded;
            mgr_resume = Some(ManagerResume {
                global: res.global,
                tally: res.tally,
                detected: res.detected,
                next_sample: res.next_sample,
                last_sample_tally: res.last_sample_tally,
                spec_stats: res.spec_stats,
                tracker: res.tracker,
                bound_trace: res.bound_trace,
                max_spread: res.max_spread,
            });
        }
        let start_global = mgr_resume.as_ref().map_or(0, |r| r.global.as_u64());

        let shared: Vec<Arc<CoreShared<C>>> = (0..n)
            .map(|_| {
                Arc::new(CoreShared {
                    local: AtomicU64::new(start_global),
                    max_local: AtomicU64::new(start_global),
                    outq: SpscRing::with_sched(hook.clone()),
                    inq: SpscRing::with_sched(hook.clone()),
                    snapshot: SnapshotSlot::with_sched(hook.clone()),
                    parked: AtomicBool::new(false),
                    cmd_pending: AtomicBool::new(false),
                    task: OnceLock::new(),
                    parks: AtomicU64::new(0),
                })
            })
            .collect();
        let done = Arc::new(AtomicBool::new(false));
        let committed = Arc::new(AtomicU64::new(start_committed));

        // Manager tree: `shards` (clamped to the core count) contiguous
        // shards of `n / S` cores each, the remainder spread over the
        // first shards. Shard 0 is folded into the root manager; shards
        // `1..S` get their own consolidation thread. `shards == 1` builds
        // no machinery at all and runs the classic single-manager loop.
        let shard_count = cfg.shards.clamp(1, n);
        let s_extra = shard_count - 1;
        let shard_splits: Vec<(usize, usize)> = {
            let mut splits = Vec::with_capacity(s_extra);
            let mut start = n / shard_count + usize::from(n % shard_count > 0);
            for s in 1..shard_count {
                let len = n / shard_count + usize::from(s < n % shard_count);
                splits.push((start, len));
                start += len;
            }
            splits
        };
        let k0 = shard_splits.first().map_or(n, |&(start, _)| start);
        let shard_shared: Vec<Arc<ShardShared<C>>> = (0..s_extra)
            .map(|_| {
                Arc::new(ShardShared {
                    fwd: SpscRing::with_sched(hook.clone()),
                    min_time: AtomicU64::new(start_global),
                    forwarded: AtomicU64::new(0),
                    parked: AtomicBool::new(false),
                    cmd_pending: AtomicBool::new(false),
                    task: OnceLock::new(),
                    parks: AtomicU64::new(0),
                })
            })
            .collect();
        // Resume continuity for the forwarded counters: an identical
        // split re-seeds each shard exactly; a different split folds the
        // snapshot's total into an aggregate base so the reported counter
        // stays monotone across the resume.
        let mut shard_resume_base = 0u64;
        if !resume_shard_forwarded.is_empty() {
            if resume_shard_forwarded.len() == s_extra {
                for (sh, &f) in shard_shared.iter().zip(&resume_shard_forwarded) {
                    sh.forwarded.store(f, Ordering::Relaxed);
                }
            } else {
                shard_resume_base = resume_shard_forwarded.iter().sum();
            }
        }
        let mut shard_cmd_txs: Vec<Sender<ShardCmd>> = Vec::with_capacity(s_extra);
        let mut shard_cmd_rxs: Vec<Receiver<ShardCmd>> = Vec::with_capacity(s_extra);
        let mut shard_ack_txs: Vec<Sender<()>> = Vec::with_capacity(s_extra);
        let mut shard_ack_rxs: Vec<Receiver<()>> = Vec::with_capacity(s_extra);
        for _ in 0..s_extra {
            let (ct, cr) = channel();
            let (at, ar) = channel();
            shard_cmd_txs.push(ct);
            shard_cmd_rxs.push(cr);
            shard_ack_txs.push(at);
            shard_ack_rxs.push(ar);
        }

        // A disabled tracer keeps every instrumentation site at one relaxed
        // atomic load when no ObsConfig was given.
        let tracer = match cfg.obs {
            Some(o) => Tracer::new(o.trace_capacity),
            None => Tracer::disabled(),
        };

        // Host-time profiler: same disabled-cost contract as the tracer —
        // an un-configured profiler reduces every span site to one relaxed
        // atomic load, so uninstrumented runs stay unperturbed.
        let prof = cfg.prof.clone().unwrap_or_else(Profiler::disabled);

        // Live telemetry: an observer thread outside the scheduling
        // discipline reads these engine-published atomics on its own
        // host-time cadence. Cores and the manager only ever issue relaxed
        // stores into it, so enabling a heartbeat never stalls simulation
        // threads.
        let live_stats = Arc::new(LiveStats::with_shards(s_extra));
        live_stats
            .commit_target
            .store(cfg.commit_target, Ordering::Relaxed);
        live_stats
            .committed
            .store(start_committed, Ordering::Relaxed);
        let live_handle = cfg
            .live
            .as_ref()
            .filter(|l| l.has_sink())
            .map(|l| crate::obs::live::spawn(l.clone(), Arc::clone(&live_stats), prof.clone()));
        let live_on = live_handle.is_some();

        let mut cmd_txs: Vec<Sender<Command<C>>> = Vec::with_capacity(n);
        let mut cmd_rxs: Vec<Receiver<Command<C>>> = Vec::with_capacity(n);
        let mut ack_txs: Vec<Sender<u64>> = Vec::with_capacity(n);
        let mut ack_rxs: Vec<Receiver<u64>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (ct, cr) = channel();
            let (at, ar) = channel();
            cmd_txs.push(ct);
            cmd_rxs.push(cr);
            ack_txs.push(at);
            ack_rxs.push(ar);
        }

        // Cores start frozen (max local time = start time); the manager
        // publishes the first window after taking the free initial
        // checkpoint.
        let report = std::thread::scope(|scope| {
            // --- Core threads ------------------------------------------------
            // std mpsc receivers are single-consumer: each core's command
            // receiver and ack sender are moved into its thread.
            let mut handles = Vec::with_capacity(n);
            let oversubscribed = host_oversubscribed(n + s_extra);
            for (i, (((model, inbox), cmd_rx), ack_tx)) in cores
                .into_iter()
                .zip(core_inboxes)
                .zip(cmd_rxs)
                .zip(ack_txs)
                .enumerate()
            {
                let shared = Arc::clone(&shared[i]);
                let done = Arc::clone(&done);
                let committed = Arc::clone(&committed);
                let th = tracer.handle();
                let ph = prof.handle();
                let sched = Arc::clone(&sched);
                handles.push(scope.spawn(move || {
                    core_thread(
                        CoreId::new(i as u16),
                        model,
                        inbox,
                        &shared,
                        &done,
                        &committed,
                        &cmd_rx,
                        &ack_tx,
                        oversubscribed,
                        &*sched,
                        th,
                        ph,
                    )
                }));
            }

            // --- Shard-manager threads ---------------------------------------
            // Spawned after the cores so task names stay grouped; each
            // owns an Arc'd slice of its cores plus its shared block.
            let mut shard_handles = Vec::with_capacity(s_extra);
            for (si, ((cmd_rx, ack_tx), &(start, len))) in shard_cmd_rxs
                .into_iter()
                .zip(shard_ack_txs)
                .zip(&shard_splits)
                .enumerate()
            {
                let owned: Vec<Arc<CoreShared<C>>> =
                    shared[start..start + len].iter().map(Arc::clone).collect();
                let sh = Arc::clone(&shard_shared[si]);
                let done = Arc::clone(&done);
                let ph = prof.handle();
                let sched = Arc::clone(&sched);
                shard_handles.push(scope.spawn(move || {
                    shard_thread(
                        si + 1,
                        start as u16,
                        &owned,
                        &sh,
                        &done,
                        &cmd_rx,
                        &ack_tx,
                        oversubscribed,
                        &*sched,
                        ph,
                    )
                }));
            }
            let mut shardset = if s_extra == 0 {
                ShardSet::solo(n)
            } else {
                ShardSet {
                    shards: shard_shared.clone(),
                    cmd_txs: shard_cmd_txs,
                    ack_rxs: shard_ack_rxs,
                    k0,
                    resume_base: shard_resume_base,
                    paused_forwarded: Vec::new(),
                    buf: Vec::new(),
                }
            };

            // --- Manager (this thread) ---------------------------------------
            // Registration happens after every core and shard is spawned:
            // a virtual scheduler's `register` blocks until the whole
            // expected task set has arrived, so registering earlier would
            // deadlock the spawn loop.
            sched.register("manager");
            let outcome = manager_loop(
                &cfg,
                &mut pacer,
                &mut uncore,
                &shared,
                &committed,
                &cmd_txs,
                &ack_rxs,
                &tracer,
                &mut save_hook,
                mgr_resume,
                &prof,
                live_on.then_some(&*live_stats),
                &mut shardset,
            );

            done.store(true, Ordering::Release);
            for s in &shared {
                wake_core(s, &*sched);
            }
            for sh in &shard_shared {
                wake_shard(sh, &*sched);
            }
            // Leave the scheduling discipline before joining: the cores
            // only need the token among themselves to run out their
            // windows and unregister, and a native blocking join keeps OS
            // timing out of the schedule (polling `is_finished` through
            // the scheduler would make the decision count — and thus a
            // virtual scheduler's RNG stream — depend on when the OS
            // publishes thread exit).
            sched.unregister();
            let mut finished_cores = Vec::with_capacity(n);
            for h in handles {
                finished_cores.push(h.join().expect("core thread panicked"));
            }
            for h in shard_handles {
                h.join().expect("shard thread panicked");
            }
            outcome.map(|mut m| {
                // The manager samples the aggregate commit count at its
                // finish decision, but cores may legally run out the rest
                // of their published window before they observe the done
                // flag. Re-read after the joins so the reported aggregate
                // matches the per-core counters exactly.
                m.committed = committed.load(Ordering::Acquire);
                let obs = cfg.obs.map(|_| {
                    let (records, dropped) = tracer.drain();
                    ObsData {
                        cores: n,
                        records,
                        dropped,
                        metrics: std::mem::take(&mut m.metrics),
                    }
                });
                let mut report = m.into_report(finished_cores, started.elapsed());
                report.obs = obs;
                report
            })
        })?;
        // Publish the final tallies before the terminal heartbeat so the
        // last emitted line reports the finished run exactly.
        if live_on {
            live_stats
                .committed
                .store(report.committed, Ordering::Relaxed);
            live_stats
                .global
                .store(report.global_cycles, Ordering::Relaxed);
            live_stats
                .violations
                .store(report.violations.total(), Ordering::Relaxed);
        }
        if let Some(h) = live_handle {
            h.finish();
        }
        let mut report = report;
        if prof.is_enabled() {
            // n core threads plus the manager and any shard-manager
            // threads contribute self-time; the denominator of the
            // coverage figure is wall * threads.
            report.prof = Some(prof.snapshot(report.wall, (n + s_extra) as u64 + 1));
        }
        Ok(report)
    }
}

/// Core-thread main loop: tick while below the max local time, obey
/// manager commands, exit when the done flag rises.
///
/// Records Run/Wait phase spans on its own trace handle at every
/// transition between ticking and being capped by the window. Waiting
/// escalates spin → yield → park; the manager unparks the thread whenever
/// it widens the window or sends a command.
#[allow(clippy::too_many_arguments)]
fn core_thread<C: CoreModel + Checkpointable>(
    core: CoreId,
    mut model: C,
    mut inbox: Inbox<C::Event>,
    shared: &CoreShared<C>,
    done: &AtomicBool,
    committed: &AtomicU64,
    cmd_rx: &Receiver<Command<C>>,
    ack_tx: &Sender<u64>,
    oversubscribed: bool,
    sched: &dyn HostSched,
    mut th: TraceHandle,
    ph: ProfHandle,
) -> C {
    let virt = sched.virtualized();
    let task = sched.register(&format!("core{}", core.index()));
    let _ = shared.task.set(task);
    let mut outbox: Vec<Timestamped<C::Event>> = Vec::new();
    // Generation token recorded at the last snapshot capture: the
    // baseline the next delta capture diffs against and the token a
    // delta-mode restore rewinds to. Refreshed on every capture (full
    // captures seed it so the first delta after the free initial full
    // snapshot has an exact baseline).
    let mut cp_gen: u64 = 0;
    let mut idle_spins = 0u32;
    // On an oversubscribed host a capped core skips the spin tier: the
    // manager cannot widen the window until it gets the CPU this core is
    // holding, so spinning only delays its own wake-up. Yield stays the
    // workhorse tier — futex park/unpark round trips cost more than a
    // handful of scheduler passes — with parking as the long-idle backstop.
    // Virtual schedulers pin both tiers to machine-independent depths.
    let (spin_iters, yield_iters) = if virt {
        (0u32, VIRT_YIELD_ITERS)
    } else if oversubscribed {
        (0u32, CORE_YIELD_ITERS_OVERSUB)
    } else {
        (CORE_SPIN_ITERS, CORE_YIELD_ITERS)
    };
    // Cores start frozen at max local time 0: open a Wait span immediately.
    let mut running = false;
    th.record(
        Cycle::ZERO,
        TraceEvent::PhaseBegin {
            core,
            phase: Phase::Wait,
        },
    );

    'main: loop {
        // Control channel has priority over everything. Clear the pending
        // flag *before* polling: a flag raised after the clear but whose
        // command is missed by this poll is re-derived next iteration (the
        // send's `wake_core` guarantees this loop runs again), while a
        // flag consumed together with its command simply skips one park.
        shared.cmd_pending.store(false, Ordering::Relaxed);
        match cmd_rx.try_recv() {
            Ok(mut cmd) => loop {
                match cmd {
                    Command::Stop => {
                        ack_tx
                            .send(shared.local.load(Ordering::Relaxed))
                            .expect("manager alive");
                    }
                    Command::RunTo(target) => {
                        let _span = ph.enter(ProfSite::CoreTick);
                        let mut l = shared.local.load(Ordering::Relaxed);
                        while l < target {
                            while let Some(ev) = shared.inq.pop() {
                                inbox.deliver(ev);
                            }
                            let c = {
                                let mut ctx = TickCtx::new(Cycle::new(l), &mut inbox, &mut outbox);
                                model.tick(&mut ctx)
                            };
                            committed.fetch_add(u64::from(c), Ordering::Relaxed);
                            shared.outq.push_batch(&mut outbox);
                            l += 1;
                            shared.local.store(l, Ordering::Release);
                        }
                        ack_tx.send(l).expect("manager alive");
                    }
                    Command::Snapshot { delta } => {
                        let _span = ph.enter(ProfSite::CheckpointCapture);
                        while let Some(ev) = shared.inq.pop() {
                            inbox.deliver(ev);
                        }
                        let capture = if delta {
                            let d = model.capture_delta(cp_gen);
                            cp_gen = model.generation();
                            CoreCapture::Delta(Box::new((d, inbox.clone())))
                        } else {
                            // Seed the delta baseline even on full
                            // captures: capturing at the current
                            // generation is an empty delta whose only
                            // effect is recording the baseline, so the
                            // first delta capture after an initial full
                            // snapshot diffs against exact per-unit
                            // stamps instead of degrading to a full walk.
                            let g = model.generation();
                            let _ = model.capture_delta(g);
                            cp_gen = g;
                            CoreCapture::Full(Box::new((model.clone(), inbox.clone())))
                        };
                        shared.snapshot.put(capture);
                        ack_tx
                            .send(shared.local.load(Ordering::Relaxed))
                            .expect("manager alive");
                    }
                    Command::Restore(state) => {
                        let _span = ph.enter(ProfSite::CheckpointRestore);
                        let (m, ib) = *state;
                        model = m;
                        inbox = ib;
                        ack_tx
                            .send(shared.local.load(Ordering::Relaxed))
                            .expect("manager alive");
                    }
                    Command::RestoreDelta(base) => {
                        // Rewind in place: only units that diverged from
                        // the base since `cp_gen` are copied back, and
                        // the base goes back to the manager untouched.
                        let _span = ph.enter(ProfSite::CheckpointRestore);
                        model.restore_from(&base.0, cp_gen);
                        inbox.clone_from(&base.1);
                        shared.snapshot.put(CoreCapture::Base(base));
                        ack_tx
                            .send(shared.local.load(Ordering::Relaxed))
                            .expect("manager alive");
                    }
                    Command::Resume => continue 'main,
                }
                cmd = {
                    // Blocked in the control sub-loop (stop-synced for a
                    // checkpoint or rollback): attribute the host time to
                    // the park tier so it shows up in the profile.
                    let _span = ph.enter(ProfSite::CoreWaitPark);
                    next_command(cmd_rx, virt, sched)
                };
            },
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => break 'main,
        }

        if done.load(Ordering::Acquire) {
            break 'main;
        }

        while let Some(ev) = shared.inq.pop() {
            inbox.deliver(ev);
        }
        let mut l = shared.local.load(Ordering::Relaxed);
        let mut m = shared.max_local.load(Ordering::Acquire);
        if l < m {
            if !running {
                th.record(
                    Cycle::new(l),
                    TraceEvent::PhaseEnd {
                        core,
                        phase: Phase::Wait,
                    },
                );
                th.record(
                    Cycle::new(l),
                    TraceEvent::PhaseBegin {
                        core,
                        phase: Phase::Run,
                    },
                );
                running = true;
            }
            idle_spins = 0;
            // Burst: tick until the window caps us, skipping the per-tick
            // command/done checks of the outer loop (a pending command is
            // picked up within one window's worth of ticks). Commit counts
            // accumulate locally and are flushed *before* the local-clock
            // store that ends the burst, so a manager that sees this core
            // at a barrier boundary also sees every commit behind it —
            // barrier-mode finish decisions stay deterministic.
            sched.point(SchedSite::CoreBurst);
            let _span = ph.enter(ProfSite::CoreTick);
            let mut burst: u64 = 0;
            while l < m {
                while let Some(ev) = shared.inq.pop() {
                    inbox.deliver(ev);
                }
                let c = {
                    let mut ctx = TickCtx::new(Cycle::new(l), &mut inbox, &mut outbox);
                    model.tick(&mut ctx)
                };
                burst += u64::from(c);
                shared.outq.push_batch(&mut outbox);
                l += 1;
                if l >= m {
                    committed.fetch_add(burst, Ordering::Relaxed);
                    burst = 0;
                }
                shared.local.store(l, Ordering::Release);
                m = shared.max_local.load(Ordering::Acquire);
            }
            if burst > 0 {
                committed.fetch_add(burst, Ordering::Relaxed);
            }
        } else {
            // Capped: wait for the manager to widen the window. Ladder:
            // spin → yield → park (the manager unparks on every publish;
            // the timeout covers lost-wakeup races and shutdown).
            if running {
                th.record(
                    Cycle::new(l),
                    TraceEvent::PhaseEnd {
                        core,
                        phase: Phase::Run,
                    },
                );
                th.record(
                    Cycle::new(l),
                    TraceEvent::PhaseBegin {
                        core,
                        phase: Phase::Wait,
                    },
                );
                running = false;
            }
            idle_spins = idle_spins.saturating_add(1);
            if idle_spins <= spin_iters {
                let _span = ph.enter(ProfSite::CoreWaitSpin);
                sched.idle_spin(SchedSite::CoreIdle);
            } else if idle_spins <= spin_iters + yield_iters {
                let _span = ph.enter(ProfSite::CoreWaitYield);
                sched.idle_yield(SchedSite::CoreIdle);
            } else {
                let _span = ph.enter(ProfSite::CoreWaitPark);
                // Dekker-style publication: set the parked flag, fence,
                // then re-check the sleep condition. Pairs with the
                // manager's store-fence-check in `publish_window` /
                // `wake_core`: either the manager sees the flag and
                // unparks (token pending), or this re-check sees the new
                // window — a wake-up can never be lost, the timeout is a
                // pure backstop. The scheduling point between the flag
                // store and the re-check is exactly the race window
                // adversarial schedules aim at.
                shared.parked.store(true, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                sched.point(SchedSite::PreParkCheck);
                if shared.max_local.load(Ordering::Relaxed) <= l
                    && !done.load(Ordering::Relaxed)
                    && !shared.cmd_pending.load(Ordering::Relaxed)
                {
                    shared.parks.fetch_add(1, Ordering::Relaxed);
                    sched.park_timeout(SchedSite::CoreIdle, CORE_PARK_TIMEOUT);
                }
                shared.parked.store(false, Ordering::Relaxed);
            }
        }
    }
    let l = shared.local.load(Ordering::Relaxed);
    th.record(
        Cycle::new(l),
        TraceEvent::PhaseEnd {
            core,
            phase: if running { Phase::Run } else { Phase::Wait },
        },
    );
    sched.unregister();
    model
}

/// Blocks for the next manager command: a real blocking receive natively,
/// a scheduler-visible `try_recv` poll under a virtual scheduler (a
/// blocked `recv` would hold the scheduling token forever).
fn next_command<C: CoreModel>(
    cmd_rx: &Receiver<Command<C>>,
    virt: bool,
    sched: &dyn HostSched,
) -> Command<C> {
    if !virt {
        return cmd_rx.recv().expect("manager alive");
    }
    loop {
        match cmd_rx.try_recv() {
            Ok(cmd) => return cmd,
            Err(TryRecvError::Empty) => sched.idle_yield(SchedSite::AwaitCmd),
            Err(TryRecvError::Disconnected) => panic!("manager alive"),
        }
    }
}

/// Manager-side run state that eventually becomes the report.
struct ManagerOutcome<U> {
    uncore: U,
    global: Cycle,
    committed: u64,
    tally: ViolationTally,
    kernel: Counters,
    bound_trace: Vec<(Cycle, u64)>,
    metrics: MetricsRegistry,
}

impl<U> ManagerOutcome<U> {
    fn into_report<C: CoreModel>(self, cores: Vec<C>, wall: std::time::Duration) -> SimReport
    where
        U: UncoreModel<C::Event>,
    {
        SimReport {
            global_cycles: self.global.as_u64(),
            committed: self.committed,
            violations: self.tally,
            wall,
            per_core: cores.iter().map(CoreModel::counters).collect(),
            uncore: self.uncore.counters(),
            kernel: self.kernel,
            bound_trace: self.bound_trace,
            obs: None,
            prof: None,
        }
    }
}

/// Interned metric keys for the manager's sampling loop, created once at
/// startup so steady-state sampling performs no string formatting or
/// allocation.
struct MetricIds {
    /// `drift.core{i}` gauge per core.
    drift: Vec<GaugeId>,
    core_drift: HistId,
    outq_depth: HistId,
    inq_depth: HistId,
    slack_bound: GaugeId,
    violation_rate: GaugeId,
    globalq_depth: GaugeId,
    globalq_depth_h: HistId,
    manager_wait: GaugeId,
    manager_wait_h: HistId,
    /// Cumulative trace records dropped to ring overflow, sampled live so
    /// a mid-run overflow is diagnosable from the metrics CSV.
    trace_dropped: GaugeId,
}

impl MetricIds {
    fn intern(metrics: &mut MetricsRegistry, n: usize) -> Self {
        MetricIds {
            drift: (0..n)
                .map(|i| metrics.intern_gauge(&format!("drift.core{i}")))
                .collect(),
            core_drift: metrics.intern_histogram("core_drift"),
            outq_depth: metrics.intern_histogram("outq_depth"),
            inq_depth: metrics.intern_histogram("inq_depth"),
            slack_bound: metrics.intern_gauge("slack_bound"),
            violation_rate: metrics.intern_gauge("violation_rate"),
            globalq_depth: metrics.intern_gauge("globalq_depth"),
            globalq_depth_h: metrics.intern_histogram("globalq_depth"),
            manager_wait: metrics.intern_gauge("manager_wait_ns"),
            manager_wait_h: metrics.intern_histogram("manager_wait_ns"),
            trace_dropped: metrics.intern_gauge("trace_dropped"),
        }
    }
}

/// Emits one metrics sample: per-core drift and queue-depth gauges plus
/// the manager-side aggregates. Factored out of the manager loop so the
/// run epilogue can flush a terminal sample at the final global time —
/// without it, a run shorter than (or not a multiple of) the sampling
/// cadence would export a CSV missing the final state.
#[allow(clippy::too_many_arguments)]
fn sample_metrics<C: CoreModel + Checkpointable>(
    metrics: &mut MetricsRegistry,
    ids: &MetricIds,
    th: &mut TraceHandle,
    shared: &[Arc<CoreShared<C>>],
    locals: &[u64],
    global: Cycle,
    bound: Option<u64>,
    gq_len: u64,
    detected_total: u64,
    tracer: &Tracer,
    mgr_wait_ns: u64,
    last_metrics_cycle: &mut u64,
    last_metrics_detected: &mut u64,
    last_wait_ns: &mut u64,
) {
    for (i, &l) in locals.iter().enumerate() {
        let core = CoreId::new(i as u16);
        let drift = l.saturating_sub(global.as_u64());
        metrics.gauge_by(ids.drift[i], global, drift as f64);
        metrics.histogram_by(ids.core_drift).record(drift);
        th.record(
            global,
            TraceEvent::LocalTimeSample {
                core,
                cycle: Cycle::new(l),
            },
        );
        let outq = shared[i].outq.depth_hint() as u64;
        let inq = shared[i].inq.depth_hint() as u64;
        metrics.histogram_by(ids.outq_depth).record(outq);
        metrics.histogram_by(ids.inq_depth).record(inq);
        th.record(
            global,
            TraceEvent::QueueDepth {
                q: QueueKind::OutQ(core),
                len: outq,
            },
        );
        th.record(
            global,
            TraceEvent::QueueDepth {
                q: QueueKind::InQ(core),
                len: inq,
            },
        );
    }
    if let Some(b) = bound {
        metrics.gauge_by(ids.slack_bound, global, b as f64);
    }
    // Rate over the cycles actually elapsed since the previous
    // sample, not the nominal cadence: back-to-back samples at the
    // same global time would otherwise divide by zero and push a
    // non-finite gauge value.
    let elapsed = global.as_u64().saturating_sub(*last_metrics_cycle);
    let live_rate = if elapsed == 0 {
        0.0
    } else {
        (detected_total - *last_metrics_detected) as f64 / elapsed as f64
    };
    *last_metrics_cycle = global.as_u64();
    *last_metrics_detected = detected_total;
    metrics.gauge_by(ids.violation_rate, global, live_rate);
    metrics.gauge_by(ids.globalq_depth, global, gq_len as f64);
    metrics.histogram_by(ids.globalq_depth_h).record(gq_len);
    th.record(
        global,
        TraceEvent::QueueDepth {
            q: QueueKind::Global,
            len: gq_len,
        },
    );
    metrics.gauge_by(ids.trace_dropped, global, tracer.dropped_so_far() as f64);
    let wait_delta = mgr_wait_ns - *last_wait_ns;
    *last_wait_ns = mgr_wait_ns;
    metrics.gauge_by(ids.manager_wait, global, wait_delta as f64);
    metrics.histogram_by(ids.manager_wait_h).record(wait_delta);
    th.record(global, TraceEvent::ManagerWait { ns: wait_delta });
}

/// The simulation-manager loop (runs on the caller's thread inside the
/// scope).
#[allow(clippy::too_many_arguments)]
fn manager_loop<C, U>(
    cfg: &EngineConfig,
    pacer: &mut Box<dyn Pacer>,
    uncore: &mut U,
    shared: &[Arc<CoreShared<C>>],
    committed: &AtomicU64,
    cmd_txs: &[Sender<Command<C>>],
    ack_rxs: &[Receiver<u64>],
    tracer: &Tracer,
    save_hook: &mut Option<SaveHook<C, U>>,
    resume: Option<ManagerResume>,
    prof: &Profiler,
    live: Option<&LiveStats>,
    shardset: &mut ShardSet<C>,
) -> Result<ManagerOutcome<U>, EngineError>
where
    C: CoreModel + Checkpointable,
    U: UncoreModel<C::Event> + Checkpointable,
{
    let n = shared.len();
    let sched: &dyn HostSched = &**cfg.sched.get();
    let virt = sched.virtualized();
    let sample_period = cfg.effective_sample_period();
    let mut gq: GlobalQueue<C::Event> = GlobalQueue::new();
    let mut sink: ServiceSink<C::Event> = ServiceSink::new();

    let start_global = resume.as_ref().map_or(Cycle::ZERO, |r| r.global);
    let mut tally = ViolationTally::new();
    let mut detected = ViolationTally::new();
    let mut next_sample = sample_period;
    let mut last_sample_tally = tally;
    let mut bound_trace: Vec<(Cycle, u64)> = Vec::new();

    // Observability: the manager's own trace handle plus the metrics
    // registry sampled on the obs cadence. Host-side manager wait time is
    // accumulated around the backoff points and emitted once per sample.
    let obs_on = cfg.obs.is_some();
    let ph = prof.handle();
    let mut th = tracer.handle();
    let mut metrics = MetricsRegistry::new(cfg.obs.map_or(1024, |o| o.sample_every));
    let ids = MetricIds::intern(&mut metrics, n);
    let persist_bytes_id = metrics.intern_gauge("persist_bytes");
    let mut last_metrics_detected = 0u64;
    let mut last_metrics_cycle = 0u64;
    let mut mgr_wait_ns: u64 = 0;
    let mut last_wait_ns: u64 = 0;

    // Persistent scratch reused every iteration: local-clock snapshots,
    // the previous iteration's snapshot for progress detection, and the
    // OutQ drain buffer. Steady state allocates nothing.
    let mut locals: Vec<u64> = Vec::with_capacity(n);
    let mut prev_locals: Vec<u64> = vec![u64::MAX; n];
    let mut drain_buf: Vec<Timestamped<C::Event>> = Vec::new();
    let mut cycles_buf: Vec<Cycle> = Vec::with_capacity(n);
    let mut backoff = Backoff::new(host_oversubscribed(n + shardset.shards.len()), virt);

    let spec = cfg.speculation;
    let mut tracker = spec.map(|s| IntervalTracker::new(s.interval));
    let mut spec_stats = SpeculationStats::default();
    let mut mode = Mode::Base;
    // `u64::MAX` keeps every checkpoint site unreachable when speculation
    // is off; `cp_interval` is only ever added under a `spec.is_some()`
    // guard.
    let cp_interval: u64 = spec.map_or(u64::MAX, |s| s.interval);
    let cp_delta = spec.is_some_and(|s| s.mode == CheckpointMode::Delta);
    let mut next_cp_trigger: u64 = spec.map_or(u64::MAX, |s| start_global.as_u64() + s.interval);
    let mut replay_start = Cycle::ZERO;
    let mut pending_rollback = false;
    // Largest clock spread observed at manager sampling points (the
    // empirical slack; a lower bound on the true maximum since the manager
    // samples asynchronously).
    let mut max_spread: u64 = 0;

    if let Some(res) = resume {
        tally = res.tally;
        detected = res.detected;
        next_sample = res.next_sample;
        last_sample_tally = res.last_sample_tally;
        bound_trace = res.bound_trace;
        spec_stats = res.spec_stats;
        if let Some(tr) = res.tracker {
            tracker = Some(tr);
        }
        max_spread = res.max_spread;
        last_metrics_detected = detected.total();
        last_metrics_cycle = start_global.as_u64();
        th.record(
            start_global,
            TraceEvent::StateRestore {
                global: start_global,
            },
        );
    }

    // The initial state is a free checkpoint taken before the cores move.
    // It is always a *full* capture — delta mode needs a base to diff
    // against — and seeds every delta baseline (cores seed their own in
    // the full-capture path; the manager seeds the uncore's inside
    // `merge_snapshot`).
    let mut snapshot: Option<ManagerSnapshot<C, U>> = None;
    if spec.is_some() {
        shardset.pause(sched);
        shardset.drain_forward(&mut gq);
        let captures = {
            let _span = ph.enter(ProfSite::CheckpointCapture);
            snapshot_all(
                shared,
                cmd_txs,
                ack_rxs,
                &mut gq,
                uncore,
                &mut sink,
                &mut drain_buf,
                sched,
                false,
            )
        };
        shardset.set_floors(start_global);
        shardset.resume(sched);
        // Discard side effects of the (empty) drain above.
        let _span = ph.enter(ProfSite::CheckpointApply);
        merge_snapshot(
            &mut snapshot,
            captures,
            uncore,
            start_global,
            tally,
            committed.load(Ordering::Acquire),
            &**pacer,
            next_sample,
            last_sample_tally,
        );
    }

    let mut window_end = if pacer.barrier_service() {
        pacer.window_end(start_global)
    } else {
        pacer
            .window_end(start_global)
            .min(cfg.lead_cap(start_global))
    };
    publish_window(shared, window_end, sched);

    let finish_reason;
    let final_global;

    loop {
        sched.point(SchedSite::ManagerLoop);
        let drained = {
            let _span = ph.enter(ProfSite::ManagerDrain);
            shardset.drain_steady(shared, &mut gq, &mut drain_buf)
        };
        locals.clear();
        locals.extend(shared.iter().map(|s| s.local.load(Ordering::Acquire)));
        let progress = drained > 0 || locals != prev_locals;
        prev_locals.copy_from_slice(&locals);
        if progress {
            backoff.reset();
        }
        let global = Cycle::new(locals.iter().copied().min().expect("n >= 1"));
        max_spread =
            max_spread.max(locals.iter().copied().max().expect("n >= 1") - global.as_u64());
        let barrier = mode == Mode::Replay || pacer.barrier_service();

        if let Some(tr) = &mut tracker {
            tr.close_intervals_up_to(global);
        }
        while global.as_u64() >= next_sample {
            let delta = tally.since(&last_sample_tally);
            let sample = PaceSample {
                global: Cycle::new(next_sample),
                window_cycles: sample_period,
                window_violations: delta.total(),
            };
            let bound_before = pacer.current_bound();
            pacer.on_sample(&sample);
            last_sample_tally = tally;
            if let Some(b) = pacer.current_bound() {
                bound_trace.push((Cycle::new(next_sample), b));
                if let Some(old) = bound_before {
                    if old != b {
                        th.record(
                            Cycle::new(next_sample),
                            TraceEvent::BoundChange {
                                old,
                                new: b,
                                rate: sample.rate(),
                            },
                        );
                    }
                }
            }
            next_sample += sample_period;
        }

        // Metrics sampling (observability cadence, independent of the
        // pacer's feedback period). All keys were interned at startup;
        // queue depths come from the rings' relaxed counters, so sampling
        // takes no locks and allocates nothing.
        if obs_on && metrics.sample_ready(global) {
            sample_metrics(
                &mut metrics,
                &ids,
                &mut th,
                shared,
                &locals,
                global,
                pacer.current_bound(),
                gq.len() as u64,
                detected.total(),
                tracer,
                mgr_wait_ns,
                &mut last_metrics_cycle,
                &mut last_metrics_detected,
                &mut last_wait_ns,
            );
        }

        // Live telemetry: relaxed stores into the shared gauge block; the
        // emitter thread reads them on its own host-time cadence.
        if let Some(ls) = live {
            ls.global.store(global.as_u64(), Ordering::Relaxed);
            ls.committed
                .store(committed.load(Ordering::Relaxed), Ordering::Relaxed);
            ls.bound
                .store(pacer.current_bound().unwrap_or(NO_BOUND), Ordering::Relaxed);
            ls.violations.store(tally.total(), Ordering::Relaxed);
            ls.globalq_depth.store(gq.len() as u64, Ordering::Relaxed);
            ls.outq_depth.store(
                shared.iter().map(|s| s.outq.depth_hint() as u64).sum(),
                Ordering::Relaxed,
            );
            ls.inq_depth.store(
                shared.iter().map(|s| s.inq.depth_hint() as u64).sum(),
                Ordering::Relaxed,
            );
            ls.dropped_traces
                .store(tracer.dropped_so_far(), Ordering::Relaxed);
            ls.checkpoints
                .store(spec_stats.checkpoints, Ordering::Relaxed);
            ls.rollbacks.store(spec_stats.rollbacks, Ordering::Relaxed);
            for (g, sh) in ls.shard_fwd_depth.iter().zip(&shardset.shards) {
                g.store(sh.fwd.depth_hint() as u64, Ordering::Relaxed);
            }
        }

        if barrier {
            // The flush gate: every core at the boundary AND every shard
            // floor at (or past) it — only then is every event below the
            // boundary guaranteed visible through the forwarding rings,
            // so the sorted barrier service stays bit-identical to the
            // sequential engine.
            if locals.iter().all(|&l| l == window_end.as_u64()) && shardset.flushed_to(window_end) {
                {
                    let _span = ph.enter(ProfSite::ManagerDrain);
                    shardset.drain_steady(shared, &mut gq, &mut drain_buf);
                }
                {
                    let _span = ph.enter(ProfSite::ManagerService);
                    service_all(
                        &mut gq,
                        uncore,
                        &mut sink,
                        shared,
                        &mut tally,
                        &mut detected,
                        &mut tracker,
                        &mut pending_rollback,
                        &spec,
                        mode == Mode::Base,
                        &mut th,
                    );
                }
                debug_assert!(!pending_rollback, "barrier servicing cannot violate");
                let g = window_end;
                if committed.load(Ordering::Acquire) >= cfg.commit_target {
                    finish_reason = FinishReason::CommitTarget;
                    final_global = g;
                    break;
                }
                if g.as_u64() >= cfg.max_cycles {
                    finish_reason = FinishReason::CycleCap;
                    final_global = g;
                    break;
                }
                if spec.is_some() && g.as_u64() >= next_cp_trigger {
                    // Cores are already aligned at the boundary: snapshot
                    // directly.
                    if mode == Mode::Replay {
                        let replayed = g.saturating_sub(replay_start);
                        spec_stats.replay_cycles += replayed;
                        mode = Mode::Base;
                        th.record(
                            g,
                            TraceEvent::ReplayEnd {
                                ordinal: spec_stats.rollbacks,
                                replay_cycles: replayed,
                            },
                        );
                        for c in CoreId::all(n) {
                            th.record(
                                g,
                                TraceEvent::PhaseEnd {
                                    core: c,
                                    phase: Phase::Replay,
                                },
                            );
                        }
                    }
                    shardset.pause(sched);
                    shardset.drain_forward(&mut gq);
                    let captures = {
                        let _span = ph.enter(ProfSite::CheckpointCapture);
                        snapshot_all(
                            shared,
                            cmd_txs,
                            ack_rxs,
                            &mut gq,
                            uncore,
                            &mut sink,
                            &mut drain_buf,
                            sched,
                            cp_delta,
                        )
                    };
                    shardset.set_floors(g);
                    shardset.resume(sched);
                    spec_stats.checkpoints += 1;
                    th.record(
                        Cycle::new(next_cp_trigger.min(g.as_u64())),
                        TraceEvent::Checkpoint {
                            ordinal: spec_stats.checkpoints,
                            overshoot: g.as_u64().saturating_sub(next_cp_trigger),
                        },
                    );
                    // Every event at or below the committed boundary has
                    // been serviced: monitors settled below it can be
                    // dropped before they are captured into the snapshot.
                    uncore.compact_monitors(g);
                    {
                        let _span = ph.enter(ProfSite::CheckpointApply);
                        merge_snapshot(
                            &mut snapshot,
                            captures,
                            uncore,
                            g,
                            tally,
                            committed.load(Ordering::Acquire),
                            &**pacer,
                            next_sample,
                            last_sample_tally,
                        );
                    }
                    next_cp_trigger = g.as_u64() + cp_interval;
                    invoke_save_hook(
                        save_hook,
                        &snapshot,
                        spec_stats,
                        detected,
                        tracker.as_ref(),
                        &bound_trace,
                        max_spread,
                        &shardset.paused_forwarded,
                        &mut th,
                        &mut metrics,
                        persist_bytes_id,
                        &ph,
                    );
                }
                window_end = if mode == Mode::Replay {
                    g + 1
                } else {
                    pacer.window_end(g)
                };
                publish_window(shared, window_end, sched);
                backoff.reset();
            } else {
                // Even with the commit target already reached, barrier
                // schemes run out the published window: stopping at the
                // natural boundary keeps the finish state deterministic and
                // identical across all three engines (the batched engine
                // can only observe boundaries).
                let _span = ph.enter(backoff.next_site());
                if obs_on {
                    let wait_started = Instant::now();
                    backoff.wait(sched);
                    mgr_wait_ns += wait_started.elapsed().as_nanos() as u64;
                } else {
                    backoff.wait(sched);
                }
            }
            continue;
        }

        // --- Greedy servicing -------------------------------------------
        {
            let _span = ph.enter(ProfSite::ManagerService);
            service_all(
                &mut gq,
                uncore,
                &mut sink,
                shared,
                &mut tally,
                &mut detected,
                &mut tracker,
                &mut pending_rollback,
                &spec,
                mode == Mode::Base,
                &mut th,
            );
        }

        if pending_rollback {
            let _span = ph.enter(ProfSite::CheckpointRestore);
            let snap = snapshot.as_mut().expect("rollback requires a snapshot");
            shardset.pause(sched);
            stop_all(shared, cmd_txs, ack_rxs, sched);
            drain_outqs(shared, &mut gq, &mut drain_buf);
            gq.clear();
            // Cores are stopped and shards paused (acks received), so the
            // manager may act as the consumer of every ring during the
            // wipe.
            for s in shared {
                s.inq.clear();
                s.outq.clear();
            }
            shardset.clear_forward();
            let cur_global = Cycle::new(
                shared
                    .iter()
                    .map(|s| s.local.load(Ordering::Acquire))
                    .min()
                    .expect("n >= 1"),
            );
            spec_stats.rollbacks += 1;
            let wasted = cur_global.saturating_sub(snap.global);
            spec_stats.wasted_cycles += wasted;
            // Recorded at the rollback instant: the exporter renders the
            // discarded region as the span [cur_global - wasted,
            // cur_global).
            th.record(
                cur_global,
                TraceEvent::Rollback {
                    ordinal: spec_stats.rollbacks,
                    wasted_cycles: wasted,
                },
            );
            for s in shared.iter() {
                s.local.store(snap.global.as_u64(), Ordering::Release);
            }
            if cp_delta {
                // Hand each core its checkpoint base by move; the core
                // rewinds in place via `restore_from` (copying back only
                // the units that diverged) and returns the base through
                // its snapshot slot, so no full-model clone happens on
                // either side.
                let bases = std::mem::take(&mut snap.cores);
                for ((s, tx), base) in shared.iter().zip(cmd_txs).zip(bases) {
                    send_cmd(s, tx, Command::RestoreDelta(Box::new(base)), sched);
                }
                await_acks(ack_rxs, sched);
                snap.cores = shared
                    .iter()
                    .map(|s| match s.snapshot.take().expect("base returned") {
                        CoreCapture::Base(b) => *b,
                        _ => unreachable!("delta restore hands back the base"),
                    })
                    .collect();
                uncore.restore_from(&snap.uncore, snap.uncore_gen);
            } else {
                for (i, tx) in cmd_txs.iter().enumerate() {
                    let (m, ib) = &snap.cores[i];
                    send_cmd(
                        &shared[i],
                        tx,
                        Command::Restore(Box::new((m.clone(), ib.clone()))),
                        sched,
                    );
                }
                await_acks(ack_rxs, sched);
                *uncore = snap.uncore.clone();
            }
            tally = snap.tally;
            committed.store(snap.committed, Ordering::Release);
            *pacer = snap.pacer.clone_box();
            next_sample = snap.next_sample;
            last_sample_tally = snap.last_sample_tally;
            mode = Mode::Replay;
            replay_start = snap.global;
            for c in CoreId::all(n) {
                th.record(
                    snap.global,
                    TraceEvent::PhaseBegin {
                        core: c,
                        phase: Phase::Replay,
                    },
                );
            }
            next_cp_trigger = snap.global.as_u64() + cp_interval;
            pending_rollback = false;
            window_end = snap.global + 1;
            shardset.set_floors(snap.global);
            publish_window(shared, window_end, sched);
            resume_all(shared, cmd_txs, sched);
            shardset.resume(sched);
            backoff.reset();
            continue;
        }

        let committed_now = committed.load(Ordering::Acquire);
        if committed_now >= cfg.commit_target {
            finish_reason = FinishReason::CommitTarget;
            final_global = global;
            break;
        }
        if global.as_u64() >= cfg.max_cycles {
            finish_reason = FinishReason::CycleCap;
            final_global = global;
            break;
        }

        if spec.is_some() && global.as_u64() >= next_cp_trigger {
            // Stop-sync all cores at a common local time ≥ the trigger.
            // The whole protocol — stop, run-to, drain, snapshot — bills
            // to the capture site; the merge and persist below open their
            // own nested spans.
            let _span = ph.enter(ProfSite::CheckpointCapture);
            shardset.pause(sched);
            shardset.drain_forward(&mut gq);
            stop_all(shared, cmd_txs, ack_rxs, sched);
            let stop_at = shared
                .iter()
                .map(|s| s.local.load(Ordering::Acquire))
                .max()
                .expect("n >= 1")
                .max(next_cp_trigger);
            publish_window(shared, Cycle::new(stop_at), sched);
            for (i, tx) in cmd_txs.iter().enumerate() {
                send_cmd(&shared[i], tx, Command::RunTo(stop_at), sched);
            }
            // Keep servicing while cores run up to the stop point.
            let mut acked = 0usize;
            let mut ack_iters = ack_rxs.iter().cycle();
            while acked < n {
                drain_outqs(shared, &mut gq, &mut drain_buf);
                service_all(
                    &mut gq,
                    uncore,
                    &mut sink,
                    shared,
                    &mut tally,
                    &mut detected,
                    &mut tracker,
                    &mut pending_rollback,
                    &spec,
                    mode == Mode::Base,
                    &mut th,
                );
                let rx = ack_iters.next().expect("cycle never ends");
                if rx.try_recv().is_ok() {
                    acked += 1;
                } else if virt {
                    // Keep the poll visible to a virtual scheduler so the
                    // cores can run towards their acks.
                    sched.idle_yield(SchedSite::AwaitAck);
                }
            }
            drain_outqs(shared, &mut gq, &mut drain_buf);
            service_all(
                &mut gq,
                uncore,
                &mut sink,
                shared,
                &mut tally,
                &mut detected,
                &mut tracker,
                &mut pending_rollback,
                &spec,
                mode == Mode::Base,
                &mut th,
            );
            if pending_rollback {
                // A violation surfaced during stop-sync: resume and let the
                // rollback branch at the top of the loop handle it.
                resume_all(shared, cmd_txs, sched);
                shardset.resume(sched);
                continue;
            }
            // Cores are paused right after their RunTo ack: snapshot them.
            for (i, tx) in cmd_txs.iter().enumerate() {
                send_cmd(&shared[i], tx, Command::Snapshot { delta: cp_delta }, sched);
            }
            await_acks(ack_rxs, sched);
            let captures: Vec<CoreCapture<C>> = shared
                .iter()
                .map(|s| s.snapshot.take().expect("snapshot filled"))
                .collect();
            if mode == Mode::Replay {
                let replayed = Cycle::new(stop_at).saturating_sub(replay_start);
                spec_stats.replay_cycles += replayed;
                mode = Mode::Base;
                th.record(
                    Cycle::new(stop_at),
                    TraceEvent::ReplayEnd {
                        ordinal: spec_stats.rollbacks,
                        replay_cycles: replayed,
                    },
                );
                for c in CoreId::all(n) {
                    th.record(
                        Cycle::new(stop_at),
                        TraceEvent::PhaseEnd {
                            core: c,
                            phase: Phase::Replay,
                        },
                    );
                }
            }
            spec_stats.checkpoints += 1;
            th.record(
                Cycle::new(next_cp_trigger.min(stop_at)),
                TraceEvent::Checkpoint {
                    ordinal: spec_stats.checkpoints,
                    overshoot: stop_at.saturating_sub(next_cp_trigger),
                },
            );
            uncore.compact_monitors(Cycle::new(stop_at));
            {
                let _span = ph.enter(ProfSite::CheckpointApply);
                merge_snapshot(
                    &mut snapshot,
                    captures,
                    uncore,
                    Cycle::new(stop_at),
                    tally,
                    committed.load(Ordering::Acquire),
                    &**pacer,
                    next_sample,
                    last_sample_tally,
                );
            }
            next_cp_trigger = stop_at + cp_interval;
            invoke_save_hook(
                save_hook,
                &snapshot,
                spec_stats,
                detected,
                tracker.as_ref(),
                &bound_trace,
                max_spread,
                &shardset.paused_forwarded,
                &mut th,
                &mut metrics,
                persist_bytes_id,
                &ph,
            );
            locals.clear();
            locals.resize(n, stop_at);
            shardset.set_floors(Cycle::new(stop_at));
            window_end = publish_greedy_windows(
                pacer,
                shared,
                &locals,
                shardset.floor(&locals),
                &mut cycles_buf,
                cfg,
                sched,
            );
            resume_all(shared, cmd_txs, sched);
            shardset.resume(sched);
            backoff.reset();
            continue;
        }

        window_end = publish_greedy_windows(
            pacer,
            shared,
            &locals,
            shardset.floor(&locals),
            &mut cycles_buf,
            cfg,
            sched,
        );
        if progress {
            // Something moved this iteration: go straight back to
            // draining instead of waiting.
            continue;
        }
        let _span = ph.enter(backoff.next_site());
        if obs_on {
            let wait_started = Instant::now();
            backoff.wait(sched);
            mgr_wait_ns += wait_started.elapsed().as_nanos() as u64;
        } else {
            backoff.wait(sched);
        }
    }

    // Terminal gauge flush: one last sample at the final global time so
    // CSV exports always contain the run's end state even when the run
    // length is not a multiple of the sampling cadence. Guarded so a
    // sample that already landed on this exact cycle is not duplicated —
    // gauge series are strictly increasing in cycle.
    if obs_on && final_global.as_u64() > last_metrics_cycle {
        locals.clear();
        locals.extend(shared.iter().map(|s| s.local.load(Ordering::Acquire)));
        sample_metrics(
            &mut metrics,
            &ids,
            &mut th,
            shared,
            &locals,
            final_global,
            pacer.current_bound(),
            gq.len() as u64,
            detected.total(),
            tracer,
            mgr_wait_ns,
            &mut last_metrics_cycle,
            &mut last_metrics_detected,
            &mut last_wait_ns,
        );
    }

    let mut kernel = Counters::new();
    kernel.set("checkpoints", spec_stats.checkpoints);
    kernel.set("rollbacks", spec_stats.rollbacks);
    kernel.set("wasted_cycles", spec_stats.wasted_cycles);
    kernel.set("replay_cycles", spec_stats.replay_cycles);
    kernel.set("violations_detected_total", detected.total());
    kernel.set(
        "violations_detected_bus",
        detected.count(crate::violation::ViolationKind::Bus),
    );
    kernel.set(
        "violations_detected_map",
        detected.count(crate::violation::ViolationKind::Map),
    );
    kernel.set(
        "violations_detected_directory",
        detected.count(crate::violation::ViolationKind::Directory),
    );
    kernel.set(
        "finish_commit_target",
        u64::from(finish_reason == FinishReason::CommitTarget),
    );
    kernel.set("max_clock_spread", max_spread);
    kernel.set("manager_parks", backoff.parks);
    kernel.set(
        "core_parks",
        shared.iter().map(|s| s.parks.load(Ordering::Relaxed)).sum(),
    );
    if !shardset.is_empty() {
        kernel.set("shards", shardset.shards.len() as u64 + 1);
        kernel.set(
            "shard_forwarded_total",
            shardset.resume_base
                + shardset
                    .shards
                    .iter()
                    .map(|sh| sh.forwarded.load(Ordering::Relaxed))
                    .sum::<u64>(),
        );
        kernel.set(
            "shard_parks",
            shardset
                .shards
                .iter()
                .map(|sh| sh.parks.load(Ordering::Relaxed))
                .sum(),
        );
    }
    if let Some(tr) = &tracker {
        kernel.set("intervals_total", tr.intervals_total());
        kernel.set("intervals_violating", tr.intervals_violating());
        kernel.set(
            "mean_first_violation_distance_x1000",
            (tr.mean_first_distance() * 1000.0).round() as u64,
        );
    }

    Ok(ManagerOutcome {
        uncore: uncore.clone(),
        global: final_global,
        committed: committed.load(Ordering::Acquire),
        tally,
        kernel,
        bound_trace,
        metrics,
    })
}

/// Hands the freshly merged checkpoint snapshot to the save hook (if one
/// is installed) and records the persist in the trace and metrics. Runs on
/// the manager thread while the cores are paused at the boundary, so the
/// snapshot is immutable for the duration.
#[allow(clippy::too_many_arguments)]
fn invoke_save_hook<C, U>(
    save_hook: &mut Option<SaveHook<C, U>>,
    snapshot: &Option<ManagerSnapshot<C, U>>,
    spec_stats: SpeculationStats,
    detected: ViolationTally,
    tracker: Option<&IntervalTracker>,
    bound_trace: &[(Cycle, u64)],
    max_spread: u64,
    shard_forwarded: &[u64],
    th: &mut TraceHandle,
    metrics: &mut MetricsRegistry,
    persist_bytes_id: GaugeId,
    ph: &ProfHandle,
) where
    C: CoreModel + Checkpointable,
    U: UncoreModel<C::Event> + Checkpointable,
{
    let Some(hook) = save_hook.as_mut() else {
        return;
    };
    let _span = ph.enter(ProfSite::PersistIo);
    let snap = snapshot.as_ref().expect("checkpoint just merged");
    let view = CheckpointView {
        ordinal: spec_stats.checkpoints,
        global: snap.global,
        cores: snap.cores.iter().map(|(c, ib)| (c, ib)).collect(),
        uncore: &snap.uncore,
        committed: snap.committed,
        tally: snap.tally,
        detected,
        next_sample: snap.next_sample,
        last_sample_tally: snap.last_sample_tally,
        spec_stats,
        tracker,
        pacer: &*snap.pacer,
        rng: None,
        bound_trace,
        max_spread,
        shard_forwarded: shard_forwarded.to_vec(),
    };
    let bytes = hook(&view).unwrap_or(0);
    th.record(
        snap.global,
        TraceEvent::StatePersist {
            ordinal: spec_stats.checkpoints,
            bytes,
        },
    );
    metrics.gauge_by(persist_bytes_id, snap.global, bytes as f64);
}

/// Sets every core's max local time and unparks any core waiting on it.
fn publish_window<C: CoreModel + Checkpointable>(
    shared: &[Arc<CoreShared<C>>],
    window_end: Cycle,
    sched: &dyn HostSched,
) {
    for s in shared {
        s.max_local.store(window_end.as_u64(), Ordering::Release);
        wake_core(s, sched);
    }
}

/// Publishes windows for a greedy scheme: per-core when the pacer paces
/// against peers (Lax-P2P), uniform otherwise; both clamped by the
/// implementation lead cap. `floor` is the slack floor the windows pace
/// against — the exact global minimum under a single manager, the
/// reconciled per-shard floor under a manager tree (which also bounds
/// forwarding-ring growth: no core may lead an unforwarded event by more
/// than the window). Returns the largest published window for the
/// manager's bookkeeping.
#[allow(clippy::too_many_arguments)]
fn publish_greedy_windows<C: CoreModel + Checkpointable>(
    pacer: &mut Box<dyn Pacer>,
    shared: &[Arc<CoreShared<C>>],
    locals: &[u64],
    floor: Cycle,
    cycles_buf: &mut Vec<Cycle>,
    cfg: &EngineConfig,
    sched: &dyn HostSched,
) -> Cycle {
    let global = floor;
    let cap = cfg.lead_cap(global);
    cycles_buf.clear();
    cycles_buf.extend(locals.iter().map(|&l| Cycle::new(l)));
    if let Some(wins) = pacer.window_ends(cycles_buf) {
        let mut max_win = Cycle::ZERO;
        for (i, s) in shared.iter().enumerate() {
            let w = wins[i].min(cap);
            s.max_local.store(w.as_u64(), Ordering::Release);
            wake_core(s, sched);
            max_win = max_win.max(w);
        }
        max_win
    } else {
        let w = pacer.window_end(global).min(cap);
        publish_window(shared, w, sched);
        w
    }
}

/// Moves every queued OutQ entry into the global queue: one batched ring
/// drain plus one batched heap insert per core. Returns the number of
/// events moved.
fn drain_outqs<C: CoreModel + Checkpointable>(
    shared: &[Arc<CoreShared<C>>],
    gq: &mut GlobalQueue<C::Event>,
    buf: &mut Vec<Timestamped<C::Event>>,
) -> usize {
    let mut total = 0;
    for (i, s) in shared.iter().enumerate() {
        buf.clear();
        let moved = s.outq.drain_into(buf);
        if moved > 0 {
            total += moved;
            gq.push_batch(CoreId::new(i as u16), buf);
        }
    }
    total
}

/// Services everything currently in the global queue, recording a
/// violation trace instant (attributed to the originating core) for every
/// violation the uncore reports.
#[allow(clippy::too_many_arguments)]
fn service_all<C: CoreModel + Checkpointable, U: UncoreModel<C::Event>>(
    gq: &mut GlobalQueue<C::Event>,
    uncore: &mut U,
    sink: &mut ServiceSink<C::Event>,
    shared: &[Arc<CoreShared<C>>],
    tally: &mut ViolationTally,
    detected: &mut ViolationTally,
    tracker: &mut Option<IntervalTracker>,
    pending_rollback: &mut bool,
    spec: &Option<crate::speculative::SpeculationConfig>,
    base_mode: bool,
    th: &mut TraceHandle,
) {
    while let Some((from, ev)) = gq.pop() {
        uncore.service(from, ev, sink);
        for (to, out) in sink.take_deliveries() {
            shared[to.index()].inq.push(out);
        }
        for v in sink.take_violations() {
            tally.record(v.kind);
            detected.record(v.kind);
            th.record(
                v.ts,
                TraceEvent::Violation {
                    kind: v.kind,
                    core: from,
                    ts: v.ts,
                    high_water: v.high_water,
                },
            );
            if let Some(tr) = tracker.as_mut() {
                tr.observe_violation(v.ts);
            }
            if base_mode {
                if let Some(sc) = spec {
                    if sc.rollback_on.selects(v.kind) {
                        *pending_rollback = true;
                    }
                }
            }
        }
        if *pending_rollback {
            gq.clear();
            break;
        }
    }
}

/// Sends `Stop` to every core (waking parked ones) and waits for all
/// acknowledgements.
fn stop_all<C: CoreModel + Checkpointable>(
    shared: &[Arc<CoreShared<C>>],
    cmd_txs: &[Sender<Command<C>>],
    ack_rxs: &[Receiver<u64>],
    sched: &dyn HostSched,
) {
    for (i, tx) in cmd_txs.iter().enumerate() {
        send_cmd(&shared[i], tx, Command::Stop, sched);
    }
    await_acks(ack_rxs, sched);
}

/// Sends `Resume` to every (paused) core.
fn resume_all<C: CoreModel + Checkpointable>(
    shared: &[Arc<CoreShared<C>>],
    cmd_txs: &[Sender<Command<C>>],
    sched: &dyn HostSched,
) {
    for (i, tx) in cmd_txs.iter().enumerate() {
        send_cmd(&shared[i], tx, Command::Resume, sched);
    }
}

/// Blocks until every core has acknowledged the last command: a real
/// blocking receive natively, a scheduler-visible poll under a virtual
/// scheduler.
fn await_acks(ack_rxs: &[Receiver<u64>], sched: &dyn HostSched) {
    if !sched.virtualized() {
        for rx in ack_rxs {
            rx.recv().expect("core alive");
        }
        return;
    }
    for rx in ack_rxs {
        loop {
            match rx.try_recv() {
                Ok(_) => break,
                Err(TryRecvError::Empty) => sched.idle_yield(SchedSite::AwaitAck),
                Err(TryRecvError::Disconnected) => panic!("core alive"),
            }
        }
    }
}

/// Stop-syncs all cores at a common local time and collects their
/// captures (full clones or deltas, per `delta`). Also used for the free
/// initial checkpoint, which is always full.
#[allow(clippy::too_many_arguments)]
fn snapshot_all<C: CoreModel + Checkpointable, U: UncoreModel<C::Event>>(
    shared: &[Arc<CoreShared<C>>],
    cmd_txs: &[Sender<Command<C>>],
    ack_rxs: &[Receiver<u64>],
    gq: &mut GlobalQueue<C::Event>,
    uncore: &mut U,
    sink: &mut ServiceSink<C::Event>,
    drain_buf: &mut Vec<Timestamped<C::Event>>,
    sched: &dyn HostSched,
    delta: bool,
) -> Vec<CoreCapture<C>> {
    stop_all(shared, cmd_txs, ack_rxs, sched);
    drain_outqs(shared, gq, drain_buf);
    // Service without violation bookkeeping: only used at cycle 0 where the
    // queues are empty anyway; drain defensively.
    while let Some((from, ev)) = gq.pop() {
        uncore.service(from, ev, sink);
        for (to, out) in sink.take_deliveries() {
            shared[to.index()].inq.push(out);
        }
        let _ = sink.take_violations();
    }
    for (i, tx) in cmd_txs.iter().enumerate() {
        send_cmd(&shared[i], tx, Command::Snapshot { delta }, sched);
    }
    await_acks(ack_rxs, sched);
    let snaps = shared
        .iter()
        .map(|s| s.snapshot.take().expect("snapshot filled"))
        .collect();
    resume_all(shared, cmd_txs, sched);
    snaps
}

/// Folds a round of core captures plus the live uncore into the standing
/// manager snapshot. Full captures rebuild the snapshot outright (and
/// re-seed the uncore's delta baseline, so the first delta after an
/// initial full snapshot has an exact baseline); delta captures are
/// applied onto the previous checkpoint in place, which is the point of
/// delta mode — maintenance cost proportional to what changed, not to
/// total model size.
#[allow(clippy::too_many_arguments)]
fn merge_snapshot<C, U>(
    snapshot: &mut Option<ManagerSnapshot<C, U>>,
    captures: Vec<CoreCapture<C>>,
    uncore: &mut U,
    global: Cycle,
    tally: ViolationTally,
    committed: u64,
    pacer: &dyn Pacer,
    next_sample: u64,
    last_sample_tally: ViolationTally,
) where
    C: CoreModel + Checkpointable,
    U: UncoreModel<C::Event> + Checkpointable,
{
    if matches!(captures.first(), Some(CoreCapture::Delta(_))) {
        let snap = snapshot
            .as_mut()
            .expect("delta capture requires a standing snapshot");
        for (i, cap) in captures.into_iter().enumerate() {
            match cap {
                CoreCapture::Delta(b) => {
                    let (d, ib) = *b;
                    snap.cores[i].0.apply_delta(d);
                    snap.cores[i].1 = ib;
                }
                _ => unreachable!("capture mode is uniform across cores"),
            }
        }
        let ud = uncore.capture_delta(snap.uncore_gen);
        snap.uncore.apply_delta(ud);
        snap.uncore_gen = uncore.generation();
        snap.global = global;
        snap.tally = tally;
        snap.committed = committed;
        snap.pacer = pacer.clone_box();
        snap.next_sample = next_sample;
        snap.last_sample_tally = last_sample_tally;
    } else {
        let g = uncore.generation();
        let _ = uncore.capture_delta(g);
        *snapshot = Some(ManagerSnapshot {
            cores: captures
                .into_iter()
                .map(|cap| match cap {
                    CoreCapture::Full(b) => *b,
                    _ => unreachable!("capture mode is uniform across cores"),
                })
                .collect(),
            uncore: uncore.clone(),
            uncore_gen: g,
            global,
            tally,
            committed,
            pacer: pacer.clone_box(),
            next_sample,
            last_sample_tally,
        });
    }
}

#[cfg(test)]
mod tests {
    // The threaded engine is exercised end-to-end in the workspace
    // integration tests (tests/engines_agree.rs and friends), where it is
    // compared against the sequential engine on real CMP models. The
    // SPSC ring it is built on has its own stress suite in
    // crates/core/tests/spsc_stress.rs.
}
