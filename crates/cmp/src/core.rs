//! The target core timing model: a 4-wide out-of-order core with a
//! 64-entry instruction window, lock-up-free L1 I/D caches with MSHRs, and
//! simulator-executed synchronisation — SlackSim's NetBurst-flavoured
//! modification of SimpleScalar (paper §2).
//!
//! Each call to [`CmpCore::tick`] simulates exactly one target cycle:
//!
//! 1. apply due incoming events (replies, snoops, sync releases);
//! 2. retire up to `issue_width` completed instructions in order;
//! 3. issue up to `issue_width` new instructions: ALU ops complete after
//!    their latency, loads/stores access the L1 and allocate MSHRs on
//!    misses, branches may stall the front end, and barrier/lock ops drain
//!    the window, notify the manager, and spin.

use slacksim_core::checkpoint::Checkpointable;
use slacksim_core::engine::{CoreModel, TickCtx};
use slacksim_core::event::{Inbox, Timestamped};
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};
use slacksim_core::stats::Counters;
use slacksim_core::time::Cycle;

use crate::cache::{Cache, CacheDelta, LineAddr, StoreProbe};
use crate::config::{CmpConfig, CoreConfig};
use crate::event::{MemEvent, ReqId};
use crate::isa::{Instr, InstrStream, Op};
use crate::mesi::{BusOp, MesiState};

/// What the core is spinning on, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    Barrier(u32),
    Lock(u32),
    Ifetch(ReqId),
}

/// One in-flight instruction window entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WinEntry {
    id: u64,
    /// Completion time; `None` while waiting on a memory reply.
    done_at: Option<Cycle>,
}

/// One outstanding L1 miss.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Mshr {
    req: ReqId,
    line: LineAddr,
    op: BusOp,
    ifetch: bool,
    waiters: Vec<u64>,
}

/// The hot per-core scalars: the state the quantum-compiled stepping loop
/// reads and writes every simulated cycle, split out of the cold bulk
/// (caches, MSHRs, window contents, event plumbing) so the batched engine
/// can mirror them in dense arrays (see [`CoreHotSoA`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreHot {
    /// Cycles simulated so far (the core's local clock).
    pub cycles: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// Instructions drawn from the workload stream so far (the next-fetch
    /// cursor; streams are deterministic per seed, so this cursor lets a
    /// persisted core rebuild its exact stream position by replaying a
    /// fresh stream forward).
    pub fetched: u64,
    /// Front-end stall deadline after a branch mispredict.
    pub fetch_stall_until: Cycle,
}

/// Struct-of-arrays mirror of every core's hot scalars: per-core local
/// clocks, commit counters, window occupancy and next-fetch cursors in
/// dense parallel arrays, indexed by core.
///
/// [`gather`](CoreHotSoA::gather) projects a core slice into the arrays
/// and [`scatter_into`](CoreHotSoA::scatter_into) writes the owned scalars
/// back. `window_len` is a *derived* projection (the instruction window's
/// occupancy lives in the window itself), so scatter checks it for
/// consistency in debug builds rather than writing it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreHotSoA {
    /// Per-core local clocks ([`CoreHot::cycles`]).
    pub local_clock: Vec<u64>,
    /// Per-core commit counters ([`CoreHot::committed`]).
    pub committed: Vec<u64>,
    /// Per-core instruction-window occupancy (derived).
    pub window_len: Vec<u32>,
    /// Per-core next-fetch cursors ([`CoreHot::fetched`]).
    pub next_fetch: Vec<u64>,
    /// Per-core front-end stall deadlines ([`CoreHot::fetch_stall_until`]).
    pub fetch_stall_until: Vec<u64>,
}

impl CoreHotSoA {
    /// Projects the hot scalars of `cores` into dense parallel arrays.
    pub fn gather(cores: &[CmpCore]) -> Self {
        CoreHotSoA {
            local_clock: cores.iter().map(|c| c.hot.cycles).collect(),
            committed: cores.iter().map(|c| c.hot.committed).collect(),
            window_len: cores.iter().map(|c| c.window.len() as u32).collect(),
            next_fetch: cores.iter().map(|c| c.hot.fetched).collect(),
            fetch_stall_until: cores
                .iter()
                .map(|c| c.hot.fetch_stall_until.as_u64())
                .collect(),
        }
    }

    /// Writes the owned hot scalars back into `cores`, field for field.
    ///
    /// # Panics
    ///
    /// Panics if the array lengths do not match the core count.
    pub fn scatter_into(&self, cores: &mut [CmpCore]) {
        assert_eq!(self.local_clock.len(), cores.len(), "SoA/core count");
        for (i, core) in cores.iter_mut().enumerate() {
            core.hot.cycles = self.local_clock[i];
            core.hot.committed = self.committed[i];
            core.hot.fetched = self.next_fetch[i];
            core.hot.fetch_stall_until = Cycle::new(self.fetch_stall_until[i]);
            debug_assert_eq!(
                self.window_len[i] as usize,
                core.window.len(),
                "window occupancy is derived from the window contents"
            );
        }
    }

    /// Number of cores mirrored.
    pub fn len(&self) -> usize {
        self.local_clock.len()
    }

    /// Whether the mirror is empty.
    pub fn is_empty(&self) -> bool {
        self.local_clock.is_empty()
    }
}

/// The simulated target core (pipeline + L1 caches + workload stream).
///
/// # Examples
///
/// ```
/// use slacksim_cmp::config::CmpConfig;
/// use slacksim_cmp::core::CmpCore;
/// use slacksim_cmp::isa::{LoopStream, Op};
///
/// let cfg = CmpConfig::paper();
/// let stream = Box::new(LoopStream::new(vec![Op::IntAlu, Op::Load { addr: 0x100 }]));
/// let core = CmpCore::new(&cfg.core, stream);
/// assert_eq!(slacksim_core::engine::CoreModel::committed(&core), 0);
/// ```
#[derive(Clone)]
pub struct CmpCore {
    cfg: CoreConfig,
    stream: Box<dyn InstrStream>,
    /// The per-cycle hot scalars (local clock, commit counter, next-fetch
    /// cursor, front-end stall deadline), split out so [`CoreHotSoA`] can
    /// mirror them densely; everything below is the cold bulk.
    hot: CoreHot,
    pending: Option<Instr>,
    window: std::collections::VecDeque<WinEntry>,
    mshrs: Vec<Mshr>,
    l1i: Cache,
    l1d: Cache,
    next_entry_id: u64,
    next_req: ReqId,
    wait: Option<Wait>,

    // Statistics (the always-hot cycle and commit counters live in `hot`).
    loads: u64,
    stores: u64,
    branches: u64,
    mispredicts: u64,
    barriers: u64,
    lock_acquires: u64,
    lock_releases: u64,
    l1d_hits: u64,
    l1d_misses: u64,
    l1d_miss_coalesced: u64,
    l1i_hits: u64,
    l1i_misses: u64,
    writebacks: u64,
    invalidations_received: u64,
    downgrades_received: u64,
    stall_window: u64,
    stall_mshr: u64,
    stall_sync: u64,
    stall_fetch: u64,

    /// Tracking metadata: `(composite generation, (l1i gen, l1d gen))`
    /// recorded by the last `capture_delta` (see
    /// [`CmpUncore`](crate::uncore::CmpUncore) for the token scheme).
    cp_baseline: Option<(u64, (u64, u64))>,
}

/// Everything in a [`CmpCore`] other than the L1 caches: the pipeline and
/// workload position plus the statistics scalars. The pipeline mutates
/// every simulated cycle, so a delta carries this block unconditionally —
/// it is small (a window of a few dozen entries, a handful of MSHRs, the
/// stream cursor) next to the caches the dirty tracking avoids copying.
#[derive(Clone)]
struct CoreRest {
    stream: Box<dyn InstrStream>,
    hot: CoreHot,
    pending: Option<Instr>,
    window: std::collections::VecDeque<WinEntry>,
    mshrs: Vec<Mshr>,
    next_entry_id: u64,
    next_req: ReqId,
    wait: Option<Wait>,
    loads: u64,
    stores: u64,
    branches: u64,
    mispredicts: u64,
    barriers: u64,
    lock_acquires: u64,
    lock_releases: u64,
    l1d_hits: u64,
    l1d_misses: u64,
    l1d_miss_coalesced: u64,
    l1i_hits: u64,
    l1i_misses: u64,
    writebacks: u64,
    invalidations_received: u64,
    downgrades_received: u64,
    stall_window: u64,
    stall_mshr: u64,
    stall_sync: u64,
    stall_fetch: u64,
}

/// Incremental state carrier for a [`CmpCore`]: dirty-set deltas for the
/// two L1s plus the always-dirty pipeline block.
#[derive(Clone)]
pub struct CmpCoreDelta {
    l1i: CacheDelta,
    l1d: CacheDelta,
    rest: CoreRest,
}

impl CmpCoreDelta {
    /// Dirty L1 sets carried (instruction + data).
    pub fn l1_dirty_sets(&self) -> usize {
        self.l1i.dirty_sets() + self.l1d.dirty_sets()
    }
}

impl std::fmt::Debug for CmpCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmpCore")
            .field("cycles", &self.hot.cycles)
            .field("committed", &self.hot.committed)
            .field("window", &self.window.len())
            .field("mshrs", &self.mshrs.len())
            .field("wait", &self.wait)
            .finish_non_exhaustive()
    }
}

impl CmpCore {
    /// Creates a core with empty caches positioned at the start of
    /// `stream`.
    pub fn new(cfg: &CoreConfig, stream: Box<dyn InstrStream>) -> Self {
        CmpCore {
            cfg: *cfg,
            stream,
            hot: CoreHot::default(),
            pending: None,
            window: std::collections::VecDeque::with_capacity(cfg.window),
            mshrs: Vec::with_capacity(cfg.mshrs),
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            next_entry_id: 0,
            next_req: 0,
            wait: None,
            loads: 0,
            stores: 0,
            branches: 0,
            mispredicts: 0,
            barriers: 0,
            lock_acquires: 0,
            lock_releases: 0,
            l1d_hits: 0,
            l1d_misses: 0,
            l1d_miss_coalesced: 0,
            l1i_hits: 0,
            l1i_misses: 0,
            writebacks: 0,
            invalidations_received: 0,
            downgrades_received: 0,
            stall_window: 0,
            stall_mshr: 0,
            stall_sync: 0,
            stall_fetch: 0,
            cp_baseline: None,
        }
    }

    fn rest_snapshot(&self) -> CoreRest {
        CoreRest {
            stream: self.stream.clone(),
            hot: self.hot,
            pending: self.pending,
            window: self.window.clone(),
            mshrs: self.mshrs.clone(),
            next_entry_id: self.next_entry_id,
            next_req: self.next_req,
            wait: self.wait,
            loads: self.loads,
            stores: self.stores,
            branches: self.branches,
            mispredicts: self.mispredicts,
            barriers: self.barriers,
            lock_acquires: self.lock_acquires,
            lock_releases: self.lock_releases,
            l1d_hits: self.l1d_hits,
            l1d_misses: self.l1d_misses,
            l1d_miss_coalesced: self.l1d_miss_coalesced,
            l1i_hits: self.l1i_hits,
            l1i_misses: self.l1i_misses,
            writebacks: self.writebacks,
            invalidations_received: self.invalidations_received,
            downgrades_received: self.downgrades_received,
            stall_window: self.stall_window,
            stall_mshr: self.stall_mshr,
            stall_sync: self.stall_sync,
            stall_fetch: self.stall_fetch,
        }
    }

    fn apply_rest(&mut self, rest: CoreRest) {
        self.stream = rest.stream;
        self.hot = rest.hot;
        self.pending = rest.pending;
        self.window = rest.window;
        self.mshrs = rest.mshrs;
        self.next_entry_id = rest.next_entry_id;
        self.next_req = rest.next_req;
        self.wait = rest.wait;
        self.loads = rest.loads;
        self.stores = rest.stores;
        self.branches = rest.branches;
        self.mispredicts = rest.mispredicts;
        self.barriers = rest.barriers;
        self.lock_acquires = rest.lock_acquires;
        self.lock_releases = rest.lock_releases;
        self.l1d_hits = rest.l1d_hits;
        self.l1d_misses = rest.l1d_misses;
        self.l1d_miss_coalesced = rest.l1d_miss_coalesced;
        self.l1i_hits = rest.l1i_hits;
        self.l1i_misses = rest.l1i_misses;
        self.writebacks = rest.writebacks;
        self.invalidations_received = rest.invalidations_received;
        self.downgrades_received = rest.downgrades_received;
        self.stall_window = rest.stall_window;
        self.stall_mshr = rest.stall_mshr;
        self.stall_sync = rest.stall_sync;
        self.stall_fetch = rest.stall_fetch;
    }

    /// Maps the opaque `since_gen` token to `(l1i, l1d)` generation
    /// baselines; unknown tokens degrade to a conservative full capture
    /// (see [`CmpUncore`](crate::uncore::CmpUncore) for the scheme).
    fn resolve_baseline(&self, since_gen: u64) -> (u64, u64) {
        match self.cp_baseline {
            Some((g, gens)) if g == since_gen => gens,
            _ if since_gen == self.generation() => (self.l1i.generation(), self.l1d.generation()),
            _ => (0, 0),
        }
    }

    /// Builds one core per target core of `cfg`, using `make_stream` to
    /// produce each core's instruction stream.
    pub fn build_cmp(
        cfg: &CmpConfig,
        mut make_stream: impl FnMut(usize) -> Box<dyn InstrStream>,
    ) -> Vec<CmpCore> {
        (0..cfg.cores)
            .map(|i| CmpCore::new(&cfg.core, make_stream(i)))
            .collect()
    }

    /// Serializes the full core state (pipeline, L1s, statistics, stream
    /// cursor) for the on-disk snapshot format. The instruction stream
    /// itself is not serialized — it is reconstructed from the workload
    /// configuration and replayed to the persisted cursor on load.
    pub fn save_state(&self, w: &mut ByteWriter) {
        w.u64(self.hot.fetched);
        match self.pending {
            Some(instr) => {
                w.bool(true);
                instr.save_state(w);
            }
            None => w.bool(false),
        }
        w.u32(self.window.len() as u32);
        for entry in &self.window {
            w.u64(entry.id);
            match entry.done_at {
                Some(at) => {
                    w.bool(true);
                    w.u64(at.as_u64());
                }
                None => w.bool(false),
            }
        }
        w.u32(self.mshrs.len() as u32);
        for mshr in &self.mshrs {
            w.u32(mshr.req);
            w.u64(mshr.line.raw());
            w.u8(mshr.op.persist_tag());
            w.bool(mshr.ifetch);
            w.u32(mshr.waiters.len() as u32);
            for &waiter in &mshr.waiters {
                w.u64(waiter);
            }
        }
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        w.u64(self.next_entry_id);
        w.u32(self.next_req);
        match self.wait {
            None => w.u8(0),
            Some(Wait::Barrier(id)) => {
                w.u8(1);
                w.u32(id);
            }
            Some(Wait::Lock(id)) => {
                w.u8(2);
                w.u32(id);
            }
            Some(Wait::Ifetch(req)) => {
                w.u8(3);
                w.u32(req);
            }
        }
        w.u64(self.hot.fetch_stall_until.as_u64());
        for stat in [
            self.hot.cycles,
            self.hot.committed,
            self.loads,
            self.stores,
            self.branches,
            self.mispredicts,
            self.barriers,
            self.lock_acquires,
            self.lock_releases,
            self.l1d_hits,
            self.l1d_misses,
            self.l1d_miss_coalesced,
            self.l1i_hits,
            self.l1i_misses,
            self.writebacks,
            self.invalidations_received,
            self.downgrades_received,
            self.stall_window,
            self.stall_mshr,
            self.stall_sync,
            self.stall_fetch,
        ] {
            w.u64(stat);
        }
    }

    /// Restores state written by [`CmpCore::save_state`] into a freshly
    /// constructed core whose stream sits at position zero; the stream is
    /// fast-forwarded to the persisted cursor (streams are deterministic
    /// per seed, so replay reproduces the exact position).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for malformed bytes or state that exceeds
    /// this core's configured capacities.
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        let fetched = r.u64()?;
        let pending = if r.bool()? {
            Some(Instr::load_state(r)?)
        } else {
            None
        };
        let n_window = r.u32()? as usize;
        if n_window > self.cfg.window {
            return Err(PersistError::Corrupt("window holds more entries than fit"));
        }
        let mut window = std::collections::VecDeque::with_capacity(self.cfg.window);
        for _ in 0..n_window {
            let id = r.u64()?;
            let done_at = if r.bool()? {
                Some(Cycle::new(r.u64()?))
            } else {
                None
            };
            window.push_back(WinEntry { id, done_at });
        }
        let n_mshrs = r.u32()? as usize;
        if n_mshrs > self.cfg.mshrs {
            return Err(PersistError::Corrupt("more MSHRs than the core has"));
        }
        let mut mshrs = Vec::with_capacity(self.cfg.mshrs);
        for _ in 0..n_mshrs {
            let req = r.u32()?;
            let line = LineAddr::new(r.u64()?);
            let op = BusOp::from_persist_tag(r.u8()?)?;
            let ifetch = r.bool()?;
            let n_waiters = r.u32()? as usize;
            let mut waiters = Vec::with_capacity(n_waiters.min(self.cfg.window));
            for _ in 0..n_waiters {
                waiters.push(r.u64()?);
            }
            mshrs.push(Mshr {
                req,
                line,
                op,
                ifetch,
                waiters,
            });
        }
        self.l1i.load_state(r)?;
        self.l1d.load_state(r)?;
        let next_entry_id = r.u64()?;
        let next_req = r.u32()?;
        let wait = match r.u8()? {
            0 => None,
            1 => Some(Wait::Barrier(r.u32()?)),
            2 => Some(Wait::Lock(r.u32()?)),
            3 => Some(Wait::Ifetch(r.u32()?)),
            _ => return Err(PersistError::Corrupt("unknown core wait tag")),
        };
        let fetch_stall_until = Cycle::new(r.u64()?);

        for _ in 0..fetched {
            let _ = self.stream.next_instr();
        }
        self.hot.fetched = fetched;
        self.pending = pending;
        self.window = window;
        self.mshrs = mshrs;
        self.next_entry_id = next_entry_id;
        self.next_req = next_req;
        self.wait = wait;
        self.hot.fetch_stall_until = fetch_stall_until;
        self.hot.cycles = r.u64()?;
        self.hot.committed = r.u64()?;
        self.loads = r.u64()?;
        self.stores = r.u64()?;
        self.branches = r.u64()?;
        self.mispredicts = r.u64()?;
        self.barriers = r.u64()?;
        self.lock_acquires = r.u64()?;
        self.lock_releases = r.u64()?;
        self.l1d_hits = r.u64()?;
        self.l1d_misses = r.u64()?;
        self.l1d_miss_coalesced = r.u64()?;
        self.l1i_hits = r.u64()?;
        self.l1i_misses = r.u64()?;
        self.writebacks = r.u64()?;
        self.invalidations_received = r.u64()?;
        self.downgrades_received = r.u64()?;
        self.stall_window = r.u64()?;
        self.stall_mshr = r.u64()?;
        self.stall_sync = r.u64()?;
        self.stall_fetch = r.u64()?;
        self.cp_baseline = None;
        Ok(())
    }

    fn peek(&mut self) -> Instr {
        if self.pending.is_none() {
            self.pending = Some(self.stream.next_instr());
            self.hot.fetched += 1;
        }
        self.pending.expect("just filled")
    }

    fn consume(&mut self) {
        self.pending = None;
    }

    fn alloc_req(&mut self) -> ReqId {
        let r = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        r
    }

    fn push_entry(&mut self, done_at: Option<Cycle>) -> u64 {
        let id = self.next_entry_id;
        self.next_entry_id += 1;
        self.window.push_back(WinEntry { id, done_at });
        id
    }

    fn mark_done(&mut self, entry_id: u64, at: Cycle) {
        if let Some(e) = self.window.iter_mut().find(|e| e.id == entry_id) {
            e.done_at = Some(at);
        }
    }

    fn handle_event(&mut self, ev: MemEvent, now: Cycle, outbox: &mut Vec<MemEvent>) {
        match ev {
            MemEvent::Reply { req, line, grant } => {
                let Some(pos) = self.mshrs.iter().position(|m| m.req == req) else {
                    debug_assert!(false, "reply for unknown request {req}");
                    return;
                };
                let mshr = self.mshrs.swap_remove(pos);
                debug_assert_eq!(mshr.line, line, "reply line mismatch");
                if mshr.ifetch {
                    // I-lines are read-shared; victims are never dirty.
                    self.l1i.fill(line, grant);
                    if self.wait == Some(Wait::Ifetch(req)) {
                        self.wait = None;
                    }
                } else {
                    if let Some((victim, state)) = self.l1d.fill(line, grant) {
                        if state.dirty() {
                            self.writebacks += 1;
                            outbox.push(MemEvent::Writeback { line: victim });
                        }
                    }
                    for waiter in mshr.waiters {
                        self.mark_done(waiter, now);
                    }
                }
            }
            MemEvent::Invalidate { line } => {
                self.invalidations_received += 1;
                self.l1d.invalidate(line);
            }
            MemEvent::Downgrade { line } => {
                self.downgrades_received += 1;
                self.l1d.set_state(line, MesiState::Shared);
            }
            MemEvent::BarrierRelease { id } => {
                if self.wait == Some(Wait::Barrier(id)) {
                    self.wait = None;
                }
            }
            MemEvent::LockGranted { id } => {
                if self.wait == Some(Wait::Lock(id)) {
                    self.wait = None;
                }
            }
            req @ (MemEvent::Request { .. }
            | MemEvent::Writeback { .. }
            | MemEvent::BarrierArrive { .. }
            | MemEvent::LockAcquire { .. }
            | MemEvent::LockRelease { .. }) => {
                debug_assert!(false, "manager delivered a core-direction event: {req:?}");
            }
        }
    }

    /// Classifies whether a pending data MSHR for `line` can absorb a new
    /// access that does (`need_ownership`) or does not need an M grant.
    fn coalescable_mshr(&self, line: LineAddr, need_ownership: bool) -> CoalesceResult {
        match self.mshrs.iter().find(|m| m.line == line && !m.ifetch) {
            Some(m) if !need_ownership || matches!(m.op, BusOp::RdX | BusOp::Upgr) => {
                CoalesceResult::Join
            }
            Some(_) => CoalesceResult::Conflict,
            None => CoalesceResult::Absent,
        }
    }

    fn issue(&mut self, now: Cycle, outbox: &mut Vec<MemEvent>) -> u32 {
        let mut issued = 0u32;
        let mut committed_now = 0u32;
        let width = self.cfg.issue_width;
        let line_bytes = self.cfg.l1d.line_bytes;
        let iline_bytes = self.cfg.l1i.line_bytes;
        // Same-I-line fast path, valid only within this call: consecutive
        // instructions overwhelmingly fetch from one cache line, and the
        // L1I cannot change between issue slots (fills happen only in
        // `handle_event`), so after the first probe the line stays MRU and
        // a re-probe is just the counters.
        let mut probed_iline: Option<LineAddr> = None;

        while issued < width {
            if self.window.len() >= self.cfg.window {
                self.stall_window += 1;
                break;
            }
            let instr = self.peek();

            // Instruction fetch.
            let iline = LineAddr::from_byte_addr(instr.pc, iline_bytes);
            if probed_iline == Some(iline) {
                self.l1i_hits += 1;
                self.l1i.reprobe_mru(iline);
            } else if self.l1i.probe_if_resident(iline).is_some() {
                self.l1i_hits += 1;
                probed_iline = Some(iline);
            } else {
                self.l1i_misses += 1;
                if self.mshrs.len() < self.cfg.mshrs {
                    let req = self.alloc_req();
                    self.mshrs.push(Mshr {
                        req,
                        line: iline,
                        op: BusOp::Rd,
                        ifetch: true,
                        waiters: Vec::new(),
                    });
                    outbox.push(MemEvent::Request {
                        op: BusOp::Rd,
                        line: iline,
                        req,
                        ifetch: true,
                    });
                    self.wait = Some(Wait::Ifetch(req));
                } else {
                    self.stall_mshr += 1;
                }
                self.stall_fetch += 1;
                break;
            }

            match instr.op {
                Op::IntAlu => {
                    let lat = self.cfg.int_latency;
                    self.push_entry(Some(now + lat));
                    self.consume();
                    issued += 1;
                }
                Op::IntMul => {
                    let lat = self.cfg.mul_latency;
                    self.push_entry(Some(now + lat));
                    self.consume();
                    issued += 1;
                }
                Op::IntDiv => {
                    let lat = self.cfg.div_latency;
                    self.push_entry(Some(now + lat));
                    self.consume();
                    issued += 1;
                }
                Op::FpAlu => {
                    let lat = self.cfg.fp_latency;
                    self.push_entry(Some(now + lat));
                    self.consume();
                    issued += 1;
                }
                Op::FpMul => {
                    let lat = self.cfg.fp_mul_latency;
                    self.push_entry(Some(now + lat));
                    self.consume();
                    issued += 1;
                }
                Op::Branch { mispredict } => {
                    self.branches += 1;
                    let lat = self.cfg.int_latency;
                    self.push_entry(Some(now + lat));
                    self.consume();
                    issued += 1;
                    if mispredict {
                        self.mispredicts += 1;
                        self.hot.fetch_stall_until = now + self.cfg.mispredict_penalty;
                        break;
                    }
                }
                Op::Load { addr } => {
                    let line = LineAddr::from_byte_addr(addr, line_bytes);
                    if self.l1d.probe_if_resident(line).is_some() {
                        self.l1d_hits += 1;
                        let lat = self.cfg.l1_hit_latency;
                        self.push_entry(Some(now + lat));
                        self.loads += 1;
                        self.consume();
                        issued += 1;
                    } else {
                        match self.coalescable_mshr(line, false) {
                            CoalesceResult::Join => {
                                self.l1d_miss_coalesced += 1;
                                self.loads += 1;
                                let id = self.push_entry(None);
                                self.mshrs
                                    .iter_mut()
                                    .find(|m| m.line == line && !m.ifetch)
                                    .expect("mshr just found")
                                    .waiters
                                    .push(id);
                                self.consume();
                                issued += 1;
                            }
                            CoalesceResult::Conflict => unreachable!("loads join any data MSHR"),
                            CoalesceResult::Absent => {
                                if self.mshrs.len() < self.cfg.mshrs {
                                    self.l1d_misses += 1;
                                    self.loads += 1;
                                    let req = self.alloc_req();
                                    let id = self.push_entry(None);
                                    self.mshrs.push(Mshr {
                                        req,
                                        line,
                                        op: BusOp::Rd,
                                        ifetch: false,
                                        waiters: vec![id],
                                    });
                                    outbox.push(MemEvent::Request {
                                        op: BusOp::Rd,
                                        line,
                                        req,
                                        ifetch: false,
                                    });
                                    self.consume();
                                    issued += 1;
                                } else {
                                    self.stall_mshr += 1;
                                    break;
                                }
                            }
                        }
                    }
                }
                Op::Store { addr } => {
                    let line = LineAddr::from_byte_addr(addr, line_bytes);
                    match self.l1d.probe_writable_modify(line) {
                        StoreProbe::Written => {
                            self.l1d_hits += 1;
                            let lat = self.cfg.l1_hit_latency;
                            self.push_entry(Some(now + lat));
                            self.stores += 1;
                            self.consume();
                            issued += 1;
                        }
                        miss => {
                            // Shared (upgrade) or absent (read-for-ownership).
                            let op = if miss == StoreProbe::NeedsUpgrade {
                                BusOp::Upgr
                            } else {
                                BusOp::RdX
                            };
                            match self.coalescable_mshr(line, true) {
                                CoalesceResult::Join => {
                                    self.l1d_miss_coalesced += 1;
                                    self.stores += 1;
                                    let id = self.push_entry(None);
                                    self.mshrs
                                        .iter_mut()
                                        .find(|m| m.line == line && !m.ifetch)
                                        .expect("mshr just found")
                                        .waiters
                                        .push(id);
                                    self.consume();
                                    issued += 1;
                                }
                                CoalesceResult::Conflict => {
                                    // A read miss is in flight; the store must
                                    // wait for it to resolve before upgrading.
                                    self.stall_mshr += 1;
                                    break;
                                }
                                CoalesceResult::Absent => {
                                    if self.mshrs.len() < self.cfg.mshrs {
                                        self.l1d_misses += 1;
                                        self.stores += 1;
                                        let req = self.alloc_req();
                                        let id = self.push_entry(None);
                                        self.mshrs.push(Mshr {
                                            req,
                                            line,
                                            op,
                                            ifetch: false,
                                            waiters: vec![id],
                                        });
                                        outbox.push(MemEvent::Request {
                                            op,
                                            line,
                                            req,
                                            ifetch: false,
                                        });
                                        self.consume();
                                        issued += 1;
                                    } else {
                                        self.stall_mshr += 1;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
                Op::Barrier { id } => {
                    if !self.window.is_empty() {
                        break; // drain before synchronising
                    }
                    self.barriers += 1;
                    self.hot.committed += 1;
                    committed_now += 1;
                    outbox.push(MemEvent::BarrierArrive { id });
                    self.wait = Some(Wait::Barrier(id));
                    self.consume();
                    break;
                }
                Op::LockAcquire { id } => {
                    if !self.window.is_empty() {
                        break;
                    }
                    self.lock_acquires += 1;
                    self.hot.committed += 1;
                    committed_now += 1;
                    outbox.push(MemEvent::LockAcquire { id });
                    self.wait = Some(Wait::Lock(id));
                    self.consume();
                    break;
                }
                Op::LockRelease { id } => {
                    self.lock_releases += 1;
                    self.hot.committed += 1;
                    committed_now += 1;
                    outbox.push(MemEvent::LockRelease { id });
                    self.consume();
                    issued += 1;
                }
            }
        }
        committed_now
    }

    /// The per-cycle back half shared by [`tick`](CoreModel::tick) and the
    /// quantum-compiled [`run_window`](CoreModel::run_window): retire up
    /// to `issue_width` completed instructions in order, then either
    /// charge the cycle to a stall counter or issue. Event application and
    /// the cycle counter are the caller's (they differ between the two
    /// entry points).
    #[inline]
    fn retire_and_issue(&mut self, now: Cycle, outbox: &mut Vec<MemEvent>) -> u32 {
        let mut committed_now = 0u32;
        while committed_now < self.cfg.issue_width {
            match self.window.front() {
                Some(e) if e.done_at.is_some_and(|d| d <= now) => {
                    self.window.pop_front();
                    self.hot.committed += 1;
                    committed_now += 1;
                }
                _ => break,
            }
        }

        if self.wait.is_some() {
            self.stall_sync += 1;
        } else if self.hot.fetch_stall_until > now {
            self.stall_fetch += 1;
        } else {
            committed_now += self.issue(now, outbox);
        }
        committed_now
    }
}

/// Which stall counter a bulk-skipped region charges.
enum StallKind {
    Sync,
    Fetch,
    Window,
}

/// Outcome of looking for an MSHR to coalesce into.
enum CoalesceResult {
    /// A compatible MSHR exists; callers re-find and join it.
    Join,
    /// An MSHR for the line exists but its grant is too weak.
    Conflict,
    /// No MSHR covers the line.
    Absent,
}

impl Checkpointable for CmpCore {
    type Delta = CmpCoreDelta;

    fn generation(&self) -> u64 {
        self.l1i.generation() + self.l1d.generation()
    }

    fn capture_delta(&mut self, since_gen: u64) -> CmpCoreDelta {
        let (bi, bd) = self.resolve_baseline(since_gen);
        let delta = CmpCoreDelta {
            l1i: self.l1i.capture_delta(bi),
            l1d: self.l1d.capture_delta(bd),
            rest: self.rest_snapshot(),
        };
        self.cp_baseline = Some((
            self.generation(),
            (self.l1i.generation(), self.l1d.generation()),
        ));
        delta
    }

    fn apply_delta(&mut self, delta: CmpCoreDelta) {
        self.l1i.apply_delta(delta.l1i);
        self.l1d.apply_delta(delta.l1d);
        self.apply_rest(delta.rest);
    }

    fn restore_from(&mut self, base: &Self, since_gen: u64) {
        let (bi, bd) = self.resolve_baseline(since_gen);
        self.l1i.restore_from(&base.l1i, bi);
        self.l1d.restore_from(&base.l1d, bd);
        self.apply_rest(base.rest_snapshot());
    }
}

impl CoreModel for CmpCore {
    type Event = MemEvent;

    fn tick(&mut self, ctx: &mut TickCtx<'_, MemEvent>) -> u32 {
        let now = ctx.now();
        self.hot.cycles += 1;
        let mut outbox: Vec<MemEvent> = Vec::new();

        // 1. Apply due events.
        while let Some(ev) = ctx.pop_event() {
            self.handle_event(ev.payload, now, &mut outbox);
        }

        // 2. Retire, 3. issue (shared with `run_window`).
        let committed_now = self.retire_and_issue(now, &mut outbox);

        for ev in outbox {
            ctx.emit(ev);
        }
        committed_now
    }

    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<MemEvent>,
        staged: &mut Vec<Timestamped<MemEvent>>,
    ) -> u64 {
        let start_committed = self.hot.committed;
        let mut now = from;
        // One reusable outbox for the whole window: almost every cycle
        // emits nothing, and the ones that do drain straight into the
        // staging buffer, so the per-tick `Vec::new` of the generic loop
        // never allocates here.
        let mut outbox: Vec<MemEvent> = Vec::new();
        // The inbox is exclusively borrowed for the entire window, so its
        // contents only shrink as this loop pops: the next due timestamp
        // is a loop variable, not a per-cycle queue peek. Between due
        // timestamps the core runs in event-free segments with no queue
        // checks at all — the quantum-compiled inner loop.
        let mut next_due = inbox.peek_ts().map_or(u64::MAX, |t| t.as_u64());
        while now < to {
            if next_due <= now.as_u64() {
                // Cycle with incoming events: full step, then refresh the
                // due horizon.
                self.hot.cycles += 1;
                while let Some(ev) = inbox.pop_due(now) {
                    self.handle_event(ev.payload, now, &mut outbox);
                }
                next_due = inbox.peek_ts().map_or(u64::MAX, |t| t.as_u64());
                let _ = self.retire_and_issue(now, &mut outbox);
                if !outbox.is_empty() {
                    for ev in outbox.drain(..) {
                        staged.push(Timestamped::new(now, ev));
                    }
                }
                now += 1;
                continue;
            }
            // Event-free segment: run every cycle in [now, seg_end)
            // without touching the inbox.
            let seg_end = to.as_u64().min(next_due);
            while now.as_u64() < seg_end {
                // Fast-forward across stall regions. A cycle can be
                // accounted in bulk exactly when tick() would change
                // nothing but the local clock and one stall counter: no
                // incoming event is due, the window head cannot retire,
                // and the front end is blocked (sync spin, mispredict
                // stall, or a full window). Every other cycle runs the
                // real pipeline.
                let head_ready = self
                    .window
                    .front()
                    .map_or(u64::MAX, |e| e.done_at.map_or(u64::MAX, Cycle::as_u64));
                if head_ready > now.as_u64() {
                    let bound = seg_end.min(head_ready);
                    let stop = if self.wait.is_some() {
                        Some((bound, StallKind::Sync))
                    } else if self.hot.fetch_stall_until > now {
                        // The stall ends *at* the deadline cycle, which
                        // must run the pipeline again.
                        Some((
                            bound.min(self.hot.fetch_stall_until.as_u64()),
                            StallKind::Fetch,
                        ))
                    } else if self.window.len() >= self.cfg.window {
                        Some((bound, StallKind::Window))
                    } else {
                        None
                    };
                    if let Some((stop, kind)) = stop {
                        if stop > now.as_u64() {
                            let skipped = stop - now.as_u64();
                            self.hot.cycles += skipped;
                            match kind {
                                StallKind::Sync => self.stall_sync += skipped,
                                StallKind::Fetch => self.stall_fetch += skipped,
                                StallKind::Window => self.stall_window += skipped,
                            }
                            now = Cycle::new(stop);
                            continue;
                        }
                    }
                }
                self.hot.cycles += 1;
                let _ = self.retire_and_issue(now, &mut outbox);
                if !outbox.is_empty() {
                    for ev in outbox.drain(..) {
                        staged.push(Timestamped::new(now, ev));
                    }
                }
                now += 1;
            }
        }
        self.hot.committed - start_committed
    }

    fn committed(&self) -> u64 {
        self.hot.committed
    }

    fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("cycles", self.hot.cycles);
        c.set("committed", self.hot.committed);
        c.set("loads", self.loads);
        c.set("stores", self.stores);
        c.set("branches", self.branches);
        c.set("mispredicts", self.mispredicts);
        c.set("barriers", self.barriers);
        c.set("lock_acquires", self.lock_acquires);
        c.set("lock_releases", self.lock_releases);
        c.set("l1d_hits", self.l1d_hits);
        c.set("l1d_misses", self.l1d_misses);
        c.set("l1d_miss_coalesced", self.l1d_miss_coalesced);
        c.set("l1i_hits", self.l1i_hits);
        c.set("l1i_misses", self.l1i_misses);
        c.set("writebacks", self.writebacks);
        c.set("invalidations_received", self.invalidations_received);
        c.set("downgrades_received", self.downgrades_received);
        c.set("stall_window", self.stall_window);
        c.set("stall_mshr", self.stall_mshr);
        c.set("stall_sync", self.stall_sync);
        c.set("stall_fetch", self.stall_fetch);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::LoopStream;
    use slacksim_core::event::{Inbox, Timestamped};

    fn core_with(ops: Vec<Op>) -> CmpCore {
        CmpCore::new(&CoreConfig::default(), Box::new(LoopStream::new(ops)))
    }

    /// Drives one tick, returning (committed, emitted events).
    fn tick_at(core: &mut CmpCore, inbox: &mut Inbox<MemEvent>, t: u64) -> (u32, Vec<MemEvent>) {
        let mut out = Vec::new();
        let mut ctx = TickCtx::new(Cycle::new(t), inbox, &mut out);
        let c = core.tick(&mut ctx);
        (c, out.into_iter().map(|e| e.payload).collect())
    }

    /// Runs `n` ticks with no incoming events.
    fn run_ticks(core: &mut CmpCore, n: u64) -> Vec<MemEvent> {
        let mut inbox = Inbox::new();
        let mut all = Vec::new();
        for t in 0..n {
            let (_, evs) = tick_at(core, &mut inbox, t);
            all.extend(evs);
        }
        all
    }

    #[test]
    fn first_tick_misses_the_icache() {
        let mut core = core_with(vec![Op::IntAlu]);
        let evs = run_ticks(&mut core, 1);
        assert_eq!(evs.len(), 1);
        assert!(matches!(
            evs[0],
            MemEvent::Request {
                op: BusOp::Rd,
                ifetch: true,
                ..
            }
        ));
        assert_eq!(core.hot.committed, 0);
    }

    /// Satisfies the initial I-fetch miss so issue can begin.
    fn prime_icache(core: &mut CmpCore, inbox: &mut Inbox<MemEvent>) {
        let (_, evs) = tick_at(core, inbox, 0);
        let MemEvent::Request { req, line, .. } = evs[0] else {
            panic!("expected ifetch request");
        };
        inbox.deliver(Timestamped::new(
            Cycle::new(1),
            MemEvent::Reply {
                req,
                line,
                grant: MesiState::Shared,
            },
        ));
    }

    #[test]
    fn alu_stream_reaches_ipc_limit() {
        let mut core = core_with(vec![Op::IntAlu]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        for t in 1..200 {
            tick_at(&mut core, &mut inbox, t);
        }
        // 4-wide issue of 1-cycle ops: IPC must approach 4.
        let ipc = core.hot.committed as f64 / 200.0;
        assert!(ipc > 3.0, "IPC {ipc} too low for an ALU-only stream");
    }

    #[test]
    fn load_miss_allocates_mshr_and_requests_rd() {
        let mut core = core_with(vec![Op::Load { addr: 0x8000 }, Op::IntAlu]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        let (_, evs) = tick_at(&mut core, &mut inbox, 1);
        let rd: Vec<_> = evs
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    MemEvent::Request {
                        op: BusOp::Rd,
                        ifetch: false,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(rd.len(), 1, "one Rd for the load miss, got {evs:?}");
        assert_eq!(core.l1d_misses, 1);
    }

    #[test]
    fn load_reply_completes_and_line_hits_afterwards() {
        let mut core = core_with(vec![Op::Load { addr: 0x8000 }]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        let (_, evs) = tick_at(&mut core, &mut inbox, 1);
        let (req, line) = evs
            .iter()
            .find_map(|e| match e {
                MemEvent::Request {
                    req,
                    line,
                    ifetch: false,
                    ..
                } => Some((*req, *line)),
                _ => None,
            })
            .expect("load request");
        inbox.deliver(Timestamped::new(
            Cycle::new(10),
            MemEvent::Reply {
                req,
                line,
                grant: MesiState::Exclusive,
            },
        ));
        let before = core.hot.committed;
        for t in 2..40 {
            tick_at(&mut core, &mut inbox, t);
        }
        assert!(core.hot.committed > before);
        // Subsequent loads to the same line hit.
        assert!(core.l1d_hits > 0);
    }

    #[test]
    fn store_to_shared_line_upgrades() {
        let mut core = core_with(vec![Op::Store { addr: 0x8000 }]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        // Pre-install the line in S.
        core.l1d
            .fill(LineAddr::from_byte_addr(0x8000, 32), MesiState::Shared);
        let (_, evs) = tick_at(&mut core, &mut inbox, 1);
        assert!(
            evs.iter().any(|e| matches!(
                e,
                MemEvent::Request {
                    op: BusOp::Upgr,
                    ..
                }
            )),
            "store to S must issue BusUpgr, got {evs:?}"
        );
    }

    #[test]
    fn store_to_exclusive_line_hits_silently() {
        let mut core = core_with(vec![Op::Store { addr: 0x8000 }, Op::IntAlu]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        let line = LineAddr::from_byte_addr(0x8000, 32);
        core.l1d.fill(line, MesiState::Exclusive);
        let (_, evs) = tick_at(&mut core, &mut inbox, 1);
        assert!(
            !evs.iter().any(|e| e.uses_bus()),
            "store to E needs no bus transaction"
        );
        assert_eq!(core.l1d.peek(line), Some(MesiState::Modified));
    }

    #[test]
    fn invalidate_drops_the_line() {
        let mut core = core_with(vec![Op::IntAlu]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        let line = LineAddr::new(0x999);
        core.l1d.fill(line, MesiState::Modified);
        inbox.deliver(Timestamped::new(
            Cycle::new(1),
            MemEvent::Invalidate { line },
        ));
        tick_at(&mut core, &mut inbox, 1);
        assert_eq!(core.l1d.peek(line), None);
        assert_eq!(core.invalidations_received, 1);
    }

    #[test]
    fn downgrade_demotes_to_shared() {
        let mut core = core_with(vec![Op::IntAlu]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        let line = LineAddr::new(0x999);
        core.l1d.fill(line, MesiState::Modified);
        inbox.deliver(Timestamped::new(
            Cycle::new(1),
            MemEvent::Downgrade { line },
        ));
        tick_at(&mut core, &mut inbox, 1);
        assert_eq!(core.l1d.peek(line), Some(MesiState::Shared));
    }

    #[test]
    fn barrier_drains_window_then_spins() {
        let mut core = core_with(vec![Op::IntAlu, Op::Barrier { id: 0 }, Op::IntAlu]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        let mut arrive = None;
        for t in 1..20 {
            let (_, evs) = tick_at(&mut core, &mut inbox, t);
            if let Some(MemEvent::BarrierArrive { id }) = evs
                .iter()
                .find(|e| matches!(e, MemEvent::BarrierArrive { .. }))
            {
                arrive = Some((*id, t));
                break;
            }
        }
        let (id, t_arrive) = arrive.expect("barrier must be announced");
        // Spinning: no further commits.
        let before = core.hot.committed;
        for t in t_arrive + 1..t_arrive + 10 {
            tick_at(&mut core, &mut inbox, t);
        }
        assert_eq!(core.hot.committed, before);
        assert!(core.stall_sync > 0);
        // Release resumes issue.
        inbox.deliver(Timestamped::new(
            Cycle::new(t_arrive + 10),
            MemEvent::BarrierRelease { id },
        ));
        for t in t_arrive + 10..t_arrive + 30 {
            tick_at(&mut core, &mut inbox, t);
        }
        assert!(core.hot.committed > before);
    }

    #[test]
    fn lock_spins_until_granted() {
        let mut core = core_with(vec![
            Op::LockAcquire { id: 5 },
            Op::IntAlu,
            Op::LockRelease { id: 5 },
        ]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        let (_, evs) = tick_at(&mut core, &mut inbox, 1);
        assert!(evs
            .iter()
            .any(|e| matches!(e, MemEvent::LockAcquire { id: 5 })));
        let before = core.hot.committed;
        for t in 2..10 {
            tick_at(&mut core, &mut inbox, t);
        }
        assert_eq!(core.hot.committed, before, "spinning while lock is pending");
        inbox.deliver(Timestamped::new(
            Cycle::new(10),
            MemEvent::LockGranted { id: 5 },
        ));
        let mut released = false;
        for t in 10..40 {
            let (_, evs) = tick_at(&mut core, &mut inbox, t);
            released |= evs
                .iter()
                .any(|e| matches!(e, MemEvent::LockRelease { id: 5 }));
        }
        assert!(released, "release must follow the grant");
    }

    #[test]
    fn mispredict_stalls_the_front_end() {
        let mut core = core_with(vec![Op::Branch { mispredict: true }, Op::IntAlu]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        for t in 1..100 {
            tick_at(&mut core, &mut inbox, t);
        }
        assert!(core.mispredicts > 0);
        assert!(core.stall_fetch > 0);
        // Every other instruction mispredicts: IPC far below width.
        assert!((core.hot.committed as f64) < 100.0);
    }

    #[test]
    fn window_bounds_inflight_instructions() {
        // Loads to distinct lines that never get replies fill the MSHRs
        // and then stall; the window never exceeds its capacity.
        let ops: Vec<Op> = (0..128)
            .map(|i| Op::Load {
                addr: 0x10_000 + i * 4096,
            })
            .collect();
        let mut core = core_with(ops);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        for t in 1..200 {
            tick_at(&mut core, &mut inbox, t);
            assert!(core.window.len() <= core.cfg.window);
            assert!(core.mshrs.len() <= core.cfg.mshrs);
        }
        assert!(core.stall_mshr > 0);
    }

    #[test]
    fn load_coalesces_into_pending_miss() {
        // Body sized to the 4-wide issue so exactly one loop iteration
        // issues in the first cycle.
        let mut core = core_with(vec![
            Op::Load { addr: 0x8000 },
            Op::Load { addr: 0x8004 }, // same 32 B line
            Op::IntAlu,
            Op::IntAlu,
        ]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        let (_, evs) = tick_at(&mut core, &mut inbox, 1);
        let data_reqs = evs
            .iter()
            .filter(|e| matches!(e, MemEvent::Request { ifetch: false, .. }))
            .count();
        assert_eq!(data_reqs, 1, "both loads share one MSHR: {evs:?}");
        assert_eq!(core.mshrs.len(), 1);
        assert_eq!(core.mshrs[0].waiters.len(), 2);
    }

    #[test]
    fn dirty_eviction_emits_writeback() {
        let mut core = core_with(vec![Op::IntAlu]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        // Fill one L1 set (4 ways, 128 sets): same set = line % 128.
        for k in 0..4u64 {
            core.l1d.fill(LineAddr::new(k * 128), MesiState::Modified);
        }
        // A reply that fills the same set evicts a dirty victim.
        core.mshrs.push(Mshr {
            req: 77,
            line: LineAddr::new(4 * 128),
            op: BusOp::Rd,
            ifetch: false,
            waiters: Vec::new(),
        });
        inbox.deliver(Timestamped::new(
            Cycle::new(1),
            MemEvent::Reply {
                req: 77,
                line: LineAddr::new(4 * 128),
                grant: MesiState::Exclusive,
            },
        ));
        let (_, evs) = tick_at(&mut core, &mut inbox, 1);
        assert!(
            evs.iter().any(|e| matches!(e, MemEvent::Writeback { .. })),
            "dirty victim must be written back: {evs:?}"
        );
        assert_eq!(core.writebacks, 1);
    }

    #[test]
    fn counters_expose_all_statistics() {
        let mut core = core_with(vec![Op::IntAlu]);
        run_ticks(&mut core, 5);
        let c = CoreModel::counters(&core);
        assert_eq!(c.get("cycles"), 5);
        assert!(c.get("l1i_misses") > 0);
    }

    #[test]
    fn delta_capture_apply_matches_full_clone() {
        let mut live = core_with(vec![Op::IntAlu, Op::Load { addr: 0x8000 }]);
        let mut inbox = Inbox::new();
        prime_icache(&mut live, &mut inbox);
        for t in 1..10 {
            tick_at(&mut live, &mut inbox, t);
        }
        let mut snap = live.clone();
        let g0 = Checkpointable::generation(&live);
        // Seeding at the checkpoint generation captures nothing.
        let seed = live.capture_delta(g0);
        assert_eq!(seed.l1_dirty_sets(), 0);
        for t in 10..50 {
            tick_at(&mut live, &mut inbox, t);
        }
        let delta = live.capture_delta(g0);
        snap.apply_delta(delta);
        assert_eq!(CoreModel::counters(&snap), CoreModel::counters(&live));
        // The reconstructed core must also behave identically forward.
        let mut ia = Inbox::new();
        let mut ib = Inbox::new();
        for t in 50..80 {
            tick_at(&mut live, &mut ia, t);
            tick_at(&mut snap, &mut ib, t);
        }
        assert_eq!(CoreModel::counters(&snap), CoreModel::counters(&live));
    }

    #[test]
    fn delta_restore_rewinds_to_the_checkpoint() {
        let mut core = core_with(vec![Op::IntAlu, Op::Load { addr: 0x8000 }]);
        let mut inbox = Inbox::new();
        prime_icache(&mut core, &mut inbox);
        for t in 1..20 {
            tick_at(&mut core, &mut inbox, t);
        }
        let base = core.clone();
        let g0 = Checkpointable::generation(&core);
        let _ = core.capture_delta(g0);
        for t in 20..60 {
            tick_at(&mut core, &mut inbox, t);
        }
        core.restore_from(&base, g0);
        assert_eq!(CoreModel::counters(&core), CoreModel::counters(&base));
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let ops = vec![
            Op::IntAlu,
            Op::Load { addr: 0x8000 },
            Op::Branch { mispredict: true },
            Op::Store { addr: 0x8040 },
        ];
        let mut live = core_with(ops.clone());
        let mut inbox = Inbox::new();
        prime_icache(&mut live, &mut inbox);
        // Leave requests unserviced so MSHRs stay outstanding at the
        // snapshot point — the pipeline is mid-flight, not quiescent.
        for t in 1..40 {
            tick_at(&mut live, &mut inbox, t);
        }
        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();

        // Restore into a fresh core whose stream sits at position zero.
        let mut restored = core_with(ops);
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(CoreModel::counters(&restored), CoreModel::counters(&live));
        assert_eq!(restored.hot.fetched, live.hot.fetched);
        assert_eq!(restored.pending, live.pending);
        assert_eq!(restored.window, live.window);
        assert_eq!(restored.mshrs, live.mshrs);
        assert_eq!(restored.wait, live.wait);

        // Both copies must behave identically forward under the same
        // event sequence, including stream draws past the snapshot.
        let mut ia = Inbox::new();
        let mut ib = Inbox::new();
        for (pos, m) in live.mshrs.clone().into_iter().enumerate() {
            let reply = MemEvent::Reply {
                req: m.req,
                line: m.line,
                grant: MesiState::Exclusive,
            };
            let at = Cycle::new(41 + pos as u64);
            ia.deliver(Timestamped::new(at, reply.clone()));
            ib.deliver(Timestamped::new(at, reply));
        }
        for t in 40..160 {
            let (_, ea) = tick_at(&mut live, &mut ia, t);
            let (_, eb) = tick_at(&mut restored, &mut ib, t);
            assert_eq!(ea, eb, "divergent events at cycle {t}");
        }
        assert!(live.hot.committed > 0);
        assert_eq!(CoreModel::counters(&restored), CoreModel::counters(&live));
    }

    #[test]
    fn load_rejects_oversized_and_truncated_state() {
        let mut live = core_with(vec![Op::IntAlu]);
        run_ticks(&mut live, 10);
        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut truncated = core_with(vec![Op::IntAlu]);
        let mut r = ByteReader::new(&bytes[..bytes.len() / 2]);
        assert!(truncated.load_state(&mut r).is_err());

        // A window-count word larger than the configured window must be
        // rejected rather than allocated.
        let mut forged = ByteWriter::new();
        forged.u64(0); // fetched
        forged.bool(false); // pending
        forged.u32(u32::MAX); // window length
        let forged = forged.into_bytes();
        let mut target = core_with(vec![Op::IntAlu]);
        let mut r = ByteReader::new(&forged);
        assert!(matches!(
            target.load_state(&mut r),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn clone_is_deep() {
        let mut core = core_with(vec![Op::IntAlu]);
        let mut snap = core.clone();
        // Drive both copies through identical event sequences.
        let mut inbox_a = Inbox::new();
        prime_icache(&mut core, &mut inbox_a);
        for t in 1..50 {
            tick_at(&mut core, &mut inbox_a, t);
        }
        assert_eq!(snap.hot.committed, 0, "the clone did not advance");
        let mut inbox_b = Inbox::new();
        prime_icache(&mut snap, &mut inbox_b);
        for t in 1..50 {
            tick_at(&mut snap, &mut inbox_b, t);
        }
        assert_eq!(snap.hot.committed, core.hot.committed);
        assert_eq!(
            CoreModel::counters(&snap),
            CoreModel::counters(&core),
            "identical histories must give identical statistics"
        );
    }

    #[test]
    fn core_hot_soa_round_trips_against_live_cores() {
        // Three heterogeneous cores: plain ALU, a mispredicting branch
        // stream (nonzero front-end stall deadline), and unserviced loads
        // (occupied window) — every SoA column gets a distinct value.
        let mut cores = vec![
            core_with(vec![Op::IntAlu]),
            core_with(vec![Op::Branch { mispredict: true }, Op::IntAlu]),
            core_with(vec![Op::Load { addr: 0x8000 }, Op::Load { addr: 0x9000 }]),
        ];
        for (i, core) in cores.iter_mut().enumerate() {
            let mut inbox = Inbox::new();
            prime_icache(core, &mut inbox);
            // Different histories per core so the columns differ.
            for t in 1..(10 + 13 * i as u64) {
                tick_at(core, &mut inbox, t);
            }
        }
        assert!(cores[1].mispredicts > 0, "branch core must have stalled");
        assert!(!cores[2].window.is_empty(), "load core must hold entries");

        let soa = CoreHotSoA::gather(&cores);
        assert_eq!(soa.len(), 3);
        assert!(!soa.is_empty());
        for (i, core) in cores.iter().enumerate() {
            assert_eq!(soa.local_clock[i], core.hot.cycles);
            assert_eq!(soa.committed[i], core.hot.committed);
            assert_eq!(soa.window_len[i] as usize, core.window.len());
            assert_eq!(soa.next_fetch[i], core.hot.fetched);
            assert_eq!(
                soa.fetch_stall_until[i],
                core.hot.fetch_stall_until.as_u64()
            );
        }

        // Scatter writes every owned column back field-for-field; a
        // second gather reproduces the mutated arrays exactly.
        let mut mutated = soa.clone();
        for i in 0..mutated.len() {
            mutated.local_clock[i] += 7;
            mutated.committed[i] += 3;
            mutated.next_fetch[i] += 1;
            mutated.fetch_stall_until[i] += 5;
        }
        mutated.scatter_into(&mut cores);
        for (i, core) in cores.iter().enumerate() {
            assert_eq!(core.hot.cycles, mutated.local_clock[i]);
            assert_eq!(core.hot.committed, mutated.committed[i]);
            assert_eq!(core.hot.fetched, mutated.next_fetch[i]);
            assert_eq!(
                core.hot.fetch_stall_until.as_u64(),
                mutated.fetch_stall_until[i]
            );
        }
        assert_eq!(CoreHotSoA::gather(&cores), mutated);
    }

    #[test]
    fn core_hot_soa_survives_delta_and_byte_persistence() {
        // The hot/cold split must be invisible to both checkpoint paths:
        // a delta-reconstructed clone and a byte-round-tripped core
        // project to the same SoA columns as the live core.
        let ops = vec![
            Op::IntAlu,
            Op::Load { addr: 0x8000 },
            Op::Branch { mispredict: true },
        ];
        let mut live = core_with(ops.clone());
        let mut inbox = Inbox::new();
        prime_icache(&mut live, &mut inbox);
        for t in 1..15 {
            tick_at(&mut live, &mut inbox, t);
        }
        let mut snap = live.clone();
        let g0 = Checkpointable::generation(&live);
        let _ = live.capture_delta(g0);
        for t in 15..60 {
            tick_at(&mut live, &mut inbox, t);
        }
        snap.apply_delta(live.capture_delta(g0));

        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = core_with(ops);
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).unwrap();

        let expect = CoreHotSoA::gather(std::slice::from_ref(&live));
        assert_eq!(CoreHotSoA::gather(std::slice::from_ref(&snap)), expect);
        assert_eq!(CoreHotSoA::gather(std::slice::from_ref(&restored)), expect);
        assert!(expect.committed[0] > 0, "the run actually progressed");
    }

    /// Drives two clones of the same core through `windows` quanta — one
    /// via the plain tick loop, one via [`CoreModel::run_window`] — with
    /// boundary-serviced replies, asserting bit-identical staged events
    /// and hot state after every window. Returns the tick-loop core for
    /// extra assertions.
    fn assert_run_window_matches(ops: Vec<Op>, windows: u64, quantum: u64) -> CmpCore {
        let mut slow = core_with(ops);
        let mut fast = slow.clone();
        let mut inbox_slow = Inbox::new();
        let mut inbox_fast = Inbox::new();
        for w in 0..windows {
            let (from, to) = (w * quantum, (w + 1) * quantum);
            let mut staged_slow: Vec<Timestamped<MemEvent>> = Vec::new();
            for t in from..to {
                let mut ctx = TickCtx::new(Cycle::new(t), &mut inbox_slow, &mut staged_slow);
                let _ = slow.tick(&mut ctx);
            }
            let mut staged_fast = Vec::new();
            fast.run_window(
                Cycle::new(from),
                Cycle::new(to),
                &mut inbox_fast,
                &mut staged_fast,
            );
            let a: Vec<_> = staged_slow
                .iter()
                .map(|e| (e.ts, e.payload.clone()))
                .collect();
            let b: Vec<_> = staged_fast
                .iter()
                .map(|e| (e.ts, e.payload.clone()))
                .collect();
            assert_eq!(a, b, "window {w}: staged events diverged");
            assert_eq!(slow.hot, fast.hot, "window {w}: hot state diverged");
            // Boundary servicing, as the uncore would do it: grant every
            // request (slow replies keep windows/MSHRs occupied so the
            // stall fast paths get exercised), release barriers and
            // locks a while after arrival.
            for ev in staged_slow {
                let reply = match ev.payload {
                    MemEvent::Request { req, line, .. } => Some((
                        ev.ts + 23,
                        MemEvent::Reply {
                            req,
                            line,
                            grant: MesiState::Exclusive,
                        },
                    )),
                    MemEvent::BarrierArrive { id } => {
                        Some((ev.ts + 40, MemEvent::BarrierRelease { id }))
                    }
                    MemEvent::LockAcquire { id } => {
                        Some((ev.ts + 15, MemEvent::LockGranted { id }))
                    }
                    _ => None,
                };
                if let Some((at, reply)) = reply {
                    inbox_slow.deliver(Timestamped::new(at, reply.clone()));
                    inbox_fast.deliver(Timestamped::new(at, reply));
                }
            }
        }
        assert_eq!(
            CoreModel::counters(&slow),
            CoreModel::counters(&fast),
            "final statistics diverged"
        );
        slow
    }

    #[test]
    fn run_window_matches_the_tick_loop_on_a_mixed_stream() {
        let core = assert_run_window_matches(
            vec![
                Op::IntAlu,
                Op::Load { addr: 0x8000 },
                Op::Branch { mispredict: true },
                Op::Store { addr: 0x9000 },
                Op::IntAlu,
                Op::Load { addr: 0xA040 },
            ],
            8,
            50,
        );
        assert!(core.hot.committed > 0);
        assert!(core.stall_fetch > 0, "mispredicts exercised the fetch skip");
    }

    #[test]
    fn run_window_fast_forwards_sync_spins_identically() {
        let core =
            assert_run_window_matches(vec![Op::IntAlu, Op::Barrier { id: 0 }, Op::IntAlu], 8, 50);
        assert!(core.stall_sync > 0, "barrier spins exercised the sync skip");
        assert!(core.hot.committed > 0);
    }

    #[test]
    fn run_window_fast_forwards_full_windows_identically() {
        // Distinct-line loads with slow (boundary + 23 cycle) replies
        // keep the instruction window saturated behind pending misses.
        let core = assert_run_window_matches(
            vec![
                Op::Load { addr: 0x8000 },
                Op::Load { addr: 0x8040 },
                Op::Load { addr: 0x8080 },
                Op::Load { addr: 0x80C0 },
                Op::Load { addr: 0x8100 },
                Op::Load { addr: 0x8140 },
            ],
            8,
            50,
        );
        assert!(
            core.stall_window > 0,
            "full windows exercised the window skip"
        );
    }
}
