//! Benchmark selection and per-thread workload parameters.
//!
//! The paper evaluates four SPLASH-2 programs (Table 1): *Barnes* (1024
//! bodies), *FFT* (64 K points), *LU* (256×256 matrix) and
//! *Water-Nsquared* (216 molecules), each running eight workload threads.
//! We substitute deterministic synthetic generators that reproduce each
//! program's shared-memory *timing signature* — see `DESIGN.md` §4 for the
//! substitution argument.

use std::fmt;

use slacksim_cmp::directory::MAX_DIRECTORY_CORES;
use slacksim_cmp::isa::InstrStream;

use crate::barnes::BarnesStream;
use crate::fft::FftStream;
use crate::lu::LuStream;
use crate::water::WaterStream;

/// The four benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Barnes-Hut N-body: irregular pointer-chasing over a shared octree
    /// with per-cell locks. Highest violation density in the paper.
    Barnes,
    /// Radix-√N FFT: streaming compute phases separated by all-to-all
    /// transpose phases between barriers.
    Fft,
    /// Blocked dense LU: owner-computes updates with per-step barriers and
    /// read-shared pivot blocks. Lowest violation density in the paper.
    Lu,
    /// Water-Nsquared: O(n²) pairwise interactions with per-molecule locks
    /// and floating-point-heavy inner loops.
    WaterNsquared,
}

impl Benchmark {
    /// All benchmarks, in the paper's table order.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Barnes,
        Benchmark::Fft,
        Benchmark::Lu,
        Benchmark::WaterNsquared,
    ];

    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Barnes => "Barnes",
            Benchmark::Fft => "FFT",
            Benchmark::Lu => "LU",
            Benchmark::WaterNsquared => "Water-Nsq",
        }
    }

    /// The paper's input-set description (Table 1).
    pub fn input_set(self) -> &'static str {
        match self {
            Benchmark::Barnes => "1024 bodies",
            Benchmark::Fft => "64K points",
            Benchmark::Lu => "256 x 256 matrix",
            Benchmark::WaterNsquared => "216 molecules",
        }
    }

    /// Parses a benchmark from its (case-insensitive) name.
    ///
    /// # Examples
    ///
    /// ```
    /// use slacksim_workloads::Benchmark;
    ///
    /// assert_eq!(Benchmark::parse("fft"), Some(Benchmark::Fft));
    /// assert_eq!(Benchmark::parse("water-nsq"), Some(Benchmark::WaterNsquared));
    /// assert_eq!(Benchmark::parse("dhrystone"), None);
    /// ```
    pub fn parse(name: &str) -> Option<Benchmark> {
        match name.to_ascii_lowercase().as_str() {
            "barnes" => Some(Benchmark::Barnes),
            "fft" => Some(Benchmark::Fft),
            "lu" => Some(Benchmark::Lu),
            "water" | "water-nsq" | "water-nsquared" => Some(Benchmark::WaterNsquared),
            _ => None,
        }
    }

    /// Builds the instruction stream for one workload thread.
    ///
    /// Streams are deterministic in `(benchmark, thread_id, n_threads,
    /// seed)` and infinite. All threads of one run must use the same
    /// `n_threads` and `seed` so that their barrier schedules align.
    ///
    /// # Panics
    ///
    /// Panics if `thread_id >= n_threads` or `n_threads` is 0 or exceeds
    /// the largest supported target (1024, the directory uncore's core
    /// ceiling). The address-space layout ([`crate::mix`]) spaces
    /// per-thread regions 16 MiB apart, which keeps every thread's
    /// private and exported regions disjoint through thread 1023.
    pub fn stream(self, params: &WorkloadParams) -> Box<dyn InstrStream> {
        params.validate();
        match self {
            Benchmark::Barnes => Box::new(BarnesStream::new(params)),
            Benchmark::Fft => Box::new(FftStream::new(params)),
            Benchmark::Lu => Box::new(LuStream::new(params)),
            Benchmark::WaterNsquared => Box::new(WaterStream::new(params)),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identity of one workload thread within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// This thread's index (0-based).
    pub thread_id: usize,
    /// Total workload threads (the paper uses 8).
    pub n_threads: usize,
    /// Run seed; all threads of one run share it.
    pub seed: u64,
}

impl WorkloadParams {
    /// Creates parameters for one thread of an `n_threads`-way run.
    pub fn new(thread_id: usize, n_threads: usize, seed: u64) -> Self {
        let p = WorkloadParams {
            thread_id,
            n_threads,
            seed,
        };
        p.validate();
        p
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.n_threads >= 1 && self.n_threads <= MAX_DIRECTORY_CORES,
            "thread count must be between 1 and {MAX_DIRECTORY_CORES}"
        );
        assert!(
            self.thread_id < self.n_threads,
            "thread id {} out of range for {} threads",
            self.thread_id,
            self.n_threads
        );
    }

    /// A per-thread RNG seed that differs across threads and benchmarks.
    pub(crate) fn thread_seed(&self, salt: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.thread_id as u64)
            .wrapping_add(salt << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_inputs_match_table_1() {
        assert_eq!(Benchmark::Barnes.input_set(), "1024 bodies");
        assert_eq!(Benchmark::Fft.input_set(), "64K points");
        assert_eq!(Benchmark::Lu.input_set(), "256 x 256 matrix");
        assert_eq!(Benchmark::WaterNsquared.input_set(), "216 molecules");
        assert_eq!(Benchmark::ALL.len(), 4);
    }

    #[test]
    fn parse_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::parse(b.name()), Some(b));
        }
        assert_eq!(Benchmark::parse("FFT"), Some(Benchmark::Fft));
        assert_eq!(Benchmark::parse(""), None);
    }

    #[test]
    fn display_is_name() {
        assert_eq!(Benchmark::Lu.to_string(), "LU");
    }

    #[test]
    fn thread_seeds_differ() {
        let a = WorkloadParams::new(0, 8, 42).thread_seed(1);
        let b = WorkloadParams::new(1, 8, 42).thread_seed(1);
        let c = WorkloadParams::new(0, 8, 42).thread_seed(2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_thread_id_rejected() {
        WorkloadParams::new(8, 8, 1);
    }

    #[test]
    #[should_panic(expected = "between 1 and 1024")]
    fn zero_threads_rejected() {
        WorkloadParams::new(0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "between 1 and 1024")]
    fn oversized_thread_count_rejected() {
        WorkloadParams::new(0, 2048, 1);
    }

    #[test]
    fn directory_scale_thread_counts_build_streams() {
        for b in Benchmark::ALL {
            let mut s = b.stream(&WorkloadParams::new(63, 64, 7));
            for _ in 0..100 {
                let _ = s.next_instr();
            }
        }
    }

    #[test]
    fn every_benchmark_builds_streams() {
        for b in Benchmark::ALL {
            let mut s = b.stream(&WorkloadParams::new(0, 8, 7));
            for _ in 0..100 {
                let _ = s.next_instr();
            }
        }
    }
}
