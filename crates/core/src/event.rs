//! Event plumbing between core threads and the simulation manager.
//!
//! SlackSim's communication structure (paper §2) uses, per core thread, an
//! outgoing event queue (*OutQ*) and an incoming event queue (*InQ*), plus a
//! single global queue (*GQ*) in the manager that consolidates all OutQ
//! entries. Every entry carries a timestamp: the local time at which the
//! event should take effect.
//!
//! This module provides the generic, payload-agnostic versions of those
//! structures: [`Timestamped`], the manager-side [`GlobalQueue`] and the
//! core-side [`Inbox`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::Cycle;

/// Identifier of a simulated target core (0-based, dense).
///
/// # Examples
///
/// ```
/// use slacksim_core::event::CoreId;
///
/// let c = CoreId::new(3);
/// assert_eq!(c.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core id from a dense index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        CoreId(index)
    }

    /// Returns the dense index of this core.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `n` core ids.
    pub fn all(n: usize) -> impl Iterator<Item = CoreId> {
        (0..n as u16).map(CoreId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// An event payload tagged with the simulated time at which it takes effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timestamped<E> {
    /// Simulated time at which the event takes effect (the sender's local
    /// time when it was produced, or the manager-computed completion time).
    pub ts: Cycle,
    /// The model-specific payload.
    pub payload: E,
}

impl<E> Timestamped<E> {
    /// Tags `payload` with timestamp `ts`.
    pub const fn new(ts: Cycle, payload: E) -> Self {
        Timestamped { ts, payload }
    }
}

/// An entry in the manager's global queue: an event plus its originating
/// core and a monotonically increasing arrival sequence number used for
/// deterministic tie-breaking.
#[derive(Debug, Clone)]
struct GlobalEntry<E> {
    ts: Cycle,
    from: CoreId,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for GlobalEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.from == other.from && self.seq == other.seq
    }
}
impl<E> Eq for GlobalEntry<E> {}

impl<E> Ord for GlobalEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-ordering.
        // Order: earliest timestamp first; ties by core id (fixed bus
        // arbitration priority), then by arrival sequence.
        other
            .ts
            .cmp(&self.ts)
            .then_with(|| other.from.cmp(&self.from))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for GlobalEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The manager's global event queue (*GQ*).
///
/// Events are pushed in *arrival order* (whenever the manager fetches them
/// from a core's OutQ) and popped in timestamp order **among those currently
/// queued**. This is the crucial slack-simulation property: a straggling
/// event with a small timestamp that arrives *after* a larger-timestamped
/// event has already been serviced is exactly what the violation monitors
/// detect.
///
/// # Examples
///
/// ```
/// use slacksim_core::event::{CoreId, GlobalQueue, Timestamped};
/// use slacksim_core::time::Cycle;
///
/// let mut gq: GlobalQueue<&str> = GlobalQueue::new();
/// gq.push(CoreId::new(1), Timestamped::new(Cycle::new(5), "b"));
/// gq.push(CoreId::new(0), Timestamped::new(Cycle::new(5), "a"));
/// // Equal timestamps: lower core id wins (fixed arbitration priority).
/// let (from, ev) = gq.pop().unwrap();
/// assert_eq!(from, CoreId::new(0));
/// assert_eq!(ev.payload, "a");
/// ```
#[derive(Debug, Clone)]
pub struct GlobalQueue<E> {
    heap: BinaryHeap<GlobalEntry<E>>,
    next_seq: u64,
}

impl<E> GlobalQueue<E> {
    /// Creates an empty global queue.
    pub fn new() -> Self {
        GlobalQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Inserts an event that just arrived from `from`'s OutQ.
    pub fn push(&mut self, from: CoreId, ev: Timestamped<E>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(GlobalEntry {
            ts: ev.ts,
            from,
            seq,
            payload: ev.payload,
        });
    }

    /// Inserts a whole batch of events that arrived from `from`'s OutQ,
    /// draining `evs`. Arrival sequence numbers are assigned in vector
    /// order, so the FIFO tie-break is identical to pushing one by one,
    /// but the heap reallocation/reserve cost is paid once per batch.
    pub fn push_batch(&mut self, from: CoreId, evs: &mut Vec<Timestamped<E>>) {
        self.heap.reserve(evs.len());
        for ev in evs.drain(..) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(GlobalEntry {
                ts: ev.ts,
                from,
                seq,
                payload: ev.payload,
            });
        }
    }

    /// Removes and returns the earliest queued event, if any.
    pub fn pop(&mut self) -> Option<(CoreId, Timestamped<E>)> {
        self.heap
            .pop()
            .map(|e| (e.from, Timestamped::new(e.ts, e.payload)))
    }

    /// Borrows the earliest queued event without removing it: the
    /// inspection half of the pop/reinsert fast path. Callers that would
    /// pop, look, and push back when the event is not yet serviceable can
    /// peek instead and skip both heap sifts.
    pub fn peek_min(&self) -> Option<(CoreId, Cycle, &E)> {
        self.heap.peek().map(|e| (e.from, e.ts, &e.payload))
    }

    /// Replaces the earliest queued event with a new arrival from `from`
    /// in a single sift, returning the displaced minimum — one heap
    /// operation instead of the pop-then-push two. Falls back to a plain
    /// push (returning `None`) when the queue is empty. The new event is
    /// assigned the next arrival sequence number, exactly as
    /// [`push`](GlobalQueue::push) would.
    pub fn replace_min(
        &mut self,
        from: CoreId,
        ev: Timestamped<E>,
    ) -> Option<(CoreId, Timestamped<E>)> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = GlobalEntry {
            ts: ev.ts,
            from,
            seq,
            payload: ev.payload,
        };
        if let Some(mut top) = self.heap.peek_mut() {
            let old = std::mem::replace(&mut *top, entry);
            return Some((old.from, Timestamped::new(old.ts, old.payload)));
        }
        self.heap.push(entry);
        None
    }

    /// Returns the timestamp of the earliest queued event without removing
    /// it.
    pub fn peek_ts(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.ts)
    }

    /// Returns the number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all queued events (used on rollback).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for GlobalQueue<E> {
    fn default() -> Self {
        GlobalQueue::new()
    }
}

/// A core thread's incoming event queue (*InQ*).
///
/// The manager delivers completion events here; the core consumes, at each
/// tick, every event whose timestamp is less than or equal to its local
/// time. An event whose timestamp has already passed (because the core ran
/// ahead under slack) is delivered immediately at the current local time —
/// this is the *simulated time distortion* the paper discusses.
#[derive(Debug, Clone)]
pub struct Inbox<E> {
    heap: BinaryHeap<InboxEntry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct InboxEntry<E> {
    ts: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for InboxEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.seq == other.seq
    }
}
impl<E> Eq for InboxEntry<E> {}
impl<E> Ord for InboxEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .ts
            .cmp(&self.ts)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for InboxEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Inbox<E> {
    /// Creates an empty inbox.
    pub fn new() -> Self {
        Inbox {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Delivers an event from the manager.
    pub fn deliver(&mut self, ev: Timestamped<E>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(InboxEntry {
            ts: ev.ts,
            seq,
            payload: ev.payload,
        });
    }

    /// Removes and returns the next event due at or before `now`, in
    /// timestamp order (ties in delivery order).
    pub fn pop_due(&mut self, now: Cycle) -> Option<Timestamped<E>> {
        match self.heap.peek() {
            Some(e) if e.ts <= now => {
                let e = self.heap.pop().expect("peeked entry exists");
                Some(Timestamped::new(e.ts, e.payload))
            }
            _ => None,
        }
    }

    /// Returns the timestamp of the earliest pending event without
    /// removing it (the batched engine's fast-forward guard).
    pub fn peek_ts(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.ts)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (used on rollback).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// All pending events in pop order (timestamp, then delivery order),
    /// without disturbing the inbox (persistence).
    ///
    /// Re-delivering the returned events one by one into a fresh inbox
    /// reproduces the exact pop order: fresh sequence numbers `0..n`
    /// assigned in this order preserve the original tie-breaks.
    pub fn sorted_events(&self) -> Vec<Timestamped<E>>
    where
        E: Clone,
    {
        let mut heap = self.heap.clone();
        let mut out = Vec::with_capacity(heap.len());
        while let Some(e) = heap.pop() {
            out.push(Timestamped::new(e.ts, e.payload));
        }
        out
    }
}

impl<E> Default for Inbox<E> {
    fn default() -> Self {
        Inbox::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Cycle {
        Cycle::new(t)
    }

    #[test]
    fn core_id_roundtrip() {
        let ids: Vec<_> = CoreId::all(3).collect();
        assert_eq!(ids, vec![CoreId::new(0), CoreId::new(1), CoreId::new(2)]);
        assert_eq!(format!("{}", CoreId::new(5)), "core5");
    }

    #[test]
    fn global_queue_orders_by_timestamp() {
        let mut gq = GlobalQueue::new();
        gq.push(CoreId::new(0), Timestamped::new(ts(9), 'c'));
        gq.push(CoreId::new(1), Timestamped::new(ts(3), 'a'));
        gq.push(CoreId::new(2), Timestamped::new(ts(7), 'b'));
        let order: Vec<char> = std::iter::from_fn(|| gq.pop().map(|(_, e)| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn global_queue_ties_break_by_core_then_arrival() {
        let mut gq = GlobalQueue::new();
        gq.push(CoreId::new(3), Timestamped::new(ts(5), 'x'));
        gq.push(CoreId::new(1), Timestamped::new(ts(5), 'y'));
        gq.push(CoreId::new(1), Timestamped::new(ts(5), 'z'));
        let order: Vec<(CoreId, char)> =
            std::iter::from_fn(|| gq.pop().map(|(c, e)| (c, e.payload))).collect();
        assert_eq!(
            order,
            vec![
                (CoreId::new(1), 'y'),
                (CoreId::new(1), 'z'),
                (CoreId::new(3), 'x')
            ]
        );
    }

    #[test]
    fn global_queue_push_batch_matches_sequential_pushes() {
        let mut one_by_one = GlobalQueue::new();
        let mut batched = GlobalQueue::new();
        let evs = vec![
            Timestamped::new(ts(5), 'a'),
            Timestamped::new(ts(5), 'b'),
            Timestamped::new(ts(2), 'c'),
        ];
        for ev in &evs {
            one_by_one.push(CoreId::new(1), ev.clone());
        }
        batched.push_batch(CoreId::new(1), &mut evs.clone());
        loop {
            let a = one_by_one.pop();
            let b = batched.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn global_queue_peek_len_clear() {
        let mut gq = GlobalQueue::new();
        assert!(gq.is_empty());
        assert_eq!(gq.peek_ts(), None);
        gq.push(CoreId::new(0), Timestamped::new(ts(4), ()));
        gq.push(CoreId::new(0), Timestamped::new(ts(2), ()));
        assert_eq!(gq.peek_ts(), Some(ts(2)));
        assert_eq!(gq.len(), 2);
        gq.clear();
        assert!(gq.is_empty());
    }

    #[test]
    fn global_queue_peek_min_borrows_the_head() {
        let mut gq = GlobalQueue::new();
        assert!(gq.peek_min().is_none());
        gq.push(CoreId::new(2), Timestamped::new(ts(9), 'b'));
        gq.push(CoreId::new(1), Timestamped::new(ts(4), 'a'));
        assert_eq!(gq.peek_min(), Some((CoreId::new(1), ts(4), &'a')));
        // Peeking does not disturb the queue.
        assert_eq!(gq.len(), 2);
        assert_eq!(gq.pop().unwrap().1.payload, 'a');
    }

    #[test]
    fn replace_min_matches_pop_then_push() {
        // The single-sift fast path must be observationally identical to
        // the two-operation sequence it replaces.
        let mut fast = GlobalQueue::new();
        let mut slow = GlobalQueue::new();
        for (core, t, p) in [(2u16, 9, 'a'), (0, 3, 'b'), (1, 3, 'c')] {
            fast.push(CoreId::new(core), Timestamped::new(ts(t), p));
            slow.push(CoreId::new(core), Timestamped::new(ts(t), p));
        }
        let incoming = Timestamped::new(ts(6), 'd');
        let got = fast.replace_min(CoreId::new(3), incoming.clone());
        let want = slow.pop();
        slow.push(CoreId::new(3), incoming);
        assert_eq!(got, want);
        loop {
            let a = fast.pop();
            let b = slow.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn replace_min_on_empty_queue_pushes() {
        let mut gq = GlobalQueue::new();
        assert_eq!(
            gq.replace_min(CoreId::new(0), Timestamped::new(ts(5), 'x')),
            None
        );
        assert_eq!(gq.len(), 1);
        let (from, ev) = gq.pop().unwrap();
        assert_eq!(from, CoreId::new(0));
        assert_eq!(ev.payload, 'x');
    }

    #[test]
    fn inbox_peek_ts_reports_the_earliest_pending() {
        let mut inbox = Inbox::new();
        assert_eq!(inbox.peek_ts(), None);
        inbox.deliver(Timestamped::new(ts(8), 'a'));
        inbox.deliver(Timestamped::new(ts(3), 'b'));
        assert_eq!(inbox.peek_ts(), Some(ts(3)));
        assert_eq!(inbox.len(), 2, "peeking must not consume");
    }

    #[test]
    fn inbox_releases_only_due_events() {
        let mut inbox = Inbox::new();
        inbox.deliver(Timestamped::new(ts(10), 'a'));
        inbox.deliver(Timestamped::new(ts(5), 'b'));
        assert!(inbox.pop_due(ts(4)).is_none());
        assert_eq!(inbox.pop_due(ts(5)).unwrap().payload, 'b');
        assert!(inbox.pop_due(ts(9)).is_none());
        assert_eq!(inbox.pop_due(ts(20)).unwrap().payload, 'a');
        assert!(inbox.is_empty());
    }

    #[test]
    fn inbox_preserves_delivery_order_on_ties() {
        let mut inbox = Inbox::new();
        inbox.deliver(Timestamped::new(ts(5), 1));
        inbox.deliver(Timestamped::new(ts(5), 2));
        inbox.deliver(Timestamped::new(ts(5), 3));
        let order: Vec<i32> =
            std::iter::from_fn(|| inbox.pop_due(ts(5)).map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn inbox_past_due_events_still_pop() {
        // A response whose timestamp has already passed (core ran ahead)
        // must still be deliverable.
        let mut inbox = Inbox::new();
        inbox.deliver(Timestamped::new(ts(3), 'x'));
        assert_eq!(inbox.pop_due(ts(100)).unwrap().ts, ts(3));
    }
}
