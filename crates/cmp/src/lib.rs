//! # slacksim-cmp — the target CMP substrate
//!
//! The simulated hardware of *"Adaptive and Speculative Slack Simulations
//! of CMPs on CMPs"* (Chen et al., MoBS 2010, §2.1): an 8-core chip
//! multiprocessor with
//!
//! * 4-wide out-of-order cores holding up to 64 in-flight instructions
//!   ([`core::CmpCore`]);
//! * lock-up-free 16 KB L1 I/D caches kept coherent by a MESI protocol
//!   ([`cache`], [`mesi`]);
//! * a split request/response snooping bus with single-cycle arbitration
//!   conflicts ([`bus`]);
//! * a shared 256 KB L2 with 8-cycle hits and 100-cycle misses ([`l2`]);
//! * the manager-side global cache-status map with per-entry violation
//!   monitors ([`map`]);
//! * a simulated synchronisation device executing barriers and locks
//!   reliably inside the simulator ([`sync`]).
//!
//! The substrate plugs into the `slacksim-core` kernel through
//! [`core::CmpCore`] (a [`slacksim_core::engine::CoreModel`]) and
//! [`uncore::CmpUncore`] (a [`slacksim_core::engine::UncoreModel`]);
//! workload generators feed cores through the [`isa::InstrStream`] trait.
//!
//! ## Example
//!
//! ```
//! use slacksim_cmp::config::CmpConfig;
//! use slacksim_cmp::core::CmpCore;
//! use slacksim_cmp::isa::{LoopStream, Op};
//! use slacksim_cmp::uncore::CmpUncore;
//! use slacksim_core::engine::{EngineConfig, SequentialEngine};
//! use slacksim_core::scheme::Scheme;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cmp = CmpConfig::with_cores(2);
//! let cores = CmpCore::build_cmp(&cmp, |i| {
//!     Box::new(LoopStream::new(vec![
//!         Op::IntAlu,
//!         Op::Load { addr: 0x1_0000 + i as u64 * 0x100 },
//!     ]))
//! });
//! let uncore = CmpUncore::new(&cmp);
//! let cfg = EngineConfig::new(Scheme::CycleByCycle, 5_000);
//! let report = SequentialEngine::new(cores, uncore, cfg).run()?;
//! assert_eq!(report.violations.total(), 0); // gold standard
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bus;
pub mod cache;
pub mod config;
pub mod core;
pub mod directory;
pub mod event;
pub mod isa;
pub mod l2;
pub mod map;
pub mod mesi;
pub mod sharers;
pub mod sync;
pub mod uncore;

pub use crate::core::CmpCore;
pub use cache::{CacheConfig, LineAddr};
pub use config::{CmpConfig, CoreConfig, UncoreConfig, UncoreKind};
pub use event::MemEvent;
pub use isa::{Instr, InstrStream, Op};
pub use mesi::{BusOp, MesiState};
pub use uncore::CmpUncore;
