//! Simple synthetic streams for tests, calibration and ablations: not
//! benchmark substitutes, but controlled traffic generators whose single
//! knob isolates one behaviour (miss rate, sharing degree, sync rate).

use slacksim_cmp::isa::{Instr, InstrStream, Op};
use slacksim_core::rng::Xoshiro256;

use crate::mix::{CodeWalker, FillerMix, Regions};
use crate::params::WorkloadParams;

/// A stream of uniform random loads over a shared region, interleaved
/// with ALU filler — the maximal-contention stressor.
///
/// # Examples
///
/// ```
/// use slacksim_workloads::synthetic::SharedHammer;
/// use slacksim_workloads::WorkloadParams;
/// use slacksim_cmp::isa::InstrStream;
///
/// let mut s = SharedHammer::new(&WorkloadParams::new(0, 4, 1), 64 * 1024, 4);
/// let _ = s.next_instr();
/// ```
#[derive(Debug, Clone)]
pub struct SharedHammer {
    rng: Xoshiro256,
    code: CodeWalker,
    region_bytes: u64,
    mem_period: u64,
    counter: u64,
    store_share: u64,
}

impl SharedHammer {
    /// Creates a hammer over `region_bytes` of shared memory issuing one
    /// memory access every `mem_period` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes < 64` or `mem_period == 0`.
    pub fn new(params: &WorkloadParams, region_bytes: u64, mem_period: u64) -> Self {
        assert!(region_bytes >= 64, "region too small");
        assert!(mem_period >= 1, "memory period must be at least 1");
        SharedHammer {
            rng: Xoshiro256::new(params.thread_seed(0x5A4)),
            code: CodeWalker::new(Regions::code(8), 512),
            region_bytes,
            mem_period,
            counter: 0,
            store_share: 4, // 1 store per 4 memory ops
        }
    }

    /// Sets the store share: one store per `n` memory accesses (`0`
    /// disables stores).
    #[must_use]
    pub fn with_store_share(mut self, n: u64) -> Self {
        self.store_share = n;
        self
    }
}

impl InstrStream for SharedHammer {
    fn next_instr(&mut self) -> Instr {
        let pc = self.code.pc();
        self.code.advance();
        self.counter += 1;
        let op = if self.counter.is_multiple_of(self.mem_period) {
            let addr = Regions::SHARED + self.rng.next_below(self.region_bytes / 8) * 8;
            if self.store_share > 0 && self.rng.chance(1, self.store_share) {
                Op::Store { addr }
            } else {
                Op::Load { addr }
            }
        } else {
            FillerMix::INT.draw(&mut self.rng)
        };
        Instr::new(op, pc)
    }

    fn clone_box(&self) -> Box<dyn InstrStream> {
        Box::new(self.clone())
    }
}

/// A fully private streaming workload: no shared traffic at all. Useful
/// as the zero-contention baseline (violations can still occur on the
/// bus through L2 traffic, but never through data sharing).
#[derive(Debug, Clone)]
pub struct PrivateStream {
    rng: Xoshiro256,
    code: CodeWalker,
    base: u64,
    cursor: u64,
    region_bytes: u64,
    mem_period: u64,
    counter: u64,
}

impl PrivateStream {
    /// Creates a streaming walker over `region_bytes` of this thread's
    /// private region.
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes < 64` or `mem_period == 0`.
    pub fn new(params: &WorkloadParams, region_bytes: u64, mem_period: u64) -> Self {
        assert!(region_bytes >= 64, "region too small");
        assert!(mem_period >= 1, "memory period must be at least 1");
        PrivateStream {
            rng: Xoshiro256::new(params.thread_seed(0x5A5)),
            code: CodeWalker::new(Regions::code(9), 512),
            base: Regions::new(params.thread_id).private(),
            cursor: 0,
            region_bytes,
            mem_period,
            counter: 0,
        }
    }
}

impl InstrStream for PrivateStream {
    fn next_instr(&mut self) -> Instr {
        let pc = self.code.pc();
        self.code.advance();
        self.counter += 1;
        let op = if self.counter.is_multiple_of(self.mem_period) {
            let addr = self.base + self.cursor;
            self.cursor = (self.cursor + 8) % self.region_bytes;
            if self.counter.is_multiple_of(self.mem_period * 3) {
                Op::Store { addr }
            } else {
                Op::Load { addr }
            }
        } else {
            FillerMix::INT.draw(&mut self.rng)
        };
        Instr::new(op, pc)
    }

    fn clone_box(&self) -> Box<dyn InstrStream> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_testkit::{determinism_check, op_census};

    #[test]
    fn hammer_hits_shared_region_at_configured_rate() {
        let mut s = SharedHammer::new(&WorkloadParams::new(0, 4, 9), 4096, 4);
        let census = op_census(&mut s, 40_000);
        let mem = census.loads + census.stores;
        let frac = mem as f64 / 40_000.0;
        assert!((0.2..0.3).contains(&frac), "memory fraction {frac}");
        assert_eq!(census.barriers, 0);
        assert_eq!(census.locks, 0);
    }

    #[test]
    fn hammer_without_stores() {
        let mut s = SharedHammer::new(&WorkloadParams::new(0, 4, 9), 4096, 2).with_store_share(0);
        let census = op_census(&mut s, 10_000);
        assert_eq!(census.stores, 0);
        assert!(census.loads > 4_000);
    }

    #[test]
    fn private_stream_stays_private() {
        let params = WorkloadParams::new(2, 4, 9);
        let base = Regions::new(2).private();
        let mut s = PrivateStream::new(&params, 8192, 3);
        for _ in 0..20_000 {
            match s.next_instr().op {
                Op::Load { addr } | Op::Store { addr } => {
                    assert!((base..base + 0x0100_0000).contains(&addr));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn synthetic_streams_are_deterministic() {
        determinism_check(|| Box::new(SharedHammer::new(&WorkloadParams::new(1, 4, 5), 4096, 3)));
        determinism_check(|| Box::new(PrivateStream::new(&WorkloadParams::new(1, 4, 5), 4096, 3)));
    }

    #[test]
    #[should_panic(expected = "region too small")]
    fn tiny_region_rejected() {
        let _ = SharedHammer::new(&WorkloadParams::new(0, 1, 1), 32, 1);
    }
}
