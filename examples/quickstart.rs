//! Quickstart: simulate the paper's 8-core CMP running the synthetic FFT
//! workload under three slack schemes and compare accuracy and speed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use slacksim::scheme::Scheme;
use slacksim::{percent_error, Benchmark, EngineKind, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let commit = 300_000;

    // The gold standard: cycle-by-cycle simulation.
    let cc = Simulation::new(Benchmark::Fft)
        .commit_target(commit)
        .engine(EngineKind::Sequential)
        .run()?;
    println!("cycle-by-cycle (gold standard)");
    println!("  execution time : {} cycles", cc.global_cycles);
    println!("  CPI            : {:.3}", cc.cpi());
    println!(
        "  violations     : {} (always 0 by construction)",
        cc.violations.total()
    );
    println!(
        "  L2 miss ratio  : {:.1}%",
        100.0 * cc.uncore.get("l2_misses") as f64
            / (cc.uncore.get("l2_hits") + cc.uncore.get("l2_misses")).max(1) as f64
    );

    // Slack simulation: faster, slightly inaccurate.
    for (name, scheme) in [
        (
            "bounded slack (8 cycles)",
            Scheme::BoundedSlack { bound: 8 },
        ),
        ("unbounded slack", Scheme::UnboundedSlack),
    ] {
        let r = Simulation::new(Benchmark::Fft)
            .commit_target(commit)
            .scheme(scheme)
            .engine(EngineKind::Sequential)
            .run()?;
        println!("\n{name}");
        println!("  execution time : {} cycles", r.global_cycles);
        println!(
            "  error vs CC    : {:+.2}%",
            percent_error(r.global_cycles as f64, cc.global_cycles as f64)
        );
        println!(
            "  violations     : {} bus, {} map ({:.4}% of cycles)",
            r.violations.count(slacksim::ViolationKind::Bus),
            r.violations.count(slacksim::ViolationKind::Map),
            100.0 * r.violation_rate()
        );
    }

    // The same run on the threaded engine: one host thread per target
    // core, as SlackSim maps simulations onto a host CMP.
    let threaded = Simulation::new(Benchmark::Fft)
        .commit_target(commit)
        .scheme(Scheme::UnboundedSlack)
        .engine(EngineKind::Threaded)
        .run()?;
    println!("\nthreaded unbounded slack (1 host thread per target core)");
    println!("  wall clock     : {:?}", threaded.wall);
    println!(
        "  simulation rate: {:.0} kcycles/s",
        threaded.cycles_per_second() / 1e3
    );
    Ok(())
}
