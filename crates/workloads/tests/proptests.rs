//! Property-based tests for the workload generators: determinism, barrier
//! alignment, lock well-formedness and address-region discipline for
//! arbitrary seeds and thread counts.

use proptest::prelude::*;

use slacksim_cmp::isa::Op;
use slacksim_workloads::mix::Regions;
use slacksim_workloads::{Benchmark, WorkloadParams};

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Barnes),
        Just(Benchmark::Fft),
        Just(Benchmark::Lu),
        Just(Benchmark::WaterNsquared),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two streams with identical parameters are identical; a clone taken
    /// mid-stream continues identically.
    #[test]
    fn streams_are_deterministic(
        benchmark in any_benchmark(),
        seed in any::<u64>(),
        tid in 0usize..8
    ) {
        let params = WorkloadParams::new(tid, 8, seed);
        let mut a = benchmark.stream(&params);
        let mut b = benchmark.stream(&params);
        for _ in 0..2_000 {
            prop_assert_eq!(a.next_instr(), b.next_instr());
        }
        let mut c = a.clone_box();
        for _ in 0..2_000 {
            prop_assert_eq!(a.next_instr(), c.next_instr());
        }
    }

    /// Every thread of a run emits the same consecutive barrier-id
    /// sequence (the property that keeps the simulated barrier device
    /// deadlock-free).
    #[test]
    fn barrier_ids_align_across_threads(
        benchmark in any_benchmark(),
        seed in any::<u64>(),
        n_threads in 2usize..8
    ) {
        let collect = |tid: usize| -> Vec<u32> {
            let mut s = benchmark.stream(&WorkloadParams::new(tid, n_threads, seed));
            let mut ids = Vec::new();
            for _ in 0..120_000 {
                if let Op::Barrier { id } = s.next_instr().op {
                    ids.push(id);
                    if ids.len() >= 4 {
                        break;
                    }
                }
            }
            ids
        };
        let first = collect(0);
        prop_assert!(!first.is_empty(), "{benchmark} must emit barriers");
        // Ids are consecutive from 0.
        for (i, &id) in first.iter().enumerate() {
            prop_assert_eq!(id as usize, i);
        }
        let last = collect(n_threads - 1);
        let shared = first.len().min(last.len());
        prop_assert_eq!(&first[..shared], &last[..shared]);
    }

    /// Lock acquire/release pairs are well formed: no nesting, releases
    /// match the held lock, and no barrier fires while a lock is held.
    #[test]
    fn lock_sequences_are_well_formed(
        benchmark in any_benchmark(),
        seed in any::<u64>(),
        tid in 0usize..8
    ) {
        let mut s = benchmark.stream(&WorkloadParams::new(tid, 8, seed));
        let mut held: Option<u32> = None;
        for _ in 0..50_000 {
            match s.next_instr().op {
                Op::LockAcquire { id } => {
                    prop_assert!(held.is_none(), "nested acquire");
                    held = Some(id);
                }
                Op::LockRelease { id } => {
                    prop_assert_eq!(held, Some(id), "mismatched release");
                    held = None;
                }
                Op::Barrier { .. } => prop_assert!(held.is_none(), "barrier while locked"),
                _ => {}
            }
        }
    }

    /// Stores respect ownership discipline: a thread writes only its own
    /// private region, its own exported region, or (under a lock) the
    /// shared region.
    #[test]
    fn stores_respect_region_ownership(
        benchmark in any_benchmark(),
        seed in any::<u64>(),
        tid in 0usize..8
    ) {
        let mut s = benchmark.stream(&WorkloadParams::new(tid, 8, seed));
        let private = Regions::new(tid).private();
        let own_export = Regions::thread_shared(tid);
        let mut locked = false;
        for _ in 0..50_000 {
            match s.next_instr().op {
                Op::LockAcquire { .. } => locked = true,
                Op::LockRelease { .. } => locked = false,
                Op::Store { addr } => {
                    let in_private = (private..private + 0x0100_0000).contains(&addr);
                    let in_own_export = (own_export..own_export + 0x0100_0000).contains(&addr);
                    let in_shared = (Regions::SHARED..Regions::thread_shared(0)).contains(&addr);
                    prop_assert!(
                        in_private || in_own_export || (in_shared && locked),
                        "{benchmark} thread {tid}: unsanctioned store to 0x{addr:x} (locked={locked})"
                    );
                }
                _ => {}
            }
        }
    }

    /// Program counters stay inside the code region (never collide with
    /// data), and instruction streams never stall (always produce ops).
    #[test]
    fn pcs_stay_in_code_region(
        benchmark in any_benchmark(),
        seed in any::<u64>()
    ) {
        let mut s = benchmark.stream(&WorkloadParams::new(0, 8, seed));
        for _ in 0..20_000 {
            let instr = s.next_instr();
            prop_assert!(instr.pc >= Regions::CODE);
            prop_assert!(instr.pc < 0x1000_0000, "pc 0x{:x} collides with data", instr.pc);
        }
    }

    /// Different seeds produce different instruction streams (the
    /// generators actually use their seed).
    #[test]
    fn seeds_matter(benchmark in any_benchmark(), seed in 0u64..1_000_000) {
        let mut a = benchmark.stream(&WorkloadParams::new(0, 8, seed));
        let mut b = benchmark.stream(&WorkloadParams::new(0, 8, seed + 1));
        let mut same = 0u32;
        for _ in 0..2_000 {
            if a.next_instr() == b.next_instr() {
                same += 1;
            }
        }
        prop_assert!(same < 2_000, "seed change had no effect on {benchmark}");
    }
}
