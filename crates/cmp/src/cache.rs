//! Set-associative cache tag arrays with LRU replacement and per-line
//! MESI state.
//!
//! The simulation is timing-only: caches track tags and coherence state,
//! never data values (the synthetic workloads carry no architectural
//! values, and slack-simulation accuracy is about *timing* of shared
//! accesses — see `DESIGN.md` §4).

use crate::mesi::MesiState;
use slacksim_core::checkpoint::Checkpointable;
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};

/// A cache-line address: the byte address shifted right by the line-size
/// log2. All coherence structures (L1s, L2, bus, cache status map) operate
/// on line addresses.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::cache::LineAddr;
///
/// let l = LineAddr::from_byte_addr(0x1234, 32);
/// assert_eq!(l.raw(), 0x1234 / 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Maps a byte address onto its line, given the line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn from_byte_addr(addr: u64, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(addr >> line_bytes.trailing_zeros())
    }

    /// The raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line:0x{:x}", self.0)
    }
}

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The paper's L1 configuration: 16 KB, 4-way, 32 B lines.
    pub const fn l1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 32,
        }
    }

    /// The paper's shared L2 configuration: 256 KB, 8-way, 32 B lines.
    pub const fn l2() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            ways: 8,
            line_bytes: 32,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero ways, non-power-of-two
    /// line size, or capacity not divisible into sets).
    pub fn sets(&self) -> usize {
        assert!(self.ways >= 1, "cache must have at least one way");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(
            sets >= 1 && sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        sets as usize
    }
}

/// One resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    tag: u64,
    state: MesiState,
    /// Smaller = more recently used.
    lru: u32,
}

/// A set-associative, LRU, timing-only cache.
///
/// The cache tracks which sets mutated since a capture generation so that
/// speculative-slack checkpoints can capture per-set deltas instead of
/// cloning every tag array (see [`Checkpointable`]). A set is the honest
/// dirty granularity: touching one line reorders the LRU stamps of its
/// sibling ways, so a line-level dirty bit would have to smear across the
/// set anyway. The *payload* stays line-granular — a dirty set contributes
/// only its resident lines (at most `ways` of them).
///
/// # Examples
///
/// ```
/// use slacksim_cmp::cache::{Cache, CacheConfig, LineAddr};
/// use slacksim_cmp::mesi::MesiState;
///
/// let mut c = Cache::new(CacheConfig::l1());
/// let line = LineAddr::new(0x40);
/// assert_eq!(c.probe(line), None); // miss
/// c.fill(line, MesiState::Exclusive);
/// assert_eq!(c.probe(line), Some(MesiState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    hits: u64,
    misses: u64,
    /// Mutation generation (tracking metadata: excluded from equality,
    /// never rewound by restores).
    gen: u64,
    /// Per-set dirty stamps: `set_stamps[s] > since` means set `s` mutated
    /// after generation `since`.
    set_stamps: Vec<u64>,
}

/// Equality is over model state only; generation counters and dirty
/// stamps are capture bookkeeping and must never influence comparisons
/// (full-clone and delta checkpointing have to agree bit-for-bit).
impl PartialEq for Cache {
    fn eq(&self, other: &Self) -> bool {
        self.cfg == other.cfg
            && self.sets == other.sets
            && self.hits == other.hits
            && self.misses == other.misses
    }
}

impl Eq for Cache {}

/// Incremental state carrier for a [`Cache`]: the contents of every set
/// mutated since the capture baseline, plus the probe statistics.
#[derive(Debug, Clone)]
pub struct CacheDelta {
    gen: u64,
    payload: CachePayload,
    hits: u64,
    misses: u64,
}

/// How the dirty sets travel.
#[derive(Debug, Clone)]
enum CachePayload {
    /// Per dirty set: the set index and its resident lines. Each set
    /// owns its allocation, so capture costs exactly the dirty slice of
    /// a full clone and apply *moves* the lines into place instead of
    /// copying them a second time.
    Sparse(Vec<(u32, Vec<Way>)>),
    /// Bulk fallback once almost every set is dirty (short checkpoint
    /// intervals leave L1 tag arrays fully churned): the whole tag array
    /// and its stamps, applied by moving the outer vectors — one pointer
    /// move instead of per-set bookkeeping across thousands of sets.
    Dense {
        /// Dirty-set count at capture (observability only).
        dirty: u32,
        sets: Vec<Vec<Way>>,
        set_stamps: Vec<u64>,
    },
}

impl CacheDelta {
    /// Number of sets dirty since the capture baseline.
    pub fn dirty_sets(&self) -> usize {
        match &self.payload {
            CachePayload::Sparse(sets) => sets.len(),
            CachePayload::Dense { dirty, .. } => *dirty as usize,
        }
    }

    /// Number of resident lines carried in the payload.
    pub fn payload_lines(&self) -> usize {
        match &self.payload {
            CachePayload::Sparse(sets) => sets.iter().map(|(_, ways)| ways.len()).sum(),
            CachePayload::Dense { sets, .. } => sets.iter().map(Vec::len).sum(),
        }
    }
}

/// Outcome of [`Cache::probe_writable_modify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreProbe {
    /// Writable copy was resident: the line is now Modified and the hit
    /// was counted.
    Written,
    /// The line is resident but not writable (Shared): an upgrade is
    /// required. Nothing was mutated.
    NeedsUpgrade,
    /// The line is not resident: a read-for-ownership is required.
    /// Nothing was mutated.
    Absent,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways); sets],
            set_mask: sets as u64 - 1,
            hits: 0,
            misses: 0,
            gen: 0,
            set_stamps: vec![0; sets],
        }
    }

    /// Stamps a set as mutated at a fresh generation.
    #[inline]
    fn touch(&mut self, set: usize) {
        self.gen += 1;
        self.set_stamps[set] = self.gen;
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() & self.set_mask) as usize
    }

    #[inline]
    fn tag(&self, line: LineAddr) -> u64 {
        line.raw() >> self.set_mask.count_ones()
    }

    /// Looks the line up, updating LRU and hit/miss statistics. Returns
    /// the line's state if resident.
    pub fn probe(&mut self, line: LineAddr) -> Option<MesiState> {
        let set = self.set_index(line);
        let tag = self.tag(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| w.tag == tag) {
            let touched = ways[pos].lru;
            for w in ways.iter_mut() {
                if w.lru < touched {
                    w.lru += 1;
                }
            }
            ways[pos].lru = 0;
            self.hits += 1;
            let state = ways[pos].state;
            self.touch(set);
            Some(state)
        } else {
            // Only the miss counter moved; deltas carry the statistics
            // scalars unconditionally, so no set needs stamping.
            self.misses += 1;
            None
        }
    }

    /// Combined lookup for the issue path: behaves exactly like a pure
    /// [`peek`](Cache::peek) followed — only on a hit — by a
    /// [`probe`](Cache::probe), in a single set scan. On a hit the LRU
    /// stack, hit counter and set stamp update as `probe` would; on a miss
    /// *nothing* moves (in particular, no miss is counted — the pipeline's
    /// miss bookkeeping lives in the core's MSHR path, which `peek`-then-
    /// `probe` call sites never reached on a miss either).
    #[inline]
    pub fn probe_if_resident(&mut self, line: LineAddr) -> Option<MesiState> {
        let set = self.set_index(line);
        let tag = self.tag(line);
        let ways = &mut self.sets[set];
        let pos = ways.iter().position(|w| w.tag == tag)?;
        let touched = ways[pos].lru;
        for w in ways.iter_mut() {
            if w.lru < touched {
                w.lru += 1;
            }
        }
        ways[pos].lru = 0;
        self.hits += 1;
        let state = ways[pos].state;
        self.touch(set);
        Some(state)
    }

    /// Combined store lookup: one set scan deciding the write path. A
    /// writable hit performs the full hit sequence (`peek` + `probe` +
    /// `set_state(Modified)`) in place; the other outcomes mutate nothing,
    /// matching the pure `peek` those call sites used to issue.
    #[inline]
    pub fn probe_writable_modify(&mut self, line: LineAddr) -> StoreProbe {
        let set = self.set_index(line);
        let tag = self.tag(line);
        let ways = &mut self.sets[set];
        let Some(pos) = ways.iter().position(|w| w.tag == tag) else {
            return StoreProbe::Absent;
        };
        if !ways[pos].state.writable() {
            return StoreProbe::NeedsUpgrade;
        }
        let touched = ways[pos].lru;
        for w in ways.iter_mut() {
            if w.lru < touched {
                w.lru += 1;
            }
        }
        ways[pos].lru = 0;
        ways[pos].state = MesiState::Modified;
        self.hits += 1;
        self.touch(set);
        StoreProbe::Written
    }

    /// Re-probe of the line most recently probed in this cache: counts
    /// the hit and stamps the set without rescanning. Equivalent to
    /// [`probe`](Cache::probe) of the set's MRU line — the LRU stack is
    /// already in post-probe order, so touching it again is the identity.
    ///
    /// Callers must guarantee `line` was the last line probed and that no
    /// fill/invalidate/state change happened since (the issue loop's
    /// same-I-line fast path re-fetching from one cache line).
    #[inline]
    pub fn reprobe_mru(&mut self, line: LineAddr) {
        let set = self.set_index(line);
        debug_assert_eq!(
            self.sets[set].iter().find(|w| w.lru == 0).map(|w| w.tag),
            Some(self.tag(line)),
            "reprobe_mru caller invariant: line must be the set's MRU"
        );
        self.hits += 1;
        self.touch(set);
    }

    /// Looks the line up without touching LRU or statistics (snoops).
    pub fn peek(&self, line: LineAddr) -> Option<MesiState> {
        let set = self.set_index(line);
        let tag = self.tag(line);
        self.sets[set]
            .iter()
            .find(|w| w.tag == tag)
            .map(|w| w.state)
    }

    /// Changes the state of a resident line; no-op when absent. Returns
    /// whether the line was resident.
    pub fn set_state(&mut self, line: LineAddr, state: MesiState) -> bool {
        let set = self.set_index(line);
        let tag = self.tag(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.tag == tag) {
            w.state = state;
            self.touch(set);
            true
        } else {
            false
        }
    }

    /// Inserts a line in the given state, evicting the LRU way if the set
    /// is full. Returns the evicted line and its state, if any.
    ///
    /// Filling a line that is already resident just updates its state.
    pub fn fill(&mut self, line: LineAddr, state: MesiState) -> Option<(LineAddr, MesiState)> {
        let set = self.set_index(line);
        let tag = self.tag(line);
        let set_bits = self.set_mask.count_ones();
        let ways_cap = self.cfg.ways;
        let ways = &mut self.sets[set];

        if let Some(pos) = ways.iter().position(|w| w.tag == tag) {
            ways[pos].state = state;
            let touched = ways[pos].lru;
            for w in ways.iter_mut() {
                if w.lru < touched {
                    w.lru += 1;
                }
            }
            ways[pos].lru = 0;
            self.touch(set);
            return None;
        }

        let victim = if ways.len() == ways_cap {
            let pos = ways
                .iter()
                .enumerate()
                .max_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("full set has ways");
            let v = ways.swap_remove(pos);
            let victim_line = LineAddr::new((v.tag << set_bits) | set as u64);
            Some((victim_line, v.state))
        } else {
            None
        };

        for w in ways.iter_mut() {
            w.lru += 1;
        }
        ways.push(Way { tag, state, lru: 0 });
        self.touch(set);
        victim
    }

    /// Removes a line, returning its state if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<MesiState> {
        let set = self.set_index(line);
        let tag = self.tag(line);
        let ways = &mut self.sets[set];
        let removed = ways
            .iter()
            .position(|w| w.tag == tag)
            .map(|pos| ways.swap_remove(pos).state);
        if removed.is_some() {
            self.touch(set);
        }
        removed
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Probe hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Serializes the model state (tag arrays, LRU stamps, statistics).
    /// The geometry is construction-time configuration: it shapes the
    /// layout and is validated on load, never stored.
    pub fn save_state(&self, w: &mut ByteWriter) {
        w.u32(self.sets.len() as u32);
        for ways in &self.sets {
            w.u16(ways.len() as u16);
            for way in ways {
                w.u64(way.tag);
                w.u8(way.state.persist_tag());
                w.u32(way.lru);
            }
        }
        w.u64(self.hits);
        w.u64(self.misses);
    }

    /// Restores state written by [`Cache::save_state`] into a cache of the
    /// same geometry. Capture bookkeeping (generation, dirty stamps) is
    /// reset; the caller re-seeds delta baselines after a resume.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if the bytes are malformed or describe a
    /// different geometry.
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        let n_sets = r.u32()? as usize;
        if n_sets != self.sets.len() {
            return Err(PersistError::Corrupt("cache set count mismatch"));
        }
        let ways_cap = self.cfg.ways;
        for ways in &mut self.sets {
            let n = r.u16()? as usize;
            if n > ways_cap {
                return Err(PersistError::Corrupt("cache set holds more ways than fit"));
            }
            ways.clear();
            for _ in 0..n {
                let tag = r.u64()?;
                let state = MesiState::from_persist_tag(r.u8()?)?;
                let lru = r.u32()?;
                ways.push(Way { tag, state, lru });
            }
        }
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        self.gen = 0;
        self.set_stamps.iter_mut().for_each(|s| *s = 0);
        Ok(())
    }
}

impl Checkpointable for Cache {
    type Delta = CacheDelta;

    fn generation(&self) -> u64 {
        self.gen
    }

    fn capture_delta(&mut self, since_gen: u64) -> CacheDelta {
        let n_dirty = self.set_stamps.iter().filter(|&&s| s > since_gen).count();
        // Past ~7/8 dirty, the per-set index bookkeeping outweighs what
        // cloning the few clean sets would cost; carry the whole array
        // and let apply move it in wholesale.
        let payload = if n_dirty * 8 >= self.sets.len() * 7 {
            CachePayload::Dense {
                dirty: n_dirty as u32,
                sets: self.sets.clone(),
                set_stamps: self.set_stamps.clone(),
            }
        } else {
            let mut sets = Vec::with_capacity(n_dirty);
            for (i, &stamp) in self.set_stamps.iter().enumerate() {
                if stamp > since_gen {
                    sets.push((i as u32, self.sets[i].clone()));
                }
            }
            CachePayload::Sparse(sets)
        };
        CacheDelta {
            gen: self.gen,
            payload,
            hits: self.hits,
            misses: self.misses,
        }
    }

    fn apply_delta(&mut self, delta: CacheDelta) {
        match delta.payload {
            CachePayload::Sparse(sets) => {
                for (i, ways) in sets {
                    let i = i as usize;
                    self.sets[i] = ways;
                    self.set_stamps[i] = delta.gen;
                }
            }
            CachePayload::Dense {
                sets, set_stamps, ..
            } => {
                self.sets = sets;
                self.set_stamps = set_stamps;
            }
        }
        self.gen = self.gen.max(delta.gen);
        self.hits = delta.hits;
        self.misses = delta.misses;
    }

    fn restore_from(&mut self, base: &Self, since_gen: u64) {
        for (i, &stamp) in self.set_stamps.iter().enumerate() {
            if stamp > since_gen {
                self.sets[i].clone_from(&base.sets[i]);
            }
        }
        self.hits = base.hits;
        self.misses = base.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets × 2 ways × 32 B lines = 128 B.
        Cache::new(CacheConfig {
            size_bytes: 128,
            ways: 2,
            line_bytes: 32,
        })
    }

    /// A line that maps to set `set` with a distinct tag.
    fn line(set: u64, tag: u64) -> LineAddr {
        LineAddr::new((tag << 1) | set)
    }

    #[test]
    fn byte_addr_mapping() {
        assert_eq!(LineAddr::from_byte_addr(0, 32), LineAddr::new(0));
        assert_eq!(LineAddr::from_byte_addr(31, 32), LineAddr::new(0));
        assert_eq!(LineAddr::from_byte_addr(32, 32), LineAddr::new(1));
        assert_eq!(LineAddr::from_byte_addr(0x1000, 64), LineAddr::new(0x40));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_size_rejected() {
        let _ = LineAddr::from_byte_addr(0, 48);
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::l1().sets(), 128);
        assert_eq!(CacheConfig::l2().sets(), 1024);
    }

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let mut c = small();
        let l = line(0, 1);
        assert_eq!(c.probe(l), None);
        assert!(c.fill(l, MesiState::Shared).is_none());
        assert_eq!(c.probe(l), Some(MesiState::Shared));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        let a = line(0, 1);
        let b = line(0, 2);
        let d = line(0, 3);
        c.fill(a, MesiState::Exclusive);
        c.fill(b, MesiState::Exclusive);
        // Touch `a` so `b` becomes LRU.
        assert!(c.probe(a).is_some());
        let evicted = c.fill(d, MesiState::Exclusive);
        assert_eq!(evicted, Some((b, MesiState::Exclusive)));
        assert!(c.peek(a).is_some());
        assert!(c.peek(d).is_some());
        assert!(c.peek(b).is_none());
    }

    #[test]
    fn fill_existing_updates_state_without_eviction() {
        let mut c = small();
        let l = line(1, 7);
        c.fill(l, MesiState::Shared);
        assert!(c.fill(l, MesiState::Modified).is_none());
        assert_eq!(c.peek(l), Some(MesiState::Modified));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        c.fill(line(0, 1), MesiState::Exclusive);
        c.fill(line(0, 2), MesiState::Exclusive);
        // Filling set 1 must not evict from set 0.
        assert!(c.fill(line(1, 1), MesiState::Exclusive).is_none());
        assert_eq!(c.resident(), 3);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = small();
        let l = line(0, 4);
        assert!(!c.set_state(l, MesiState::Modified));
        c.fill(l, MesiState::Exclusive);
        assert!(c.set_state(l, MesiState::Modified));
        assert_eq!(c.invalidate(l), Some(MesiState::Modified));
        assert_eq!(c.invalidate(l), None);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn peek_does_not_count_stats() {
        let mut c = small();
        let l = line(0, 1);
        c.fill(l, MesiState::Shared);
        let (h, m) = (c.hits(), c.misses());
        let _ = c.peek(l);
        let _ = c.peek(line(0, 9));
        assert_eq!((c.hits(), c.misses()), (h, m));
    }

    #[test]
    fn victim_line_reconstruction_roundtrip() {
        // The evicted LineAddr must map back to the same set/tag.
        let mut c = small();
        let a = line(1, 5);
        let b = line(1, 6);
        let d = line(1, 7);
        c.fill(a, MesiState::Modified);
        c.fill(b, MesiState::Shared);
        c.probe(b);
        let (victim, st) = c.fill(d, MesiState::Exclusive).expect("eviction");
        assert_eq!(victim, a);
        assert_eq!(st, MesiState::Modified);
    }

    #[test]
    fn delta_captures_only_dirty_sets() {
        let mut live = small();
        live.fill(line(0, 1), MesiState::Exclusive);
        let mut base = live.clone();
        let gen = live.generation();

        // Mutate set 1 only; set 0 stays clean.
        live.fill(line(1, 2), MesiState::Modified);
        live.probe(line(1, 2));
        let delta = live.capture_delta(gen);
        assert_eq!(delta.dirty_sets(), 1, "only set 1 mutated");
        assert_eq!(delta.payload_lines(), 1);

        base.apply_delta(delta);
        assert_eq!(base, live, "apply reproduces the live state");
    }

    #[test]
    fn capture_at_current_generation_is_empty() {
        let mut c = small();
        c.fill(line(0, 1), MesiState::Shared);
        let gen = c.generation();
        let delta = c.capture_delta(gen);
        assert_eq!(delta.dirty_sets(), 0);
    }

    #[test]
    fn restore_rewinds_only_dirty_sets_and_statistics() {
        let mut live = small();
        live.fill(line(0, 1), MesiState::Exclusive);
        live.probe(line(0, 1));
        let base = live.clone();
        let gen = live.generation();

        live.fill(line(0, 2), MesiState::Modified);
        live.invalidate(line(0, 1));
        live.probe(line(1, 9)); // miss: statistics move, no set dirtied
        live.restore_from(&base, gen);
        assert_eq!(live, base, "restore rewinds to the checkpoint");

        // Post-restore mutations are captured relative to the checkpoint
        // generation (stamps are never rewound).
        live.fill(line(1, 3), MesiState::Shared);
        let mut patched = base.clone();
        patched.apply_delta(live.capture_delta(gen));
        assert_eq!(patched, live);
    }

    #[test]
    fn equality_ignores_tracking_metadata() {
        let mut a = small();
        let mut b = small();
        a.fill(line(0, 1), MesiState::Shared);
        b.fill(line(0, 1), MesiState::Shared);
        // Same state reached with extra self-cancelling churn in `b`.
        b.set_state(line(0, 1), MesiState::Modified);
        b.set_state(line(0, 1), MesiState::Shared);
        assert!(b.generation() > a.generation());
        assert_eq!(a, b, "generations are not part of model state");
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let mut c = small();
        c.fill(line(0, 1), MesiState::Exclusive);
        c.fill(line(0, 2), MesiState::Shared);
        c.probe(line(0, 1));
        c.fill(line(1, 7), MesiState::Modified);
        c.probe(line(1, 9)); // miss: statistics-only mutation

        let mut w = ByteWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = small();
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).expect("load succeeds");
        r.finish().expect("no trailing bytes");
        assert_eq!(restored, c);
        assert_eq!(restored.hits(), c.hits());
        assert_eq!(restored.misses(), c.misses());
        // LRU order must survive too: the next eviction picks the same
        // victim in both caches.
        let probe = line(0, 3);
        assert_eq!(
            restored.fill(probe, MesiState::Exclusive),
            c.fill(probe, MesiState::Exclusive)
        );
    }

    #[test]
    fn load_rejects_wrong_geometry_and_truncation() {
        let mut c = small();
        c.fill(line(0, 1), MesiState::Shared);
        let mut w = ByteWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();

        // Different geometry: 4 sets instead of 2.
        let mut other = Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 32,
        });
        assert!(other.load_state(&mut ByteReader::new(&bytes)).is_err());

        // Truncated stream errors instead of panicking.
        let mut short = small();
        assert!(short
            .load_state(&mut ByteReader::new(&bytes[..bytes.len() - 3]))
            .is_err());
    }

    #[test]
    fn paper_l1_capacity() {
        let mut c = Cache::new(CacheConfig::l1());
        // 16 KB / 32 B = 512 lines fit without eviction when addresses are
        // spread across all sets and ways.
        for i in 0..512u64 {
            assert!(c.fill(LineAddr::new(i), MesiState::Exclusive).is_none());
        }
        assert_eq!(c.resident(), 512);
        assert!(c.fill(LineAddr::new(512), MesiState::Exclusive).is_some());
    }
}
