//! The virtual scheduler: a deterministic, single-token replacement for
//! the host scheduler that the threaded engine waits through.
//!
//! Real threads still run the real engine protocol, but [`VirtualSched`]
//! serialises them onto one *scheduling token*: exactly one engine thread
//! executes at any instant, and every [`HostSched`] entry point hands the
//! token back to the scheduler, which picks the next runnable task from a
//! seeded [`SchedPolicy`]. Because every shared-memory interaction of the
//! protocol happens between two scheduling points of the token holder,
//! the whole run is a deterministic function of `(policy, seed,
//! mutation)` — any failure replays exactly.
//!
//! Parks get **no timeout**: a wake-up the protocol loses turns into a
//! stall the scheduler can see instead of latency the native
//! park-timeout backstop would absorb. Stalls are resolved by force-
//! waking the *pollers* — the manager and, under a sharded manager tree
//! ([`VirtualSched::with_shards`]), the shard-manager threads, whose
//! native parks are timed polls by design; when that stops helping, the
//! scheduler declares a livelock, falls back to native timeout
//! semantics so the run completes, and records the parked cores it had
//! to revive as [`SchedDiag::lost_wakeups`] — the crisp diagnostic the
//! mutation tests assert on.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Duration;

use slacksim_core::rng::Xoshiro256;
use slacksim_core::sched::{HostSched, SchedSite, TaskId};

/// Task index of the simulation manager (always registered as
/// `"manager"`, always scheduled first among the expected names).
const MANAGER: usize = 0;

/// Forced manager wake-ups a core may stay *continuously parked*
/// through before the scheduler declares its wake-up lost. Every window
/// publication unparks every parked core, so in a correct protocol a
/// park survives only a couple of manager rounds; only a lost wake-up
/// survives hundreds.
const LIVELOCK_STALL_THRESHOLD: u64 = 1_000;

/// Hard cap on scheduling decisions per run — a runaway-loop backstop so
/// a harness bug fails fast instead of hanging CI.
const MAX_DECISIONS: u64 = 500_000_000;

/// How the virtual scheduler picks the next runnable task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Uniformly random walk over the runnable set — the fuzzing
    /// workhorse.
    RandomWalk,
    /// Adversarial: tasks poised at [`SchedSite::PreParkCheck`] (between
    /// publishing their parked flag and re-checking the sleep condition)
    /// are scheduled *last*, stretching the park-just-before-wake race
    /// window while the manager's wake path runs against it.
    ParkRace,
    /// Adversarial: the victim core is scheduled only when it is the
    /// sole runnable task, maximising its clock lag and the overflow
    /// pressure on every other core's queues.
    Starve {
        /// Task index of the starved core (0-based core id + 1).
        victim: usize,
    },
    /// Adversarial: whenever a consolidator (the manager or a shard
    /// manager) enters a consumer-side drain ([`SchedSite::RingDrain`] /
    /// [`SchedSite::SnapshotTake`]), a producer core runs first —
    /// interleaving drains with pushes, overflow spills and checkpoint
    /// hand-offs.
    DrainPreempt,
}

impl SchedPolicy {
    /// Stable name used in repro lines.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::RandomWalk => "random-walk",
            SchedPolicy::ParkRace => "park-race",
            SchedPolicy::Starve { .. } => "starve",
            SchedPolicy::DrainPreempt => "drain-preempt",
        }
    }
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedPolicy::Starve { victim } => write!(f, "starve:{victim}"),
            p => f.write_str(p.name()),
        }
    }
}

/// A protocol mutation injected at the scheduler layer, used to prove
/// the harness detects the bug class it was built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// No mutation: the protocol runs unmodified.
    None,
    /// Drop the `nth` (0-based) unpark delivery. Because `wake_core`
    /// clears the core's parked flag *before* unparking, a dropped
    /// delivery is not self-healing: later publishes skip the unpark and
    /// the core sleeps forever — exactly the lost-wakeup class the
    /// native park timeout masks.
    DropUnpark {
        /// 0-based index of the unpark call to swallow.
        nth: u64,
    },
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::None => f.write_str("none"),
            Mutation::DropUnpark { nth } => write!(f, "drop-unpark:{nth}"),
        }
    }
}

/// Scheduling diagnostics for one finished run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedDiag {
    /// Scheduling decisions taken.
    pub decisions: u64,
    /// Decisions that switched the running task.
    pub switches: u64,
    /// Unpark deliveries requested by the protocol.
    pub unparks: u64,
    /// Unpark deliveries swallowed by the active [`Mutation`].
    pub dropped_unparks: u64,
    /// Stall resolutions that woke a timed-poll-by-design task — the
    /// manager, plus the shard managers when the tree is sharded.
    pub forced_manager_wakes: u64,
    /// Parked cores revived by the livelock fallback — each one is a
    /// wake-up the protocol lost. Zero for a correct protocol.
    pub lost_wakeups: u64,
    /// True once the livelock guard fell back to native timeout
    /// semantics.
    pub timeout_fallback: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Expected but not yet registered.
    Absent,
    /// Runnable (blocked only on the scheduling token).
    Ready,
    /// Parked until an unpark (or the livelock fallback).
    Parked,
    /// Unregistered; never runs again.
    Finished,
}

#[derive(Debug)]
struct TaskState {
    status: Status,
    /// Pending wake token (unpark of a not-yet-parked task), exactly the
    /// `std::thread::Thread::unpark` semantics.
    wake_token: bool,
    /// Site the task is currently blocked at, for targeted policies.
    site: Option<SchedSite>,
    /// Value of [`SchedDiag::forced_manager_wakes`] when this task
    /// parked; cleared on unpark. A task whose park survives
    /// [`LIVELOCK_STALL_THRESHOLD`] forced wakes lost its wake-up (every
    /// correct protocol path re-unparks parked cores within a couple of
    /// manager rounds).
    parked_at_wake: Option<u64>,
}

#[derive(Debug)]
struct State {
    tasks: Vec<TaskState>,
    by_thread: HashMap<ThreadId, usize>,
    registered: usize,
    /// Holder of the scheduling token; `None` before the registration
    /// barrier completes and after every task finishes.
    current: Option<usize>,
    rng: Xoshiro256,
    diag: SchedDiag,
}

/// See the [module docs](self) for the execution model.
#[derive(Debug)]
pub struct VirtualSched {
    names: Vec<String>,
    /// Number of target cores; tasks `1..=core_count` are core threads,
    /// anything above is a shard-manager thread.
    core_count: usize,
    policy: SchedPolicy,
    mutation: Mutation,
    state: Mutex<State>,
    cv: Condvar,
}

impl VirtualSched {
    /// Creates a scheduler for a threaded-engine run over `cores` target
    /// cores with the classic single-manager loop (`shards == 1`).
    pub fn new(cores: usize, policy: SchedPolicy, seed: u64, mutation: Mutation) -> Arc<Self> {
        Self::with_shards(cores, 1, policy, seed, mutation)
    }

    /// Creates a scheduler for a threaded-engine run over `cores` target
    /// cores under a `shards`-way manager tree. The expected task set is
    /// fixed up front — `"manager"`, `"core0".."core{n-1}"`, then
    /// `"shard1".."shard{S-1}"` (shard 0 is folded into the root
    /// manager, and the engine clamps `S` to the core count) — so task
    /// identity never depends on thread start-up races.
    pub fn with_shards(
        cores: usize,
        shards: usize,
        policy: SchedPolicy,
        seed: u64,
        mutation: Mutation,
    ) -> Arc<Self> {
        let shards = shards.clamp(1, cores.max(1));
        let mut names = Vec::with_capacity(cores + shards);
        names.push("manager".to_string());
        for i in 0..cores {
            names.push(format!("core{i}"));
        }
        for s in 1..shards {
            names.push(format!("shard{s}"));
        }
        let tasks = names
            .iter()
            .map(|_| TaskState {
                status: Status::Absent,
                wake_token: false,
                site: None,
                parked_at_wake: None,
            })
            .collect();
        Arc::new(VirtualSched {
            names,
            core_count: cores,
            policy,
            mutation,
            state: Mutex::new(State {
                tasks,
                by_thread: HashMap::new(),
                registered: 0,
                current: None,
                rng: Xoshiro256::new(seed),
                diag: SchedDiag::default(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Snapshot of the run's scheduling diagnostics.
    pub fn diagnostics(&self) -> SchedDiag {
        self.state.lock().expect("sched poisoned").diag
    }

    /// One-line snapshot of every task's status and blocked-at site, for
    /// diagnosing schedules that stop making progress.
    pub fn dump_tasks(&self) -> String {
        let st = self.state.lock().expect("sched poisoned");
        let mut out = String::new();
        for (i, t) in st.tasks.iter().enumerate() {
            use std::fmt::Write;
            let _ = write!(
                out,
                "{}[{:?}@{:?}{}] ",
                self.names[i],
                t.status,
                t.site,
                if st.current == Some(i) { " *" } else { "" },
            );
        }
        out
    }

    /// True for tasks whose native park is a timed poll by design — the
    /// root manager and every shard-manager thread. Nobody is obliged to
    /// unpark them, so the stall resolver may revive them without hiding
    /// a protocol bug; a *core* needing such a revival lost a wake-up.
    fn is_poller(&self, task: usize) -> bool {
        task == MANAGER || task > self.core_count
    }

    fn me(&self, st: &State) -> usize {
        *st.by_thread
            .get(&std::thread::current().id())
            .expect("calling thread registered a task")
    }

    /// Hands the token back, applies the policy, and waits until this
    /// task is scheduled again. `parking` uses park semantics (the task
    /// leaves the runnable set unless a wake token is pending).
    fn enter(&self, site: SchedSite, parking: bool) {
        let mut st = self.state.lock().expect("sched poisoned");
        let me = self.me(&st);
        debug_assert_eq!(st.current, Some(me), "only the token holder runs");
        st.tasks[me].site = Some(site);
        if parking && !st.diag.timeout_fallback {
            if st.tasks[me].wake_token {
                st.tasks[me].wake_token = false;
            } else {
                st.tasks[me].status = Status::Parked;
                st.tasks[me].parked_at_wake = Some(st.diag.forced_manager_wakes);
            }
        }
        self.pick_next(&mut st, me, Some(site));
        self.cv.notify_all();
        while st.current != Some(me) {
            st = self.cv.wait(st).expect("sched poisoned");
        }
        st.tasks[me].site = None;
    }

    /// Picks the next token holder. Runs under the state lock.
    fn pick_next(&self, st: &mut State, entering: usize, site: Option<SchedSite>) {
        st.diag.decisions += 1;
        assert!(
            st.diag.decisions < MAX_DECISIONS,
            "virtual scheduler exceeded {MAX_DECISIONS} decisions — runaway schedule"
        );
        loop {
            let ready: Vec<usize> = st
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Ready)
                .map(|(i, _)| i)
                .collect();
            if ready.is_empty() {
                if st.tasks.iter().all(|t| t.status == Status::Finished) {
                    st.current = None;
                    return;
                }
                self.resolve_stall(st);
                continue;
            }
            let chosen = self.choose(st, &ready, entering, site);
            if st.current != Some(chosen) {
                st.diag.switches += 1;
            }
            st.current = Some(chosen);
            return;
        }
    }

    /// No task is runnable. Natively every park here has a timeout; the
    /// manager's and the shard managers' are deliberate polling
    /// cadences, so waking only those pollers preserves protocol
    /// fidelity — a core that *needs* such a revival lost a wake-up.
    fn resolve_stall(&self, st: &mut State) {
        if !st.diag.timeout_fallback {
            let mut woke = false;
            for i in 0..st.tasks.len() {
                if self.is_poller(i) && st.tasks[i].status == Status::Parked {
                    st.tasks[i].status = Status::Ready;
                    st.tasks[i].parked_at_wake = None;
                    woke = true;
                }
            }
            if woke {
                // One stall resolution = one manager "round", however
                // many pollers it revived.
                st.diag.forced_manager_wakes += 1;
                // Livelock check: in every correct protocol path a
                // parked core is re-unparked within a couple of manager
                // rounds (each window publication wakes every parked
                // core). A core whose park has survived this many forced
                // poller wakes has a wake-up that is never coming — the
                // lost-unpark signature. Record it and fall back to
                // native timeout semantics so the run completes and can
                // be examined. The age test is per task and only over
                // cores: healthy cores that keep getting woken and
                // re-parked do not mask a stranded sibling, and pollers
                // were just revived above.
                let now = st.diag.forced_manager_wakes;
                let stranded = st
                    .tasks
                    .iter()
                    .enumerate()
                    .filter(|&(i, t)| {
                        !self.is_poller(i)
                            && matches!(
                                t.parked_at_wake,
                                Some(p) if now - p >= LIVELOCK_STALL_THRESHOLD
                            )
                    })
                    .count() as u64;
                if stranded > 0 {
                    st.diag.timeout_fallback = true;
                    st.diag.lost_wakeups += stranded;
                    for t in st.tasks.iter_mut() {
                        if t.status == Status::Parked {
                            t.status = Status::Ready;
                            t.parked_at_wake = None;
                        }
                    }
                }
                return;
            }
        }
        // Fallback mode (or every poller is gone): emulate every pending
        // park timeout firing.
        for t in st.tasks.iter_mut() {
            if t.status == Status::Parked {
                t.status = Status::Ready;
                t.parked_at_wake = None;
            }
        }
    }

    fn pick_uniform(rng: &mut Xoshiro256, set: &[usize]) -> usize {
        set[rng.next_below(set.len() as u64) as usize]
    }

    fn choose(
        &self,
        st: &mut State,
        ready: &[usize],
        entering: usize,
        site: Option<SchedSite>,
    ) -> usize {
        // Escape hatch for the filtering policies: once in a while pick
        // from the full ready set. An *absolute* deprioritization can
        // livelock against a polling peer (e.g. the manager spinning in
        // an ack poll for the very core the policy refuses to run — no
        // task parks, so the stall resolver never fires); a 1-in-16
        // uniform draw keeps the adversarial pressure while guaranteeing
        // probabilistic progress.
        let escape = matches!(
            self.policy,
            SchedPolicy::ParkRace | SchedPolicy::Starve { .. }
        ) && st.rng.next_below(16) == 0;
        if escape {
            return Self::pick_uniform(&mut st.rng, ready);
        }
        match self.policy {
            SchedPolicy::RandomWalk => Self::pick_uniform(&mut st.rng, ready),
            SchedPolicy::ParkRace => {
                let unpoised: Vec<usize> = ready
                    .iter()
                    .copied()
                    .filter(|&i| st.tasks[i].site != Some(SchedSite::PreParkCheck))
                    .collect();
                if unpoised.is_empty() {
                    Self::pick_uniform(&mut st.rng, ready)
                } else {
                    Self::pick_uniform(&mut st.rng, &unpoised)
                }
            }
            SchedPolicy::Starve { victim } => {
                let others: Vec<usize> = ready.iter().copied().filter(|&i| i != victim).collect();
                if others.is_empty() {
                    ready[0]
                } else {
                    Self::pick_uniform(&mut st.rng, &others)
                }
            }
            SchedPolicy::DrainPreempt => {
                let mid_drain = self.is_poller(entering)
                    && matches!(
                        site,
                        Some(SchedSite::RingDrain) | Some(SchedSite::SnapshotTake)
                    );
                if mid_drain {
                    let cores: Vec<usize> = ready
                        .iter()
                        .copied()
                        .filter(|&i| !self.is_poller(i))
                        .collect();
                    if !cores.is_empty() {
                        return Self::pick_uniform(&mut st.rng, &cores);
                    }
                }
                Self::pick_uniform(&mut st.rng, ready)
            }
        }
    }

    #[allow(clippy::needless_pass_by_value)]
    fn wait_for_token<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        me: usize,
    ) -> MutexGuard<'a, State> {
        while st.current != Some(me) {
            st = self.cv.wait(st).expect("sched poisoned");
        }
        st
    }
}

impl HostSched for VirtualSched {
    fn virtualized(&self) -> bool {
        true
    }

    fn register(&self, name: &str) -> TaskId {
        let mut st = self.state.lock().expect("sched poisoned");
        let id = self
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unexpected task {name:?} (expected {:?})", self.names));
        assert_eq!(
            st.tasks[id].status,
            Status::Absent,
            "task {name} registered twice"
        );
        st.tasks[id].status = Status::Ready;
        st.by_thread.insert(std::thread::current().id(), id);
        st.registered += 1;
        // Entry barrier: nobody runs until the whole expected task set
        // has arrived, so the first decision sees every task.
        if st.registered == self.names.len() {
            self.pick_next(&mut st, id, None);
        }
        self.cv.notify_all();
        let _st = self.wait_for_token(st, id);
        TaskId(id)
    }

    fn unregister(&self) {
        let mut st = self.state.lock().expect("sched poisoned");
        let me = self.me(&st);
        debug_assert_eq!(st.current, Some(me));
        st.tasks[me].status = Status::Finished;
        st.tasks[me].site = None;
        self.pick_next(&mut st, me, None);
        // The thread leaves the discipline without waiting: whatever it
        // does next (thread teardown) is invisible to the protocol.
        self.cv.notify_all();
    }

    fn point(&self, site: SchedSite) {
        self.enter(site, false);
    }

    fn idle_spin(&self, site: SchedSite) {
        self.enter(site, false);
    }

    fn idle_yield(&self, site: SchedSite) {
        self.enter(site, false);
    }

    fn park_timeout(&self, site: SchedSite, _timeout: Duration) {
        self.enter(site, true);
    }

    fn unpark(&self, target: TaskId) {
        let mut st = self.state.lock().expect("sched poisoned");
        st.diag.unparks += 1;
        if let Mutation::DropUnpark { nth } = self.mutation {
            if st.diag.unparks - 1 == nth {
                st.diag.dropped_unparks += 1;
                return;
            }
        }
        let t = &mut st.tasks[target.index()];
        match t.status {
            Status::Parked => {
                t.status = Status::Ready;
                t.wake_token = false;
                t.parked_at_wake = None;
                self.cv.notify_all();
            }
            Status::Ready => t.wake_token = true,
            // Unparking an absent/finished task is benign, as with std.
            Status::Absent | Status::Finished => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tasks ping-ponging through points stay strictly serialized
    /// and the run is deterministic for a fixed seed.
    #[test]
    fn token_serializes_two_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for _ in 0..2 {
            let sched = VirtualSched::new(1, SchedPolicy::RandomWalk, 7, Mutation::None);
            let in_section = Arc::new(AtomicUsize::new(0));
            let s2 = Arc::clone(&sched);
            let flag = Arc::clone(&in_section);
            let h = std::thread::spawn(move || {
                s2.register("core0");
                for _ in 0..100 {
                    assert_eq!(flag.fetch_add(1, Ordering::SeqCst), 0, "exclusive");
                    flag.fetch_sub(1, Ordering::SeqCst);
                    s2.point(SchedSite::CoreBurst);
                }
                s2.unregister();
            });
            sched.register("manager");
            for _ in 0..100 {
                assert_eq!(in_section.fetch_add(1, Ordering::SeqCst), 0, "exclusive");
                in_section.fetch_sub(1, Ordering::SeqCst);
                sched.point(SchedSite::ManagerLoop);
            }
            sched.unregister();
            h.join().expect("worker finishes");
            let d = sched.diagnostics();
            assert!(d.decisions >= 200);
            assert_eq!(d.lost_wakeups, 0);
        }
    }

    /// Park with a pending wake token returns without blocking, exactly
    /// like `std::thread::park` after an `unpark`.
    #[test]
    fn unpark_token_carries_across_park() {
        let sched = VirtualSched::new(1, SchedPolicy::RandomWalk, 1, Mutation::None);
        let s2 = Arc::clone(&sched);
        let h = std::thread::spawn(move || {
            let me = s2.register("core0");
            // Manager will unpark us exactly once before we park.
            s2.point(SchedSite::CoreIdle);
            s2.park_timeout(SchedSite::CoreIdle, Duration::from_secs(3600));
            s2.unregister();
            me
        });
        let core = TaskId(1);
        sched.register("manager");
        sched.unpark(core); // token stored: core is Ready, not parked
        sched.point(SchedSite::ManagerLoop);
        sched.unregister();
        let got = h.join().expect("core finishes");
        assert_eq!(got, core);
        assert_eq!(sched.diagnostics().lost_wakeups, 0);
    }

    /// A genuinely dropped wake-up is detected: the run falls back to
    /// timeout semantics and reports a lost wakeup.
    #[test]
    fn dropped_unpark_is_diagnosed() {
        let sched = VirtualSched::new(
            1,
            SchedPolicy::RandomWalk,
            3,
            Mutation::DropUnpark { nth: 0 },
        );
        let s2 = Arc::clone(&sched);
        let h = std::thread::spawn(move || {
            s2.register("core0");
            // Park with no token: the manager's unpark is swallowed by
            // the mutation, so only the livelock fallback revives us.
            s2.park_timeout(SchedSite::CoreIdle, Duration::from_secs(3600));
            s2.unregister();
        });
        sched.register("manager");
        sched.unpark(TaskId(1)); // dropped by the mutation
        loop {
            // Model the manager's timed poll: park until the scheduler
            // force-wakes us, bail out once the fallback tripped.
            sched.park_timeout(SchedSite::ManagerIdle, Duration::from_micros(20));
            if sched.diagnostics().timeout_fallback {
                break;
            }
        }
        sched.unregister();
        h.join().expect("core finishes");
        let d = sched.diagnostics();
        assert_eq!(d.dropped_unparks, 1);
        assert!(d.timeout_fallback);
        assert_eq!(d.lost_wakeups, 1);
    }

    /// Shard-manager tasks are timed pollers: a shard parked with no
    /// unpark coming is revived by the stall resolver — alongside the
    /// root manager — without being miscounted as a lost wakeup.
    #[test]
    fn shard_pollers_are_revived_without_counting_lost_wakeups() {
        let sched = VirtualSched::with_shards(2, 2, SchedPolicy::RandomWalk, 11, Mutation::None);
        let mut handles = Vec::new();
        for i in 0..2 {
            let s = Arc::clone(&sched);
            handles.push(std::thread::spawn(move || {
                s.register(&format!("core{i}"));
                s.point(SchedSite::CoreBurst);
                s.unregister();
            }));
        }
        let s = Arc::clone(&sched);
        handles.push(std::thread::spawn(move || {
            s.register("shard1");
            // Timed poll with no unpark coming: only the stall resolver
            // may revive this park.
            s.park_timeout(SchedSite::ShardIdle, Duration::from_micros(20));
            s.point(SchedSite::ShardLoop);
            s.unregister();
        }));
        sched.register("manager");
        sched.park_timeout(SchedSite::ManagerIdle, Duration::from_micros(20));
        sched.unregister();
        for h in handles {
            h.join().expect("task finishes");
        }
        let d = sched.diagnostics();
        assert!(
            d.forced_manager_wakes >= 1,
            "shard poll needs a forced wake"
        );
        assert_eq!(d.lost_wakeups, 0);
        assert!(!d.timeout_fallback);
    }

    #[test]
    fn policy_and_mutation_display() {
        assert_eq!(SchedPolicy::RandomWalk.to_string(), "random-walk");
        assert_eq!(SchedPolicy::Starve { victim: 2 }.to_string(), "starve:2");
        assert_eq!(Mutation::DropUnpark { nth: 9 }.to_string(), "drop-unpark:9");
        assert_eq!(Mutation::None.to_string(), "none");
    }
}
