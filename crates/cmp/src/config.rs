//! Target CMP configuration, defaulting to the paper's experimental setup
//! (§2.1): an 8-core CMP, 4-way-issue OoO cores with 64 in-flight
//! instructions, 16 KB L1 I/D caches, a 256 KB shared L2 with 8-cycle
//! access, 100-cycle L2 miss latency, and a MESI request/response snooping
//! bus.

use crate::cache::CacheConfig;
use crate::directory::MAX_DIRECTORY_CORES;

/// Which interconnect model the uncore instantiates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum UncoreKind {
    /// The paper's split request/response snooping bus — one shared
    /// resource, one monitoring variable, at most 16 cores.
    #[default]
    Bus,
    /// Sharded directory-MESI: address-interleaved banks, one monitor
    /// per bank, up to [`MAX_DIRECTORY_CORES`] cores.
    Directory,
}

impl UncoreKind {
    /// Largest supported target core count for this interconnect.
    pub fn max_cores(self) -> usize {
        match self {
            UncoreKind::Bus => 16,
            UncoreKind::Directory => MAX_DIRECTORY_CORES,
        }
    }

    /// The CLI/spec spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            UncoreKind::Bus => "bus",
            UncoreKind::Directory => "directory",
        }
    }

    /// Parses the CLI/spec spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "bus" => Some(UncoreKind::Bus),
            "directory" => Some(UncoreKind::Directory),
            _ => None,
        }
    }
}

impl std::fmt::Display for UncoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-core microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions issued (and retired) per cycle.
    pub issue_width: u32,
    /// Maximum in-flight instructions (the instruction window).
    pub window: usize,
    /// Outstanding L1 misses supported (lock-up-free L1).
    pub mshrs: usize,
    /// L1 hit latency in cycles (load-to-use).
    pub l1_hit_latency: u64,
    /// Integer ALU latency.
    pub int_latency: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Integer divide latency.
    pub div_latency: u64,
    /// FP add/compare latency.
    pub fp_latency: u64,
    /// FP multiply/divide latency.
    pub fp_mul_latency: u64,
    /// Front-end stall after a mispredicted branch.
    pub mispredict_penalty: u64,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            issue_width: 4,
            window: 64,
            mshrs: 8,
            l1_hit_latency: 2,
            int_latency: 1,
            mul_latency: 3,
            div_latency: 12,
            fp_latency: 4,
            fp_mul_latency: 6,
            mispredict_penalty: 10,
            l1i: CacheConfig::l1(),
            l1d: CacheConfig::l1(),
        }
    }
}

/// Uncore (manager-side) parameters: the snooping bus, the shared L2 and
/// the synchronisation device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncoreConfig {
    /// Request-bus occupancy per transaction, in cycles. One cycle makes
    /// bus conflicts possible at a critical latency of 1 (paper §1).
    pub req_bus_cycles: u64,
    /// Response-bus occupancy per data transfer, in cycles.
    pub resp_bus_cycles: u64,
    /// L2 hit latency (paper: 8 cycles).
    pub l2_hit_latency: u64,
    /// L2 miss (memory) latency (paper: 100 cycles).
    pub l2_miss_latency: u64,
    /// Latency of a cache-to-cache transfer from a remote M owner.
    pub cache_to_cache_latency: u64,
    /// Latency of an ownership upgrade without data transfer.
    pub upgrade_latency: u64,
    /// Snoop-delivery latency of invalidations/downgrades after the grant.
    pub snoop_latency: u64,
    /// Latency from last barrier arrival to release.
    pub barrier_latency: u64,
    /// Lock grant/handover latency.
    pub lock_latency: u64,
    /// Directory-bank lookup occupancy per transaction (directory uncore
    /// only): the bank port is busy this long per access.
    pub dir_lookup_latency: u64,
    /// Point-to-point network hop latency between a core and a directory
    /// bank (directory uncore only; replaces the broadcast bus cycle).
    pub net_latency: u64,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
}

impl Default for UncoreConfig {
    fn default() -> Self {
        UncoreConfig {
            req_bus_cycles: 1,
            resp_bus_cycles: 1,
            l2_hit_latency: 8,
            l2_miss_latency: 100,
            cache_to_cache_latency: 10,
            upgrade_latency: 3,
            snoop_latency: 1,
            barrier_latency: 4,
            lock_latency: 2,
            dir_lookup_latency: 4,
            net_latency: 3,
            l2: CacheConfig::l2(),
        }
    }
}

/// Full target-CMP configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmpConfig {
    /// Number of target cores (paper: 8).
    pub cores: usize,
    /// Which interconnect the uncore instantiates (paper: the bus).
    pub uncore_kind: UncoreKind,
    /// Per-core parameters.
    pub core: CoreConfig,
    /// Shared-resource parameters.
    pub uncore: UncoreConfig,
}

impl CmpConfig {
    /// The paper's 8-core target.
    pub fn paper() -> Self {
        CmpConfig::default()
    }

    /// A target with a different core count but otherwise paper
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or exceeds 16 (the sharer bitmask width used
    /// by the cache status map).
    pub fn with_cores(cores: usize) -> Self {
        assert!(
            (1..=16).contains(&cores),
            "core count must be between 1 and 16"
        );
        CmpConfig {
            cores,
            ..CmpConfig::default()
        }
    }

    /// A target with the given interconnect and core count but otherwise
    /// paper parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or exceeds the interconnect's ceiling
    /// ([`UncoreKind::max_cores`]); callers with unvalidated input should
    /// check the ceiling first.
    pub fn with_uncore(kind: UncoreKind, cores: usize) -> Self {
        let max = kind.max_cores();
        assert!(
            (1..=max).contains(&cores),
            "core count must be between 1 and {max} for the {kind} uncore"
        );
        CmpConfig {
            cores,
            uncore_kind: kind,
            ..CmpConfig::default()
        }
    }
}

impl Default for CmpConfig {
    fn default() -> Self {
        CmpConfig {
            cores: 8,
            uncore_kind: UncoreKind::default(),
            core: CoreConfig::default(),
            uncore: UncoreConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = CmpConfig::paper();
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.core.issue_width, 4);
        assert_eq!(cfg.core.window, 64);
        assert_eq!(cfg.uncore.l2_hit_latency, 8);
        assert_eq!(cfg.uncore.l2_miss_latency, 100);
        assert_eq!(cfg.core.l1d.size_bytes, 16 * 1024);
        assert_eq!(cfg.uncore.l2.size_bytes, 256 * 1024);
    }

    #[test]
    fn with_cores() {
        assert_eq!(CmpConfig::with_cores(4).cores, 4);
    }

    #[test]
    #[should_panic(expected = "between 1 and 16")]
    fn zero_cores_rejected() {
        let _ = CmpConfig::with_cores(0);
    }

    #[test]
    #[should_panic(expected = "between 1 and 16")]
    fn too_many_cores_rejected() {
        let _ = CmpConfig::with_cores(17);
    }

    #[test]
    fn directory_uncore_lifts_the_core_cap() {
        let cfg = CmpConfig::with_uncore(UncoreKind::Directory, 64);
        assert_eq!(cfg.cores, 64);
        assert_eq!(cfg.uncore_kind, UncoreKind::Directory);
        assert_eq!(UncoreKind::Bus.max_cores(), 16);
        assert_eq!(UncoreKind::Directory.max_cores(), 1024);
    }

    #[test]
    #[should_panic(expected = "between 1 and 1024")]
    fn directory_core_cap_still_enforced() {
        let _ = CmpConfig::with_uncore(UncoreKind::Directory, 2048);
    }

    #[test]
    fn uncore_kind_spellings_round_trip() {
        for kind in [UncoreKind::Bus, UncoreKind::Directory] {
            assert_eq!(UncoreKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(UncoreKind::parse("ring"), None);
    }
}
