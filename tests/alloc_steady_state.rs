//! Proves the threaded manager loop is allocation-free at steady state.
//!
//! Strategy: a counting `#[global_allocator]` wraps the system allocator.
//! For each engine, two identical runs that differ only in commit target
//! (X vs 3X) are measured; the difference in allocation count is what the
//! extra ~2X of simulated work cost. Under cycle-by-cycle pacing the two
//! engines perform bit-identical simulation work, so the *models*
//! (caches, MSHRs, bus bookkeeping) contribute the same allocation growth
//! to both — any scaling difference is the threaded engine's own
//! machinery: the manager loop, the SPSC event transport, and the wait
//! ladders.
//!
//! The manager loop drains rings into persistent scratch buffers,
//! batch-inserts into the global queue, and records metrics through
//! pre-interned keys, so its steady state performs no heap allocation.
//! One allocation per serviced event would add ~5% to the threaded delta
//! below; one per manager iteration (manager iterations far outnumber
//! cycles) would multiply it. Both trip the threshold.
//!
//! This lives in its own integration-test binary so the allocator wrapper
//! cannot perturb any other test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_for_run(
    engine: slacksim::EngineKind,
    scheme: slacksim::scheme::Scheme,
    commit: u64,
) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = slacksim::Simulation::new(slacksim::Benchmark::Fft)
        .cores(8)
        .commit_target(commit)
        .seed(1)
        .scheme(scheme)
        .engine(engine)
        .run()
        .expect("run");
    assert!(report.committed >= commit);
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Allocation growth attributable to ~2X extra steady-state work.
fn steady_delta(engine: slacksim::EngineKind, scheme: &slacksim::scheme::Scheme) -> u64 {
    // Warm-up run absorbs one-time lazy initialization.
    let _ = allocs_for_run(engine, scheme.clone(), 5_000);
    let short = allocs_for_run(engine, scheme.clone(), 20_000);
    let long = allocs_for_run(engine, scheme.clone(), 60_000);
    long.saturating_sub(short)
}

#[test]
fn threaded_manager_loop_is_allocation_free_at_steady_state() {
    use slacksim::scheme::Scheme;
    use slacksim::EngineKind;

    // Cycle-by-cycle: both engines do bit-identical simulation work, so
    // the model-side allocation growth cancels out of the comparison.
    let seq = steady_delta(EngineKind::Sequential, &Scheme::CycleByCycle);
    let thr = steady_delta(EngineKind::Threaded, &Scheme::CycleByCycle);

    // The threaded engine's extra growth over sequential must stay a
    // small fraction: per-event or per-iteration allocation anywhere in
    // the manager loop or the ring transport would exceed this
    // immediately (measured headroom is ~1.10x; one alloc per serviced
    // event alone pushes past 1.19x, per manager iteration far beyond).
    assert!(
        thr as f64 <= seq as f64 * 1.15,
        "threaded steady-state allocation growth ({thr}) exceeds \
         sequential ({seq}) by more than 15% — the manager loop or event \
         transport is allocating per unit of work"
    );

    // Slack pacing exercises the greedy manager path (per-core window
    // publication, adaptive backoff). Interleavings are nondeterministic,
    // so the threshold is looser, but per-iteration allocation would
    // still blow far past it.
    let seq = steady_delta(EngineKind::Sequential, &Scheme::BoundedSlack { bound: 16 });
    let thr = steady_delta(EngineKind::Threaded, &Scheme::BoundedSlack { bound: 16 });
    assert!(
        thr as f64 <= seq as f64 * 1.5,
        "threaded greedy-path steady-state allocation growth ({thr}) far \
         exceeds sequential ({seq})"
    );
}

fn allocs_for_instrumented_run(
    engine: slacksim::EngineKind,
    scheme: slacksim::scheme::Scheme,
    commit: u64,
) -> u64 {
    use std::sync::{Arc, Mutex};
    // Pre-reserved so appending beats never grows the capture buffer —
    // the quantity under test is the engine's and emitter's steady
    // state, not the sink's.
    let capture = Arc::new(Mutex::new(String::with_capacity(1 << 20)));
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = {
        let mut sim = slacksim::Simulation::new(slacksim::Benchmark::Fft);
        sim.cores(8)
            .commit_target(commit)
            .seed(1)
            .scheme(scheme)
            .engine(engine)
            .profile(true)
            .live(
                slacksim::LiveConfig::new()
                    .every(std::time::Duration::from_millis(1))
                    .to_capture(Arc::clone(&capture)),
            );
        sim.run().expect("run")
    };
    assert!(report.committed >= commit);
    assert!(
        !capture.lock().unwrap().is_empty(),
        "emitter beat at least once"
    );
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Allocation growth of an instrumented (profiler + live emitter) run
/// attributable to ~2X extra steady-state work.
fn steady_delta_instrumented(
    engine: slacksim::EngineKind,
    scheme: &slacksim::scheme::Scheme,
) -> u64 {
    let _ = allocs_for_instrumented_run(engine, scheme.clone(), 5_000);
    let short = allocs_for_instrumented_run(engine, scheme.clone(), 20_000);
    let long = allocs_for_instrumented_run(engine, scheme.clone(), 60_000);
    long.saturating_sub(short)
}

/// Profiling spans are two monotonic clock reads and a few relaxed
/// atomics; heartbeat rendering reuses one pre-sized buffer and the
/// engine publishes telemetry through plain atomic stores. None of it
/// may allocate per unit of simulated work: an instrumented run's
/// steady-state allocation growth must match an uninstrumented one's.
/// Per-run constants (emitter thread, profiler arena, render buffer)
/// cancel out of the short/long difference.
#[test]
fn profiling_and_live_emission_are_allocation_free_at_steady_state() {
    use slacksim::scheme::Scheme;
    use slacksim::EngineKind;

    for engine in [EngineKind::Sequential, EngineKind::Threaded] {
        let plain = steady_delta(engine, &Scheme::CycleByCycle);
        let instrumented = steady_delta_instrumented(engine, &Scheme::CycleByCycle);
        assert!(
            instrumented as f64 <= plain as f64 * 1.15 + 256.0,
            "{engine:?}: instrumented steady-state allocation growth \
             ({instrumented}) exceeds uninstrumented ({plain}) — a span \
             guard, telemetry store or heartbeat render is allocating per \
             unit of work"
        );
    }
}
