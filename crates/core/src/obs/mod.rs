//! Observability: in-tree tracing, metrics, host-time self-profiling and
//! live telemetry with per-core timeline export.
//!
//! The subsystem has five layers, all dependency-free:
//!
//! * [`trace`] — a [`Tracer`] handing out per-thread [`TraceHandle`]s, each
//!   a bounded ring buffer of typed [`TraceEvent`]s. Recording while
//!   disabled costs one relaxed atomic load.
//! * [`metrics`] — a [`MetricsRegistry`] of named gauge time series and
//!   log2-bucketed [`Histogram`]s, sampled every N global cycles.
//! * [`prof`] — a scoped host-time span profiler ([`Profiler`] /
//!   [`ProfScope`]) over the fixed [`ProfSite`] enum, attributing
//!   wall-clock self-time to core ticks, wait-ladder tiers, manager work,
//!   checkpointing, persist I/O and export.
//! * [`live`] — a heartbeat emitter writing one line of JSON per host-time
//!   cadence tick (progress, commits/s, ETA, queue depths, per-site
//!   host-time shares) sourced from engine-published atomics.
//! * [`export`] — hand-rolled Chrome Trace Event Format JSON (open the file
//!   in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`), a
//!   long-format CSV dump, and the host-time profile table; [`json`] is the
//!   matching minimal parser used to validate emitted documents in tests.
//!
//! The engines own the wiring: when [`ObsConfig`] is present in the engine
//! configuration they create an enabled tracer plus registry, instrument
//! their loops, and attach the drained [`ObsData`] to the final
//! `SimReport`. When absent, a disabled tracer keeps every instrumentation
//! site effectively free.

pub mod export;
pub mod json;
pub mod live;
pub mod metrics;
pub mod prof;
pub mod trace;

pub use export::{chrome_trace_json, escape_json, metrics_csv, prof_csv, prof_table};
pub use live::{LiveConfig, LiveStats, HEARTBEAT_VERSION};
pub use metrics::{GaugeId, HistId, Histogram, MetricsRegistry, SeriesPoint};
pub use prof::{ProfData, ProfHandle, ProfScope, ProfSite, Profiler};
pub use trace::{Phase, QueueKind, TraceEvent, TraceHandle, TraceRecord, Tracer};

/// Configuration for a run's observability instrumentation.
///
/// # Examples
///
/// ```
/// use slacksim_core::obs::ObsConfig;
///
/// let cfg = ObsConfig::default();
/// assert!(cfg.trace_capacity > 0);
/// assert!(cfg.sample_every > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Ring-buffer capacity of each per-thread trace handle; when a ring
    /// fills, the oldest records are dropped (and counted) so memory stays
    /// bounded on arbitrarily long runs.
    pub trace_capacity: usize,
    /// Gauge sampling cadence in global simulated cycles.
    pub sample_every: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace_capacity: 1 << 16,
            sample_every: 1024,
        }
    }
}

impl ObsConfig {
    /// Overrides the gauge sampling cadence (0 is clamped to 1).
    #[must_use]
    pub fn with_sample_every(mut self, cycles: u64) -> Self {
        self.sample_every = cycles.max(1);
        self
    }

    /// Overrides the per-thread trace ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be > 0");
        self.trace_capacity = capacity;
        self
    }
}

/// Everything observability collected during one run, attached to the
/// `SimReport` when tracing was configured.
#[derive(Debug, Clone, Default)]
pub struct ObsData {
    /// Number of target cores (defines the trace track layout).
    pub cores: usize,
    /// Every trace record that survived the ring buffers.
    pub records: Vec<TraceRecord>,
    /// Records dropped because a ring buffer overflowed.
    pub dropped: u64,
    /// The sampled gauges and histograms.
    pub metrics: MetricsRegistry,
}

impl ObsData {
    /// Renders the per-core timeline as a Chrome Trace Event Format JSON
    /// document (see [`export::chrome_trace_json`]).
    pub fn chrome_trace_json(&self) -> String {
        export::chrome_trace_json(self)
    }

    /// Renders the metrics registry as long-format CSV (see
    /// [`export::metrics_csv`]).
    pub fn metrics_csv(&self) -> String {
        export::metrics_csv(self)
    }

    /// A short multi-line human summary, rendered by the CLI under
    /// `--verbose`.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for rec in &self.records {
            let key = match rec.event {
                TraceEvent::LocalTimeSample { .. } => "local-time samples",
                TraceEvent::Violation { .. } => "violation instants",
                TraceEvent::BoundChange { .. } => "bound changes",
                TraceEvent::Checkpoint { .. } => "checkpoints",
                TraceEvent::Rollback { .. } => "rollbacks",
                TraceEvent::ReplayEnd { .. } => "replays",
                TraceEvent::ManagerWait { .. } => "manager waits",
                TraceEvent::QueueDepth { .. } => "queue-depth samples",
                TraceEvent::PhaseBegin { .. } | TraceEvent::PhaseEnd { .. } => "phase marks",
                TraceEvent::StatePersist { .. } => "state persists",
                TraceEvent::StateRestore { .. } => "state restores",
            };
            *counts.entry(key).or_default() += 1;
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "observability: {} trace records ({} dropped), {} gauge series, {} histograms",
            self.records.len(),
            self.dropped,
            self.metrics.gauges().count(),
            self.metrics.histograms().count(),
        );
        for (key, n) in counts {
            let _ = writeln!(out, "  {key}: {n}");
        }
        for (name, h) in self.metrics.histograms() {
            let _ = writeln!(
                out,
                "  hist {name}: n={} mean={:.1} p99={} max={}",
                h.count(),
                h.mean(),
                h.percentile(0.99),
                h.max(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CoreId;
    use crate::time::Cycle;

    #[test]
    fn default_config_is_sane() {
        let cfg = ObsConfig::default();
        assert_eq!(cfg.trace_capacity, 1 << 16);
        assert_eq!(cfg.sample_every, 1024);
        assert_eq!(cfg.with_sample_every(0).sample_every, 1);
    }

    #[test]
    fn summary_counts_event_classes() {
        let tracer = Tracer::new(16);
        let mut h = tracer.handle();
        h.record(
            Cycle::new(1),
            TraceEvent::PhaseBegin {
                core: CoreId::new(0),
                phase: Phase::Run,
            },
        );
        h.record(
            Cycle::new(2),
            TraceEvent::BoundChange {
                old: 4,
                new: 8,
                rate: 0.0,
            },
        );
        h.flush();
        let (records, dropped) = tracer.drain();
        let obs = ObsData {
            cores: 1,
            records,
            dropped,
            metrics: MetricsRegistry::default(),
        };
        let s = obs.summary();
        assert!(s.contains("2 trace records"));
        assert!(s.contains("phase marks: 1"));
        assert!(s.contains("bound changes: 1"));
    }
}
