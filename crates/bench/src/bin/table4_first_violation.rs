//! Regenerates Table 4: mean distance from interval start to the first
//! violation.

use slacksim_bench::experiments::table34;
use slacksim_bench::scale::Scale;

fn main() {
    let scale = Scale::from_env(2_000_000);
    let stats = table34::measure(&scale);
    println!("{}", table34::render_table4(&stats));
}
