//! Regenerates Table 2: wall-clock simulation time of CC, unbounded
//! slack, adaptive slack, and adaptive slack with periodic checkpoints.

use slacksim_bench::experiments::table2;
use slacksim_bench::scale::Scale;

fn main() {
    let scale = Scale::from_env(200_000);
    let rows = table2::measure(&scale);
    println!("{}", table2::render(&rows));
}
