//! Live run telemetry: a host-time-cadence heartbeat emitted while the
//! simulation runs.
//!
//! The emitter is a plain observer thread. Engine threads publish their
//! progress into a [`LiveStats`] block of relaxed atomics (stores they
//! already make, or one extra relaxed store per manager iteration) and the
//! emitter reads those atomics — plus the profiler's shared per-site
//! accumulators — on its own clock. Cores are never stalled: no lock is
//! shared with the simulation, and the emitter never registers with the
//! host scheduler, so conformance runs under a virtual scheduler are
//! unperturbed.
//!
//! Each beat is one line of JSON (schema version
//! [`HEARTBEAT_VERSION`]) written to any combination of three sinks:
//! stderr, an atomically-replaced status file (write temp + rename, so
//! readers like `watch jq . status.json` never see a torn line), and an
//! in-memory capture buffer for tests and embedders. A final beat is
//! always emitted when the run finishes, so even runs shorter than the
//! cadence produce one complete heartbeat.
//!
//! In steady state the emitter allocates nothing for stderr and capture
//! sinks: the line is formatted into a reused buffer and site names are
//! `&'static str`. (The file sink goes through OS path APIs, which
//! allocate inside the standard library — on the emitter thread only.)

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use super::prof::{ProfSite, Profiler};

/// Version of the heartbeat JSON schema (the `v` field). Bump when fields
/// change meaning or are removed; adding fields is backward-compatible.
pub const HEARTBEAT_VERSION: u64 = 1;

/// Sentinel stored in [`LiveStats::bound`] when the active scheme has no
/// finite slack bound (rendered as `null` in the heartbeat).
pub const NO_BOUND: u64 = u64::MAX;

/// Where and how often the heartbeat is emitted.
#[derive(Debug, Clone, Default)]
pub struct LiveConfig {
    /// Host-time cadence between beats; `None` uses
    /// [`LiveConfig::DEFAULT_EVERY`].
    pub every: Option<Duration>,
    /// Emit each beat to stderr.
    pub stderr: bool,
    /// Emit each beat by atomically replacing this file (write to a
    /// sibling temp file, then rename).
    pub path: Option<PathBuf>,
    /// Append each beat to this shared buffer (tests and embedders).
    pub capture: Option<Arc<Mutex<String>>>,
}

impl LiveConfig {
    /// Default cadence between beats.
    pub const DEFAULT_EVERY: Duration = Duration::from_millis(250);

    /// Creates a config with the default cadence and no sinks; chain the
    /// builder methods to add at least one sink.
    pub fn new() -> Self {
        LiveConfig::default()
    }

    /// Sets the cadence between beats.
    #[must_use]
    pub fn every(mut self, every: Duration) -> Self {
        self.every = Some(every);
        self
    }

    /// Adds the stderr sink.
    #[must_use]
    pub fn to_stderr(mut self) -> Self {
        self.stderr = true;
        self
    }

    /// Adds the atomically-replaced status-file sink.
    #[must_use]
    pub fn to_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Adds the in-memory capture sink (each beat line is appended).
    #[must_use]
    pub fn to_capture(mut self, buf: Arc<Mutex<String>>) -> Self {
        self.capture = Some(buf);
        self
    }

    /// The effective cadence.
    pub fn cadence(&self) -> Duration {
        self.every
            .unwrap_or(Self::DEFAULT_EVERY)
            .max(Duration::from_millis(1))
    }

    /// Whether any sink is configured (engines skip spawning otherwise).
    pub fn has_sink(&self) -> bool {
        self.stderr || self.path.is_some() || self.capture.is_some()
    }
}

/// The atomics engine threads publish into and the emitter reads from.
/// All accesses are relaxed: each value is an independent gauge and a
/// slightly stale read is fine.
#[derive(Debug, Default)]
pub struct LiveStats {
    /// Current global simulated cycle.
    pub global: AtomicU64,
    /// Aggregate committed instructions so far.
    pub committed: AtomicU64,
    /// The run's commit target (set once at start).
    pub commit_target: AtomicU64,
    /// Current slack bound in cycles, or [`NO_BOUND`].
    pub bound: AtomicU64,
    /// Violations surviving in the committed timeline so far.
    pub violations: AtomicU64,
    /// Events queued core→manager (sum over cores' OutQs).
    pub outq_depth: AtomicU64,
    /// Events queued manager→core (sum over cores' InQs).
    pub inq_depth: AtomicU64,
    /// Events in the manager's global arrival-ordered queue.
    pub globalq_depth: AtomicU64,
    /// Trace records dropped to ring overflow so far.
    pub dropped_traces: AtomicU64,
    /// Checkpoints taken so far.
    pub checkpoints: AtomicU64,
    /// Rollbacks taken so far.
    pub rollbacks: AtomicU64,
    /// Events queued shard→root (one gauge per remote shard; empty for
    /// single-manager runs, which then omit the `shardq` field).
    pub shard_fwd_depth: Vec<AtomicU64>,
}

impl LiveStats {
    /// Creates a zeroed stats block with no bound set.
    pub fn new() -> Self {
        let s = LiveStats::default();
        s.bound.store(NO_BOUND, Ordering::Relaxed);
        s
    }

    /// Creates a stats block with one shard→root queue gauge per remote
    /// shard (threaded engine with `shards > 1`).
    pub fn with_shards(remote_shards: usize) -> Self {
        let mut s = LiveStats::new();
        s.shard_fwd_depth = (0..remote_shards).map(|_| AtomicU64::new(0)).collect();
        s
    }
}

/// Handle to a running emitter thread; call [`finish`](Self::finish) (or
/// drop) to emit the terminal beat and join.
#[derive(Debug)]
pub struct LiveHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl LiveHandle {
    /// Signals the emitter to write one final beat and joins it.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(join) = self.join.take() {
            self.stop.store(true, Ordering::Release);
            join.thread().unpark();
            let _ = join.join();
        }
    }
}

impl Drop for LiveHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the emitter thread. `stats` is the engine-published gauge
/// block, `prof` the run's profiler (its per-site shares appear in each
/// beat; pass [`Profiler::disabled`] when not profiling — the `sites`
/// object is then empty).
pub fn spawn(cfg: LiveConfig, stats: Arc<LiveStats>, prof: Profiler) -> LiveHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("slacksim-live".into())
        .spawn(move || emitter_loop(cfg, stats, prof, stop2))
        .expect("spawn live emitter thread");
    LiveHandle {
        stop,
        join: Some(join),
    }
}

fn emitter_loop(cfg: LiveConfig, stats: Arc<LiveStats>, prof: Profiler, stop: Arc<AtomicBool>) {
    let start = Instant::now();
    let every = cfg.cadence();
    let tmp_path = cfg.path.as_ref().map(|p| {
        let mut tmp = p.as_os_str().to_owned();
        tmp.push(".tmp");
        PathBuf::from(tmp)
    });
    let mut buf = String::with_capacity(2048);
    let start_committed = stats.committed.load(Ordering::Relaxed);
    let mut prev = Beat {
        at: start,
        committed: start_committed,
        start_committed,
        terminal: false,
    };
    let mut next = start + every;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let now = Instant::now();
        if stopping || now >= next {
            prev.terminal = stopping;
            render_heartbeat(&mut buf, start, &stats, &prof, &mut prev);
            emit(&cfg, tmp_path.as_deref(), &buf);
            if stopping {
                return;
            }
            next = now + every;
        }
        let now = Instant::now();
        if now < next && !stop.load(Ordering::Acquire) {
            std::thread::park_timeout(next - now);
        }
    }
}

/// Rate bookkeeping between consecutive beats.
struct Beat {
    at: Instant,
    committed: u64,
    /// Committed count when the emitter started, for the lifetime average.
    start_committed: u64,
    /// Set for the final beat: report the lifetime average instead of the
    /// (empty) last window.
    terminal: bool,
}

/// Writes one `\n`-terminated heartbeat line into `buf` (replacing its
/// contents). Allocation-free once `buf` has capacity.
fn render_heartbeat(
    buf: &mut String,
    start: Instant,
    stats: &LiveStats,
    prof: &Profiler,
    prev: &mut Beat,
) {
    let now = Instant::now();
    let elapsed_ms = now.duration_since(start).as_millis() as u64;
    let global = stats.global.load(Ordering::Relaxed);
    let committed = stats.committed.load(Ordering::Relaxed);
    let target = stats.commit_target.load(Ordering::Relaxed);
    let bound = stats.bound.load(Ordering::Relaxed);
    let violations = stats.violations.load(Ordering::Relaxed);

    let progress = if target > 0 {
        (committed as f64 / target as f64).min(1.0)
    } else {
        0.0
    };
    // In-flight beats report the rate over the window since the previous
    // beat (what the run is doing *now*); the terminal beat reports the
    // lifetime average, since its window is empty by construction — the
    // engine publishes the final tallies and stops the emitter in the
    // same breath.
    let (window_s, base_committed) = if prev.terminal {
        (
            now.duration_since(start).as_secs_f64(),
            prev.start_committed,
        )
    } else {
        (now.duration_since(prev.at).as_secs_f64(), prev.committed)
    };
    let commits_per_sec = if window_s > 0.0 {
        committed.saturating_sub(base_committed) as f64 / window_s
    } else {
        0.0
    };
    prev.at = now;
    prev.committed = committed;
    let remaining = target.saturating_sub(committed);
    let eta_ms = if commits_per_sec > 0.0 && remaining > 0 {
        // A near-zero rate in the first beats (warmup: a commit or two
        // against a distant target) pushes this product past u64 range;
        // the saturating cast would then report u64::MAX milliseconds as
        // a live ETA. Anything that does not fit is simply unknown.
        let ms = remaining as f64 / commits_per_sec * 1000.0;
        (ms.is_finite() && ms < u64::MAX as f64).then_some(ms as u64)
    } else {
        None
    };
    let violation_rate = if committed > 0 {
        violations as f64 / committed as f64 * 100.0
    } else {
        0.0
    };

    buf.clear();
    let _ = write!(
        buf,
        r#"{{"v":{HEARTBEAT_VERSION},"elapsed_ms":{elapsed_ms},"progress":"#
    );
    write_f64(buf, progress);
    let _ = write!(
        buf,
        r#","committed":{committed},"commit_target":{target},"commits_per_sec":"#
    );
    write_f64(buf, commits_per_sec);
    let _ = write!(buf, r#","eta_ms":"#);
    match eta_ms {
        Some(ms) => {
            let _ = write!(buf, "{ms}");
        }
        None => buf.push_str("null"),
    }
    let _ = write!(buf, r#","global_cycle":{global},"bound":"#);
    if bound == NO_BOUND {
        buf.push_str("null");
    } else {
        let _ = write!(buf, "{bound}");
    }
    let _ = write!(buf, r#","violations":{violations},"violation_rate":"#);
    write_f64(buf, violation_rate);
    let _ = write!(
        buf,
        r#","queues":{{"outq":{},"inq":{},"globalq":{}"#,
        stats.outq_depth.load(Ordering::Relaxed),
        stats.inq_depth.load(Ordering::Relaxed),
        stats.globalq_depth.load(Ordering::Relaxed),
    );
    if !stats.shard_fwd_depth.is_empty() {
        buf.push_str(r#","shardq":["#);
        for (i, d) in stats.shard_fwd_depth.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "{}", d.load(Ordering::Relaxed));
        }
        buf.push(']');
    }
    let _ = write!(
        buf,
        r#"}},"dropped_traces":{},"checkpoints":{},"rollbacks":{}"#,
        stats.dropped_traces.load(Ordering::Relaxed),
        stats.checkpoints.load(Ordering::Relaxed),
        stats.rollbacks.load(Ordering::Relaxed),
    );
    buf.push_str(r#","sites":{"#);
    let total_self = prof.total_self_ns();
    let mut first = true;
    if total_self > 0 {
        for site in ProfSite::ALL {
            let (count, self_ns, _) = prof.site_totals(site);
            if count == 0 {
                continue;
            }
            if !first {
                buf.push(',');
            }
            first = false;
            let _ = write!(buf, r#""{}":"#, site.name());
            write_f64(buf, self_ns as f64 / total_self as f64);
        }
    }
    buf.push_str("}}\n");
}

/// Formats a float as a finite JSON number (non-finite become 0).
pub(crate) fn write_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(buf, "{v:.6}");
    } else {
        buf.push('0');
    }
}

/// Writes one rendered beat line to every configured sink. Shared with
/// the campaign emitter (`campaign::live`), which reuses the same sink
/// vocabulary on its own schema.
pub(crate) fn emit(cfg: &LiveConfig, tmp_path: Option<&std::path::Path>, line: &str) {
    if cfg.stderr {
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(line.as_bytes());
    }
    if let (Some(path), Some(tmp)) = (cfg.path.as_deref(), tmp_path) {
        let replaced =
            std::fs::write(tmp, line.as_bytes()).and_then(|()| std::fs::rename(tmp, path));
        if let Err(e) = replaced {
            eprintln!(
                "warning: live status write to {} failed: {e}",
                path.display()
            );
        }
    }
    if let Some(capture) = &cfg.capture {
        let mut sink = capture.lock().expect("live capture sink poisoned");
        sink.push_str(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json::Json;
    use crate::obs::prof::ProfSite;

    fn demo_stats() -> Arc<LiveStats> {
        let stats = Arc::new(LiveStats::new());
        stats.global.store(9_000, Ordering::Relaxed);
        stats.committed.store(4_500, Ordering::Relaxed);
        stats.commit_target.store(10_000, Ordering::Relaxed);
        stats.bound.store(16, Ordering::Relaxed);
        stats.violations.store(9, Ordering::Relaxed);
        stats.globalq_depth.store(3, Ordering::Relaxed);
        stats
    }

    #[test]
    fn heartbeat_line_is_valid_versioned_json() {
        let stats = demo_stats();
        let prof = Profiler::enabled();
        let h = prof.handle();
        drop(h.enter(ProfSite::CoreTick));
        let mut buf = String::new();
        let start = Instant::now();
        let mut prev = Beat {
            at: start,
            committed: 0,
            start_committed: 0,
            terminal: false,
        };
        render_heartbeat(&mut buf, start, &stats, &prof, &mut prev);
        assert!(buf.ends_with('\n'));
        assert_eq!(buf.lines().count(), 1, "single-line heartbeat");
        let v = Json::parse(buf.trim_end()).expect("valid JSON heartbeat");
        assert_eq!(
            v.get("v").and_then(Json::as_f64),
            Some(HEARTBEAT_VERSION as f64)
        );
        assert_eq!(v.get("committed").and_then(Json::as_f64), Some(4_500.0));
        assert_eq!(v.get("bound").and_then(Json::as_f64), Some(16.0));
        let progress = v.get("progress").and_then(Json::as_f64).unwrap();
        assert!((progress - 0.45).abs() < 1e-9);
        let sites = v.get("sites").and_then(Json::as_object).unwrap();
        assert!(sites.contains_key("core-tick"));
        let share = sites["core-tick"].as_f64().unwrap();
        assert!((share - 1.0).abs() < 1e-9, "single site owns all self time");
    }

    #[test]
    fn unbounded_run_renders_null_bound_and_eta() {
        let stats = Arc::new(LiveStats::new());
        let prof = Profiler::disabled();
        let mut buf = String::new();
        let start = Instant::now();
        let mut prev = Beat {
            at: start,
            committed: 0,
            start_committed: 0,
            terminal: false,
        };
        render_heartbeat(&mut buf, start, &stats, &prof, &mut prev);
        let v = Json::parse(buf.trim_end()).expect("valid JSON");
        assert_eq!(v.get("bound"), Some(&Json::Null));
        assert_eq!(v.get("eta_ms"), Some(&Json::Null));
        let sites = v.get("sites").and_then(Json::as_object).unwrap();
        assert!(sites.is_empty(), "disabled profiler => empty sites");
    }

    #[test]
    fn warmup_beats_never_report_a_saturated_eta() {
        // Regression: the first beats of a run see a near-zero commit
        // rate against a distant target; the ETA product then exceeds
        // u64 range and the old saturating cast reported u64::MAX ms.
        let stats = Arc::new(LiveStats::new());
        stats.committed.store(1, Ordering::Relaxed);
        stats.commit_target.store(u64::MAX, Ordering::Relaxed);
        let prof = Profiler::disabled();
        let mut buf = String::new();
        let start = Instant::now();
        let mut prev = Beat {
            at: start,
            committed: 0,
            start_committed: 0,
            terminal: false,
        };
        // Any window over ~1ms makes the rate small enough to overflow;
        // sleep well past that so the regression triggers deterministically.
        std::thread::sleep(Duration::from_millis(10));
        render_heartbeat(&mut buf, start, &stats, &prof, &mut prev);
        let v = Json::parse(buf.trim_end()).expect("valid JSON");
        let cps = v.get("commits_per_sec").and_then(Json::as_f64).unwrap();
        assert!(cps > 0.0, "a commit landed in the window");
        assert_eq!(
            v.get("eta_ms"),
            Some(&Json::Null),
            "an ETA that does not fit u64 must render as unknown, not u64::MAX"
        );
    }

    #[test]
    fn sharded_stats_render_per_shard_queue_depths() {
        let stats = Arc::new(LiveStats::with_shards(3));
        stats.shard_fwd_depth[0].store(5, Ordering::Relaxed);
        stats.shard_fwd_depth[2].store(7, Ordering::Relaxed);
        let prof = Profiler::disabled();
        let mut buf = String::new();
        let start = Instant::now();
        let mut prev = Beat {
            at: start,
            committed: 0,
            start_committed: 0,
            terminal: false,
        };
        render_heartbeat(&mut buf, start, &stats, &prof, &mut prev);
        let v = Json::parse(buf.trim_end()).expect("valid JSON");
        let queues = v.get("queues").and_then(Json::as_object).unwrap();
        let shardq = queues["shardq"].as_array().unwrap();
        let depths: Vec<f64> = shardq.iter().map(|d| d.as_f64().unwrap()).collect();
        assert_eq!(depths, vec![5.0, 0.0, 7.0]);

        // Single-manager stats omit the field entirely.
        let solo = Arc::new(LiveStats::new());
        render_heartbeat(&mut buf, start, &solo, &prof, &mut prev);
        let v = Json::parse(buf.trim_end()).expect("valid JSON");
        let queues = v.get("queues").and_then(Json::as_object).unwrap();
        assert!(!queues.contains_key("shardq"));
    }

    #[test]
    fn rendering_reuses_the_buffer_without_alloc() {
        let stats = demo_stats();
        let prof = Profiler::enabled();
        let mut buf = String::with_capacity(2048);
        let start = Instant::now();
        let mut prev = Beat {
            at: start,
            committed: 0,
            start_committed: 0,
            terminal: false,
        };
        render_heartbeat(&mut buf, start, &stats, &prof, &mut prev);
        let cap = buf.capacity();
        for _ in 0..100 {
            render_heartbeat(&mut buf, start, &stats, &prof, &mut prev);
        }
        assert_eq!(
            buf.capacity(),
            cap,
            "steady-state renders never grow the buffer"
        );
    }

    #[test]
    fn emitter_thread_beats_and_finishes_with_terminal_beat() {
        let capture = Arc::new(Mutex::new(String::with_capacity(1 << 16)));
        let cfg = LiveConfig::new()
            .every(Duration::from_millis(5))
            .to_capture(Arc::clone(&capture));
        let stats = demo_stats();
        let handle = spawn(cfg, Arc::clone(&stats), Profiler::disabled());
        std::thread::sleep(Duration::from_millis(40));
        stats.committed.store(10_000, Ordering::Relaxed);
        handle.finish();
        let out = capture.lock().unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines.len() >= 2,
            "expected several beats, got {}",
            lines.len()
        );
        for line in &lines {
            let v = Json::parse(line).expect("every beat parses");
            assert!(v.get("elapsed_ms").is_some());
        }
        // The terminal beat observed the final committed count.
        let last = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("committed").and_then(Json::as_f64), Some(10_000.0));
    }

    #[test]
    fn file_sink_atomically_replaces_status_file() {
        let dir = std::env::temp_dir().join(format!("slacksim-live-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("status.json");
        let cfg = LiveConfig::new()
            .every(Duration::from_millis(5))
            .to_file(&path);
        let handle = spawn(cfg, demo_stats(), Profiler::disabled());
        std::thread::sleep(Duration::from_millis(30));
        handle.finish();
        let contents = std::fs::read_to_string(&path).expect("status file exists");
        assert_eq!(contents.lines().count(), 1, "file holds exactly one beat");
        Json::parse(contents.trim_end()).expect("status file is valid JSON");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
