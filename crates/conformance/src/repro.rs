//! One-line replayable repro format for conformance failures.
//!
//! Every failing `(policy, sched_seed, mutation, config)` triple the
//! harness finds is printed as a single `conformance-repro v1 ...` line.
//! Pasting that line back into [`parse_repro`] + [`run_repro`]
//! (or a test's `SLACKSIM_CONFORMANCE_REPRO` hook) re-runs the exact
//! schedule: the virtual scheduler makes the whole run a pure function
//! of the line's fields.

use std::fmt;

use slacksim::scheme::Scheme;
use slacksim::Benchmark;

use crate::vsched::{Mutation, SchedPolicy};

/// A fully specified virtual-schedule conformance case.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtCase {
    /// Scheduling policy for the virtual scheduler.
    pub policy: SchedPolicy,
    /// Seed driving the policy's random choices.
    pub sched_seed: u64,
    /// Protocol mutation injected at the scheduler layer.
    pub mutation: Mutation,
    /// Workload.
    pub bench: Benchmark,
    /// Target core count.
    pub cores: usize,
    /// Manager-tree width for the threaded engine (1 = the classic
    /// single-manager loop).
    pub shards: usize,
    /// Slack scheme.
    pub scheme: Scheme,
    /// Aggregate committed-instruction target.
    pub target: u64,
    /// Simulation seed (workload streams).
    pub seed: u64,
}

impl fmt::Display for VirtCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conformance-repro v1 policy={} sched_seed={} mutation={} bench={} cores={} scheme={} target={} seed={}",
            self.policy,
            self.sched_seed,
            self.mutation,
            self.bench.name(),
            self.cores,
            format_scheme(&self.scheme),
            self.target,
            self.seed,
        )?;
        // Emitted only when sharded, so unsharded lines — the whole
        // corpus predating the manager tree — stay byte-stable.
        if self.shards != 1 {
            write!(f, " shards={}", self.shards)?;
        }
        Ok(())
    }
}

/// Encodes the schemes the oracle matrix uses as short stable tokens.
pub fn format_scheme(scheme: &Scheme) -> String {
    match scheme {
        Scheme::CycleByCycle => "cc".to_string(),
        Scheme::BoundedSlack { bound } => format!("bounded:{bound}"),
        Scheme::UnboundedSlack => "unbounded".to_string(),
        Scheme::Quantum { quantum } => format!("quantum:{quantum}"),
        other => other.name().to_string(),
    }
}

/// Parses a scheme token produced by [`format_scheme`].
pub fn parse_scheme(s: &str) -> Result<Scheme, String> {
    let (head, arg) = match s.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (s, None),
    };
    let num = |what: &str| -> Result<u64, String> {
        arg.ok_or_else(|| format!("scheme {head} needs :{what}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad {what} in scheme {s:?}: {e}"))
    };
    match head {
        "cc" => Ok(Scheme::CycleByCycle),
        "bounded" => Ok(Scheme::BoundedSlack {
            bound: num("bound")?,
        }),
        "unbounded" => Ok(Scheme::UnboundedSlack),
        "quantum" => Ok(Scheme::Quantum {
            quantum: num("quantum")?,
        }),
        _ => Err(format!(
            "unknown scheme {s:?} (expected cc, bounded:N, unbounded or quantum:N)"
        )),
    }
}

fn parse_policy(s: &str) -> Result<SchedPolicy, String> {
    match s.split_once(':') {
        None => match s {
            "random-walk" => Ok(SchedPolicy::RandomWalk),
            "park-race" => Ok(SchedPolicy::ParkRace),
            "drain-preempt" => Ok(SchedPolicy::DrainPreempt),
            _ => Err(format!("unknown policy {s:?}")),
        },
        Some(("starve", v)) => Ok(SchedPolicy::Starve {
            victim: v
                .parse()
                .map_err(|e| format!("bad starve victim {v:?}: {e}"))?,
        }),
        Some(_) => Err(format!("unknown policy {s:?}")),
    }
}

fn parse_mutation(s: &str) -> Result<Mutation, String> {
    match s.split_once(':') {
        None if s == "none" => Ok(Mutation::None),
        Some(("drop-unpark", n)) => Ok(Mutation::DropUnpark {
            nth: n
                .parse()
                .map_err(|e| format!("bad drop-unpark index {n:?}: {e}"))?,
        }),
        _ => Err(format!("unknown mutation {s:?}")),
    }
}

fn parse_bench(s: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name() == s)
        .ok_or_else(|| {
            let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
            format!("unknown bench {s:?} (expected one of {names:?})")
        })
}

/// Parses a `conformance-repro v1` line back into a runnable case.
///
/// # Errors
///
/// Returns a description of the first malformed or missing field.
pub fn parse_repro(line: &str) -> Result<VirtCase, String> {
    let mut words = line.split_whitespace();
    if words.next() != Some("conformance-repro") || words.next() != Some("v1") {
        return Err("repro line must start with \"conformance-repro v1\"".to_string());
    }
    let mut policy = None;
    let mut sched_seed = None;
    let mut mutation = None;
    let mut bench = None;
    let mut cores = None;
    let mut shards = None;
    let mut scheme = None;
    let mut target = None;
    let mut seed = None;
    for word in words {
        let (key, val) = word
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {word:?}"))?;
        let uint = || -> Result<u64, String> {
            val.parse().map_err(|e| format!("bad {key} {val:?}: {e}"))
        };
        match key {
            "policy" => policy = Some(parse_policy(val)?),
            "sched_seed" => sched_seed = Some(uint()?),
            "mutation" => mutation = Some(parse_mutation(val)?),
            "bench" => bench = Some(parse_bench(val)?),
            "cores" => {
                cores = Some(
                    val.parse::<usize>()
                        .map_err(|e| format!("bad cores {val:?}: {e}"))?,
                );
            }
            "shards" => {
                let n = val
                    .parse::<usize>()
                    .map_err(|e| format!("bad shards {val:?}: {e}"))?;
                if n == 0 {
                    return Err("shards must be at least 1".to_string());
                }
                shards = Some(n);
            }
            "scheme" => scheme = Some(parse_scheme(val)?),
            "target" => target = Some(uint()?),
            "seed" => seed = Some(uint()?),
            _ => return Err(format!("unknown field {key:?}")),
        }
    }
    fn need(what: &'static str) -> impl Fn() -> String {
        move || format!("missing field {what}")
    }
    Ok(VirtCase {
        policy: policy.ok_or_else(need("policy"))?,
        sched_seed: sched_seed.ok_or_else(need("sched_seed"))?,
        mutation: mutation.ok_or_else(need("mutation"))?,
        bench: bench.ok_or_else(need("bench"))?,
        cores: cores.ok_or_else(need("cores"))?,
        // Optional for back-compat: lines predating the manager tree
        // carry no shards field and mean the single-manager loop.
        shards: shards.unwrap_or(1),
        scheme: scheme.ok_or_else(need("scheme"))?,
        target: target.ok_or_else(need("target"))?,
        seed: seed.ok_or_else(need("seed"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VirtCase {
        VirtCase {
            policy: SchedPolicy::ParkRace,
            sched_seed: 42,
            mutation: Mutation::DropUnpark { nth: 3 },
            bench: Benchmark::Fft,
            cores: 4,
            shards: 1,
            scheme: Scheme::BoundedSlack { bound: 8 },
            target: 4_000,
            seed: 1,
        }
    }

    #[test]
    fn repro_line_round_trips() {
        let case = sample();
        let line = case.to_string();
        assert!(line.starts_with("conformance-repro v1 "), "{line}");
        assert!(!line.contains("shards="), "unsharded lines stay stable");
        assert_eq!(parse_repro(&line).expect("parses"), case);
    }

    #[test]
    fn sharded_repro_line_round_trips() {
        let mut case = sample();
        case.shards = 4;
        let line = case.to_string();
        assert!(line.ends_with(" shards=4"), "{line}");
        assert_eq!(parse_repro(&line).expect("parses"), case);
        assert!(parse_repro(&line.replace("shards=4", "shards=0")).is_err());
    }

    #[test]
    fn all_scheme_tokens_round_trip() {
        for scheme in [
            Scheme::CycleByCycle,
            Scheme::BoundedSlack { bound: 16 },
            Scheme::UnboundedSlack,
            Scheme::Quantum { quantum: 100 },
        ] {
            let tok = format_scheme(&scheme);
            assert_eq!(parse_scheme(&tok).expect("parses"), scheme, "{tok}");
        }
    }

    #[test]
    fn starve_policy_round_trips() {
        let mut case = sample();
        case.policy = SchedPolicy::Starve { victim: 2 };
        case.mutation = Mutation::None;
        assert_eq!(parse_repro(&case.to_string()).expect("parses"), case);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_repro("not-a-repro v1").is_err());
        assert!(parse_repro("conformance-repro v2 policy=random-walk").is_err());
        assert!(
            parse_repro("conformance-repro v1 policy=random-walk sched_seed=1").is_err(),
            "missing fields"
        );
        let mut line = sample().to_string();
        line.push_str(" bogus=1");
        assert!(parse_repro(&line).is_err());
        assert!(parse_scheme("bounded").is_err(), "missing bound");
        assert!(parse_scheme("warp:3").is_err());
    }
}
