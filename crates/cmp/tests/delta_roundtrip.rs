//! Randomised round-trip properties of the incremental checkpoint layer
//! (DESIGN §12): for every state holder, a delta captured against a
//! checkpoint baseline and applied to a clone of that baseline must
//! reproduce the live state bit-identically (per the model's equality,
//! which excludes tracking metadata), and `restore_from` must rewind a
//! diverged model to the baseline exactly. Chained deltas across several
//! checkpoints must compose. Inputs come from the in-tree deterministic
//! [`Xoshiro256`] RNG, so failures reproduce bit-identically.

use slacksim_cmp::bus::Bus;
use slacksim_cmp::cache::{Cache, CacheConfig, LineAddr};
use slacksim_cmp::event::MemEvent;
use slacksim_cmp::l2::L2;
use slacksim_cmp::map::CacheMap;
use slacksim_cmp::mesi::{BusOp, MesiState};
use slacksim_cmp::sync::SyncDevice;
use slacksim_core::checkpoint::Checkpointable;
use slacksim_core::engine::{ServiceSink, UncoreModel};
use slacksim_core::event::{CoreId, Timestamped};
use slacksim_core::rng::Xoshiro256;
use slacksim_core::time::Cycle;

const CASES: u64 = 48;

/// Drives `mutate` over three checkpoint epochs and checks every
/// delta-protocol law against full-clone ground truth:
///
/// 1. seed capture at the checkpoint is empty-equivalent (applying it to
///    the base is a no-op);
/// 2. `restore_from` rewinds a diverged model to the base;
/// 3. capture → apply onto the base equals the live model;
/// 4. a second epoch's delta applied on top composes to the newer live
///    state (chained deltas).
fn check_roundtrip<T, F>(mut live: T, mut mutate: F, case: u64)
where
    T: Checkpointable + PartialEq + std::fmt::Debug,
    F: FnMut(&mut T, usize),
{
    // Warm-up epoch so the baseline is not the trivial empty state.
    for i in 0..16 {
        mutate(&mut live, i);
    }

    // Checkpoint: clone the base, seed the capture baseline.
    let mut base = live.clone();
    let g0 = live.generation();
    let seed = live.capture_delta(g0);
    {
        let mut probe = base.clone();
        probe.apply_delta(seed);
        assert_eq!(probe, base, "case {case}: seed delta must be a no-op");
    }

    // Epoch 1: diverge.
    for i in 16..48 {
        mutate(&mut live, i);
    }

    // Rollback path: a diverged copy restored against the base equals it.
    let mut diverged = live.clone();
    diverged.restore_from(&base, g0);
    assert_eq!(diverged, base, "case {case}: restore_from must rewind");

    // Capture path: base + delta equals live.
    let delta = live.capture_delta(g0);
    base.apply_delta(delta);
    assert_eq!(base, live, "case {case}: base + delta must equal live");

    // Epoch 2: chained delta on top of the applied one.
    let g1 = live.generation();
    for i in 48..80 {
        mutate(&mut live, i);
    }
    let delta2 = live.capture_delta(g1);
    base.apply_delta(delta2);
    assert_eq!(base, live, "case {case}: chained deltas must compose");
}

fn small_cache_cfg() -> CacheConfig {
    // Small geometry maximises eviction and dirty-set churn: 4 sets × 2 ways.
    CacheConfig {
        size_bytes: 256,
        ways: 2,
        line_bytes: 32,
    }
}

fn random_state(rng: &mut Xoshiro256) -> MesiState {
    match rng.next_below(3) {
        0 => MesiState::Modified,
        1 => MesiState::Exclusive,
        _ => MesiState::Shared,
    }
}

#[test]
fn cache_delta_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xDE17A + case);
        let cache = Cache::new(small_cache_cfg());
        check_roundtrip(
            cache,
            move |c, _| {
                let line = LineAddr::new(rng.next_below(64));
                match rng.next_below(4) {
                    0 => {
                        c.probe(line);
                    }
                    1 => {
                        let st = random_state(&mut rng);
                        c.fill(line, st);
                    }
                    2 => {
                        let st = random_state(&mut rng);
                        c.set_state(line, st);
                    }
                    _ => {
                        c.invalidate(line);
                    }
                }
            },
            case,
        );
    }
}

#[test]
fn l2_delta_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xDE17B + case);
        let l2 = L2::new(small_cache_cfg(), 10, 100);
        check_roundtrip(
            l2,
            move |l2, i| {
                let line = LineAddr::new(rng.next_below(64));
                if rng.next_below(4) == 0 {
                    l2.write_back(line);
                } else {
                    l2.access(line, Cycle::new(i as u64 * 10));
                }
            },
            case,
        );
    }
}

#[test]
fn cache_map_delta_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xDE17C + case);
        let map = CacheMap::new(4);
        check_roundtrip(
            map,
            move |m, _| {
                let op =
                    [BusOp::Rd, BusOp::RdX, BusOp::Upgr, BusOp::Wb][rng.next_below(4) as usize];
                let line = LineAddr::new(rng.next_below(8));
                let core = CoreId::new(rng.next_below(4) as u16);
                let ts = Cycle::new(rng.next_below(10_000));
                m.transition(op, line, core, ts);
            },
            case,
        );
    }
}

#[test]
fn bus_delta_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xDE17D + case);
        let bus = Bus::new(1, 1);
        check_roundtrip(
            bus,
            move |b, _| {
                let ts = Cycle::new(rng.next_below(5_000));
                if rng.next_below(2) == 0 {
                    b.arbitrate(ts);
                } else {
                    b.respond(ts);
                }
            },
            case,
        );
    }
}

#[test]
fn sync_device_delta_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xDE17E + case);
        let dev = SyncDevice::new(4, 4, 2);
        check_roundtrip(
            dev,
            move |d, _| {
                let core = CoreId::new(rng.next_below(4) as u16);
                let id = rng.next_below(3) as u32;
                let ts = Cycle::new(rng.next_below(10_000));
                match rng.next_below(3) {
                    0 => {
                        d.barrier_arrive(core, id, ts);
                    }
                    1 => {
                        d.lock_acquire(core, id, ts);
                    }
                    _ => {
                        d.lock_release(core, id, ts);
                    }
                }
            },
            case,
        );
    }
}

/// The composite uncore — bus + L2 + map + sync behind one generation
/// token — satisfies the same laws when driven through its real service
/// interface. Counters stand in for equality (the uncore exposes no
/// `PartialEq`), alongside the components that do.
#[test]
fn uncore_composite_delta_roundtrip() {
    use slacksim_cmp::config::CmpConfig;
    use slacksim_cmp::uncore::CmpUncore;

    fn drive(u: &mut CmpUncore, rng: &mut Xoshiro256, i: usize) {
        let from = CoreId::new(rng.next_below(8) as u16);
        let ts = Cycle::new(i as u64 * 7 + rng.next_below(5));
        let ev = match rng.next_below(5) {
            0 | 1 => MemEvent::Request {
                op: [BusOp::Rd, BusOp::RdX, BusOp::Upgr][rng.next_below(3) as usize],
                line: LineAddr::new(rng.next_below(32)),
                req: i as u32,
                ifetch: false,
            },
            2 => MemEvent::Writeback {
                line: LineAddr::new(rng.next_below(32)),
            },
            3 => MemEvent::LockAcquire {
                id: rng.next_below(2) as u32,
            },
            _ => MemEvent::LockRelease {
                id: rng.next_below(2) as u32,
            },
        };
        let mut sink = ServiceSink::new();
        u.service(from, Timestamped::new(ts, ev), &mut sink);
    }

    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xDE17F + case);
        let mut live = CmpUncore::new(&CmpConfig::paper());
        for i in 0..16 {
            drive(&mut live, &mut rng, i);
        }
        let mut base = live.clone();
        let g0 = live.generation();
        let _ = live.capture_delta(g0);
        for i in 16..48 {
            drive(&mut live, &mut rng, i);
        }

        let mut diverged = live.clone();
        diverged.restore_from(&base, g0);
        assert_eq!(diverged.counters(), base.counters(), "case {case}: restore");
        assert_eq!(diverged.bus(), base.bus(), "case {case}: restore bus");
        assert_eq!(diverged.map(), base.map(), "case {case}: restore map");

        let delta = live.capture_delta(g0);
        base.apply_delta(delta);
        assert_eq!(base.counters(), live.counters(), "case {case}: apply");
        assert_eq!(base.bus(), live.bus(), "case {case}: apply bus");
        assert_eq!(base.map(), live.map(), "case {case}: apply map");
    }
}

/// The sharded directory at 64 cores — four times past the snooping
/// bus's cap — satisfies the same delta laws, with per-bank dirty
/// tracking standing in for the flat dirty-line map.
#[test]
fn directory_delta_roundtrip_past_sixteen_cores() {
    use slacksim_cmp::directory::Directory;

    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xD14_0000 + case);
        let dir = Directory::new(64, 4);
        check_roundtrip(
            dir,
            move |d, i| {
                let op =
                    [BusOp::Rd, BusOp::RdX, BusOp::Upgr, BusOp::Wb][rng.next_below(4) as usize];
                let line = LineAddr::new(rng.next_below(256));
                let core = CoreId::new(rng.next_below(64) as u16);
                let ts = Cycle::new(i as u64 * 7 + rng.next_below(50));
                d.access(op, line, core, ts);
            },
            case,
        );
    }
}

/// Per-bank dirty tracking is tight: a delta carries a global blob for
/// exactly the banks whose interleaved lines were touched since the
/// capture baseline, never the whole shard array.
#[test]
fn directory_delta_dirtiness_matches_banks_touched() {
    use std::collections::BTreeSet;

    use slacksim_cmp::directory::Directory;
    use slacksim_core::checkpoint::Checkpointable;

    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xD14_1000 + case);
        let mut dir = Directory::new(64, 4);
        // Warm-up so the baseline is not the empty state.
        for i in 0..24u64 {
            let line = LineAddr::new(rng.next_below(512));
            dir.access(
                BusOp::Rd,
                line,
                CoreId::new(rng.next_below(64) as u16),
                Cycle::new(i),
            );
        }
        let g0 = dir.generation();
        let _ = dir.capture_delta(g0);

        let mut touched = BTreeSet::new();
        let epoch = 1 + rng.next_below(40);
        for i in 0..epoch {
            let op = [BusOp::Rd, BusOp::RdX, BusOp::Upgr, BusOp::Wb][rng.next_below(4) as usize];
            let line = LineAddr::new(rng.next_below(512));
            touched.insert(dir.bank_of(line));
            let core = CoreId::new(rng.next_below(64) as u16);
            dir.access(op, line, core, Cycle::new(100 + i));
        }
        let delta = dir.capture_delta(g0);
        assert_eq!(
            delta.dirty_banks(),
            touched.len(),
            "case {case}: dirty banks must equal banks touched"
        );
    }
}
