#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. No network access required.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test -q"
cargo test --workspace -q --offline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "ci: all green"
