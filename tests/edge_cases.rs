//! Edge cases and failure-injection across the full stack: degenerate
//! core counts, extreme bounds and intervals, and tiny commit targets.

use slacksim::scheme::{AdaptiveConfig, Scheme};
use slacksim::{Benchmark, Simulation, SpeculationConfig, ViolationSelect};

#[test]
fn single_core_runs_under_every_scheme() {
    // One core: slack between cores is meaningless, but the machinery must
    // degrade gracefully (and can never violate: one requester keeps
    // timestamp order).
    for scheme in [
        Scheme::CycleByCycle,
        Scheme::BoundedSlack { bound: 64 },
        Scheme::UnboundedSlack,
        Scheme::Quantum { quantum: 100 },
        Scheme::Adaptive(AdaptiveConfig::default()),
        Scheme::LaxP2p {
            lead: 8,
            period: 100,
            seed: 1,
        },
    ] {
        let r = Simulation::new(Benchmark::Lu)
            .cores(1)
            .commit_target(10_000)
            .scheme(scheme.clone())
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        assert!(r.committed >= 10_000, "{}", scheme.name());
        assert_eq!(
            r.violations.total(),
            0,
            "{}: a single core cannot reorder against itself",
            scheme.name()
        );
    }
}

#[test]
fn two_and_sixteen_core_targets_work() {
    for cores in [2usize, 16] {
        // Scale the aggregate target so every core reaches its first
        // workload barrier (Water's force phase is 11k instructions).
        let target = cores as u64 * 15_000;
        let r = Simulation::new(Benchmark::WaterNsquared)
            .cores(cores)
            .commit_target(target)
            .scheme(Scheme::BoundedSlack { bound: 8 })
            .run()
            .expect("run succeeds");
        assert_eq!(r.per_core.len(), cores);
        assert!(r.committed >= target);
        assert!(r.uncore.get("barriers_completed") > 0, "{cores} cores");
    }
}

#[test]
fn tiny_commit_targets_finish_immediately() {
    for target in [1u64, 7] {
        let r = Simulation::new(Benchmark::Fft)
            .commit_target(target)
            .run()
            .expect("run succeeds");
        assert!(r.committed >= target);
        // A tiny run must not spin forever: the I-cache warms within a few
        // hundred cycles.
        assert!(r.global_cycles < 10_000);
    }
}

#[test]
fn huge_bound_equals_unbounded_behaviour() {
    // A bound beyond the implementation lead cap behaves like unbounded
    // slack; both must complete with similar statistics for one seed.
    let huge = Simulation::new(Benchmark::Lu)
        .commit_target(40_000)
        .scheme(Scheme::BoundedSlack {
            bound: u64::MAX / 2,
        })
        .run()
        .expect("huge bound");
    let unbounded = Simulation::new(Benchmark::Lu)
        .commit_target(40_000)
        .scheme(Scheme::UnboundedSlack)
        .run()
        .expect("unbounded");
    assert_eq!(huge.global_cycles, unbounded.global_cycles);
    assert_eq!(huge.violations, unbounded.violations);
}

#[test]
fn checkpoint_interval_of_one_cycle_survives() {
    // Degenerate: a checkpoint every global cycle. Must finish (slowly)
    // and count roughly one checkpoint per cycle.
    let mut sim = Simulation::new(Benchmark::Lu);
    sim.cores(2)
        .commit_target(2_000)
        .scheme(Scheme::BoundedSlack { bound: 4 })
        .speculation(SpeculationConfig::checkpoint_only(1));
    let r = sim.run().expect("run succeeds");
    assert!(r.committed >= 2_000);
    // Each stop-sync lands on the furthest core's clock, so consecutive
    // checkpoints are up to a slack bound apart.
    assert!(
        r.kernel.get("checkpoints") >= r.global_cycles / 8,
        "checkpoints: {} over {} cycles",
        r.kernel.get("checkpoints"),
        r.global_cycles
    );
}

#[test]
fn rollback_with_interval_larger_than_the_run_is_harmless() {
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.commit_target(20_000)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .speculation(SpeculationConfig::speculative(
            1 << 40,
            ViolationSelect::all(),
        ));
    let r = sim.run().expect("run succeeds");
    assert!(r.committed >= 20_000);
    // The first trigger never fires; only the free initial checkpoint
    // exists and nothing rolls back (violations are detected but the
    // window never closes).
    assert_eq!(r.kernel.get("checkpoints"), 0);
}

#[test]
fn cycle_cap_is_honoured_under_slack() {
    let mut sim = Simulation::new(Benchmark::Barnes);
    sim.commit_target(u64::MAX).max_cycles(3_000);
    let r = sim.run().expect("run succeeds");
    assert_eq!(r.global_cycles, 3_000);
    assert_eq!(r.kernel.get("finish_commit_target"), 0);
}

#[test]
fn seeds_produce_distinct_workload_timings() {
    let a = Simulation::new(Benchmark::Barnes)
        .commit_target(30_000)
        .seed(1)
        .run()
        .expect("a");
    let b = Simulation::new(Benchmark::Barnes)
        .commit_target(30_000)
        .seed(2)
        .run()
        .expect("b");
    assert_ne!(
        a.global_cycles, b.global_cycles,
        "different seeds must change the workload"
    );
}

#[test]
fn quantum_larger_than_the_natural_run_still_terminates() {
    // Under quantum pacing, event deliveries (even the first I-fetch
    // replies) wait for the boundary, so the run crawls to one full
    // quantum before any instruction commits — the pathological regime
    // the paper's critical-latency argument warns about. It must still
    // terminate.
    let r = Simulation::new(Benchmark::Lu)
        .cores(2)
        .commit_target(5_000)
        .scheme(Scheme::Quantum { quantum: 16_384 })
        .run()
        .expect("run succeeds");
    assert!(r.committed >= 5_000);
    assert!(
        r.global_cycles >= 16_384,
        "the first quantum boundary gates all event deliveries"
    );
}
