//! Speculative slack simulation (paper §5), fully deployed: periodic
//! in-memory checkpoints, rollback on detected violations, and
//! cycle-by-cycle replay for forward progress.
//!
//! ```sh
//! cargo run --release --example speculative_rollback
//! ```

use slacksim::model::{speculative_time, SpeculativeModelInputs};
use slacksim::scheme::Scheme;
use slacksim::{Benchmark, EngineKind, Simulation, SpeculationConfig, ViolationSelect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let commit = 250_000;
    let interval = 5_000;

    let cc = Simulation::new(Benchmark::WaterNsquared)
        .commit_target(commit)
        .engine(EngineKind::Sequential)
        .run()?;

    // Checkpoint-only: measure the snapshot overhead (Table 2's columns).
    let mut sim = Simulation::new(Benchmark::WaterNsquared);
    sim.commit_target(commit)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Sequential)
        .speculation(SpeculationConfig::checkpoint_only(interval));
    let cpt = sim.run()?;
    println!("checkpoint-only run ({interval}-cycle intervals)");
    println!("  checkpoints taken : {}", cpt.kernel.get("checkpoints"));
    println!("  violations seen   : {}", cpt.violations.total());
    println!(
        "  intervals violating: {}/{}",
        cpt.kernel.get("intervals_violating"),
        cpt.kernel.get("intervals_total")
    );

    // Full speculation: roll back whenever any violation is detected.
    let mut sim = Simulation::new(Benchmark::WaterNsquared);
    sim.commit_target(commit)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Sequential)
        .speculation(SpeculationConfig::speculative(
            interval,
            ViolationSelect::all(),
        ));
    let spec = sim.run()?;
    println!("\nspeculative run (rollback on any violation)");
    println!("  rollbacks          : {}", spec.kernel.get("rollbacks"));
    println!(
        "  wasted cycles      : {}",
        spec.kernel.get("wasted_cycles")
    );
    println!(
        "  CC replay cycles   : {}",
        spec.kernel.get("replay_cycles")
    );
    println!(
        "  violations detected: {} (surviving in final state: {})",
        spec.kernel.get("violations_detected_total"),
        spec.violations.total()
    );
    println!(
        "  exec-time error vs CC: {:+.2}%",
        slacksim::percent_error(spec.global_cycles as f64, cc.global_cycles as f64)
    );

    // Compare against the paper's analytical model.
    let f = cpt.kernel.get("intervals_violating") as f64
        / cpt.kernel.get("intervals_total").max(1) as f64;
    let inputs = SpeculativeModelInputs {
        t_cc: cc.wall.as_secs_f64(),
        t_cpt: cpt.wall.as_secs_f64(),
        fraction_violating: f,
        rollback_distance: cpt.kernel.get("mean_first_violation_distance_x1000") as f64 / 1000.0,
        interval: interval as f64,
    };
    println!("\nanalytical model (paper §5.2)");
    println!(
        "  predicted speculative time: {:.3}s",
        speculative_time(&inputs)
    );
    println!(
        "  measured speculative time : {:.3}s",
        spec.wall.as_secs_f64()
    );
    println!(
        "  cycle-by-cycle time       : {:.3}s",
        cc.wall.as_secs_f64()
    );
    Ok(())
}
