//! Integration tests of the host-time profiler and live telemetry end to
//! end: a profiled run must attach a per-site profile that covers most of
//! the measured wall-clock, live heartbeats must be valid versioned
//! single-line JSON, and neither may change what the simulation computes.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use slacksim::scheme::Scheme;
use slacksim::slacksim_core::obs::json::Json;
use slacksim::{
    Benchmark, EngineKind, LiveConfig, ProfSite, SimReport, Simulation, HEARTBEAT_VERSION,
};

fn profiled_run(engine: EngineKind, commit: u64) -> SimReport {
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.cores(4)
        .commit_target(commit)
        .seed(7)
        .scheme(Scheme::BoundedSlack { bound: 8 })
        .engine(engine)
        .profile(true);
    sim.run().expect("profiled run completes")
}

#[test]
fn prof_is_absent_without_profile_flag() {
    let report = Simulation::new(Benchmark::Fft)
        .cores(2)
        .commit_target(10_000)
        .scheme(Scheme::UnboundedSlack)
        .run()
        .expect("run completes");
    assert!(
        report.prof.is_none(),
        "no profile requested => none attached"
    );
}

#[test]
fn sequential_profile_covers_most_of_the_wall_clock() {
    let report = profiled_run(EngineKind::Sequential, 60_000);
    let prof = report.prof.as_ref().expect("profile attached");
    assert_eq!(prof.threads, 1);
    assert!(prof.wall_ns > 0);
    // The sequential engine's whole main loop is inside spans, so nearly
    // all host time is attributed. The bound is looser than the observed
    // ~96% to tolerate loaded CI machines.
    assert!(
        prof.coverage() > 0.75,
        "sequential self-time coverage {:.1}% too low",
        prof.coverage() * 100.0
    );
    let ticks = prof
        .sites
        .iter()
        .find(|s| s.site == ProfSite::CoreTick)
        .expect("core-tick site present");
    assert!(ticks.count > 0 && ticks.self_ns > 0);
}

#[test]
fn threaded_profile_covers_most_of_the_wall_clock() {
    let report = profiled_run(EngineKind::Threaded, 60_000);
    let prof = report.prof.as_ref().expect("profile attached");
    assert_eq!(prof.threads, 5, "4 cores + manager record");
    // Core threads spend their time ticking or in the instrumented wait
    // ladder; the only uncovered host time is loop glue. The bound is
    // deliberately loose: on an oversubscribed host, preempted threads
    // accrue wall-clock outside any span.
    assert!(
        prof.coverage() > 0.5,
        "threaded self-time coverage {:.1}% too low",
        prof.coverage() * 100.0
    );
    for site in [ProfSite::CoreTick, ProfSite::ManagerService] {
        assert!(
            prof.sites.iter().any(|s| s.site == site && s.count > 0),
            "{site:?} missing from threaded profile"
        );
    }
}

#[test]
fn profile_table_and_csv_agree_with_the_data() {
    let report = profiled_run(EngineKind::Sequential, 20_000);
    let prof = report.prof.as_ref().unwrap();

    let table = prof.table();
    assert!(table.contains("site"), "table has a header");
    assert!(table.contains("core-tick"));
    assert!(table.contains("coverage"));

    let csv = prof.csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("site,count,total_ns,self_ns,self_share"));
    let mut self_sum = 0u64;
    let mut saw_wall = false;
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 5, "malformed CSV row {line:?}");
        match cols[0] {
            "wall_ns" => {
                assert_eq!(cols[2].parse::<u64>().unwrap(), prof.wall_ns);
                saw_wall = true;
            }
            "threads" => assert_eq!(cols[2].parse::<u64>().unwrap(), prof.threads),
            name => {
                assert!(ProfSite::parse(name).is_some(), "unknown site {name:?}");
                self_sum += cols[3].parse::<u64>().unwrap();
            }
        }
    }
    assert!(saw_wall, "CSV carries the wall-clock footer row");
    assert_eq!(
        self_sum,
        prof.total_self_ns(),
        "CSV self-times sum to total"
    );
}

#[test]
fn live_heartbeats_are_valid_versioned_single_line_json() {
    let capture = Arc::new(Mutex::new(String::with_capacity(1 << 16)));
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.cores(2)
        .commit_target(60_000)
        .seed(7)
        .scheme(Scheme::BoundedSlack { bound: 8 })
        .engine(EngineKind::Threaded)
        .profile(true)
        .live(
            LiveConfig::new()
                .every(Duration::from_millis(1))
                .to_capture(Arc::clone(&capture)),
        );
    let report = sim.run().expect("live run completes");

    let out = capture.lock().unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert!(!lines.is_empty(), "at least the terminal beat is emitted");
    let mut last_elapsed = 0.0;
    for line in &lines {
        let beat = Json::parse(line).unwrap_or_else(|e| panic!("invalid beat {line:?}: {e}"));
        assert_eq!(
            beat.get("v").and_then(Json::as_f64),
            Some(HEARTBEAT_VERSION as f64)
        );
        let elapsed = beat.get("elapsed_ms").and_then(Json::as_f64).unwrap();
        assert!(elapsed >= last_elapsed, "elapsed_ms is monotone");
        last_elapsed = elapsed;
        let progress = beat.get("progress").and_then(Json::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&progress));
        for key in [
            "committed",
            "commit_target",
            "commits_per_sec",
            "global_cycle",
            "violations",
            "violation_rate",
            "dropped_traces",
            "checkpoints",
            "rollbacks",
        ] {
            assert!(
                beat.get(key).and_then(Json::as_f64).is_some(),
                "beat missing numeric field {key}: {line}"
            );
        }
        let queues = beat.get("queues").expect("queues object");
        for q in ["outq", "inq", "globalq"] {
            assert!(queues.get(q).and_then(Json::as_f64).is_some());
        }
        assert!(beat.get("sites").and_then(Json::as_object).is_some());
    }

    // The terminal beat observed the finished run.
    let last = Json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(
        last.get("committed").and_then(Json::as_f64),
        Some(report.committed as f64)
    );
    assert_eq!(last.get("progress").and_then(Json::as_f64), Some(1.0));
    assert!(
        last.get("commits_per_sec").and_then(Json::as_f64).unwrap() > 0.0,
        "terminal beat reports the lifetime rate, not an empty window"
    );
}

#[test]
fn live_status_file_holds_one_complete_beat() {
    let dir = std::env::temp_dir().join(format!("slacksim-live-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("status.json");
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.cores(2)
        .commit_target(30_000)
        .seed(7)
        .scheme(Scheme::UnboundedSlack)
        .engine(EngineKind::Sequential)
        .live(
            LiveConfig::new()
                .every(Duration::from_millis(2))
                .to_file(&path),
        );
    sim.run().expect("run completes");

    let body = std::fs::read_to_string(&path).expect("status file written");
    assert_eq!(
        body.lines().count(),
        1,
        "atomic replace keeps exactly one beat"
    );
    let beat = Json::parse(body.trim_end()).expect("status file is one valid beat");
    assert_eq!(beat.get("progress").and_then(Json::as_f64), Some(1.0));
    std::fs::remove_dir_all(&dir).ok();
}
