//! The global cache-status map maintained by the simulation manager.
//!
//! The manager tracks, per line, which cores hold copies and which (if
//! any) owns the line in M/E — a duplicate-tag view of all L1s that the
//! snooping protocol consults to source data and direct invalidations.
//! Every transition carries the requesting event's timestamp through a
//! per-entry monitoring variable: a transition stamped earlier than one
//! already applied to the same entry is a **map violation** (a simulated
//! system state violation, paper §3).
//!
//! Because E lines may silently become M inside an L1, the map treats the
//! M/E owner conservatively as a potential data supplier.

use std::collections::HashMap;

use slacksim_core::event::CoreId;
use slacksim_core::time::Cycle;
use slacksim_core::violation::KeyedMonitor;

use crate::cache::LineAddr;
use crate::mesi::{BusOp, MesiState};

/// Global residence state of one line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct MapEntry {
    /// Bitmask of cores holding the line (any state).
    sharers: u16,
    /// Core holding the line in M or E, if any.
    owner: Option<CoreId>,
}

impl MapEntry {
    fn has(&self, core: CoreId) -> bool {
        self.sharers & (1 << core.index()) != 0
    }

    fn add(&mut self, core: CoreId) {
        self.sharers |= 1 << core.index();
    }

    fn remove(&mut self, core: CoreId) {
        self.sharers &= !(1 << core.index());
        if self.owner == Some(core) {
            self.owner = None;
        }
    }

    fn others(&self, core: CoreId) -> u16 {
        self.sharers & !(1 << core.index())
    }
}

/// Outcome of one map transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOutcome {
    /// The transition arrived out of timestamp order for this entry.
    pub violation: bool,
    /// The entry monitor's largest previously observed timestamp at the
    /// time of this transition (feeds violation-distance observability).
    pub high_water: Cycle,
    /// Remote core that supplies the data from its M/E copy, if any.
    pub data_from_owner: Option<CoreId>,
    /// State granted to the requester's L1.
    pub grant: MesiState,
    /// Remote copies to invalidate.
    pub invalidate: Vec<CoreId>,
    /// Remote copies to downgrade to S.
    pub downgrade: Vec<CoreId>,
}

/// The manager's cache status map with per-entry violation monitors.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::cache::LineAddr;
/// use slacksim_cmp::map::CacheMap;
/// use slacksim_cmp::mesi::{BusOp, MesiState};
/// use slacksim_core::event::CoreId;
/// use slacksim_core::time::Cycle;
///
/// let mut map = CacheMap::new(8);
/// let line = LineAddr::new(0x40);
/// let first = map.transition(BusOp::Rd, line, CoreId::new(0), Cycle::new(10));
/// assert_eq!(first.grant, MesiState::Exclusive); // sole copy
/// let second = map.transition(BusOp::Rd, line, CoreId::new(1), Cycle::new(20));
/// assert_eq!(second.grant, MesiState::Shared);
/// assert_eq!(second.downgrade, vec![CoreId::new(0)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CacheMap {
    entries: HashMap<LineAddr, MapEntry>,
    monitor: KeyedMonitor<LineAddr>,
    n_cores: usize,
    transitions: u64,
    violations: u64,
}

impl CacheMap {
    /// Creates a map for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or exceeds 16.
    pub fn new(n_cores: usize) -> Self {
        assert!(
            (1..=16).contains(&n_cores),
            "core count must be between 1 and 16"
        );
        CacheMap {
            entries: HashMap::new(),
            monitor: KeyedMonitor::new(),
            n_cores,
            transitions: 0,
            violations: 0,
        }
    }

    /// Applies one bus transaction to the map and returns the protocol
    /// outcome (grant state, snoop targets, data source) along with the
    /// violation verdict of this entry's monitoring variable.
    pub fn transition(&mut self, op: BusOp, line: LineAddr, from: CoreId, ts: Cycle) -> MapOutcome {
        debug_assert!(from.index() < self.n_cores, "unknown core {from}");
        self.transitions += 1;
        let violation = self.monitor.observe(line, ts);
        let high_water = self.monitor.high_water(&line);
        if violation {
            self.violations += 1;
        }

        let entry = self.entries.entry(line).or_default();
        let mut invalidate = Vec::new();
        let mut downgrade = Vec::new();
        let mut data_from_owner = None;

        let grant = match op {
            BusOp::Rd => {
                if let Some(owner) = entry.owner {
                    if owner != from {
                        // Possible dirty remote copy: owner supplies and
                        // downgrades (E owners downgrade silently; the
                        // conservative flush costs nothing extra in a
                        // timing-only model).
                        data_from_owner = Some(owner);
                        downgrade.push(owner);
                        entry.owner = None;
                    }
                }
                let other = entry.others(from) != 0;
                entry.add(from);
                if other {
                    MesiState::Shared
                } else {
                    entry.owner = Some(from);
                    MesiState::Exclusive
                }
            }
            BusOp::RdX | BusOp::Upgr => {
                if let Some(owner) = entry.owner {
                    if owner != from {
                        data_from_owner = Some(owner);
                    }
                }
                for c in CoreId::all(self.n_cores) {
                    if c != from && entry.has(c) {
                        invalidate.push(c);
                    }
                }
                entry.sharers = 1 << from.index();
                entry.owner = Some(from);
                MesiState::Modified
            }
            BusOp::Wb => {
                entry.remove(from);
                MesiState::Invalid
            }
        };

        if entry.sharers == 0 {
            self.entries.remove(&line);
        }

        MapOutcome {
            violation,
            high_water,
            data_from_owner,
            grant,
            invalidate,
            downgrade,
        }
    }

    /// Number of lines currently tracked.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Total transitions applied.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total map violations detected.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Returns the set of cores currently holding `line` (testing aid).
    pub fn sharers(&self, line: LineAddr) -> Vec<CoreId> {
        match self.entries.get(&line) {
            Some(e) => CoreId::all(self.n_cores).filter(|&c| e.has(c)).collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn ts(t: u64) -> Cycle {
        Cycle::new(t)
    }

    const LINE: LineAddr = LineAddr::new(0x99);

    #[test]
    fn first_read_grants_exclusive() {
        let mut m = CacheMap::new(4);
        let out = m.transition(BusOp::Rd, LINE, c(0), ts(1));
        assert_eq!(out.grant, MesiState::Exclusive);
        assert!(out.invalidate.is_empty() && out.downgrade.is_empty());
        assert_eq!(out.data_from_owner, None);
        assert_eq!(m.sharers(LINE), vec![c(0)]);
    }

    #[test]
    fn second_read_downgrades_owner_and_shares() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::Rd, LINE, c(0), ts(1));
        let out = m.transition(BusOp::Rd, LINE, c(1), ts(2));
        assert_eq!(out.grant, MesiState::Shared);
        assert_eq!(out.downgrade, vec![c(0)]);
        assert_eq!(out.data_from_owner, Some(c(0)));
        assert_eq!(m.sharers(LINE), vec![c(0), c(1)]);
    }

    #[test]
    fn rdx_invalidates_all_others() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::Rd, LINE, c(0), ts(1));
        m.transition(BusOp::Rd, LINE, c(1), ts(2));
        m.transition(BusOp::Rd, LINE, c(2), ts(3));
        let out = m.transition(BusOp::RdX, LINE, c(3), ts(4));
        assert_eq!(out.grant, MesiState::Modified);
        assert_eq!(out.invalidate, vec![c(0), c(1), c(2)]);
        assert_eq!(m.sharers(LINE), vec![c(3)]);
    }

    #[test]
    fn upgr_from_sharer_invalidates_peers_without_data() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::Rd, LINE, c(0), ts(1));
        m.transition(BusOp::Rd, LINE, c(1), ts(2));
        let out = m.transition(BusOp::Upgr, LINE, c(0), ts(3));
        assert_eq!(out.grant, MesiState::Modified);
        assert_eq!(out.invalidate, vec![c(1)]);
        assert_eq!(out.data_from_owner, None, "upgrade moves no data");
        assert_eq!(m.sharers(LINE), vec![c(0)]);
    }

    #[test]
    fn rdx_from_modified_owner_sources_data_from_owner() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::RdX, LINE, c(2), ts(1));
        let out = m.transition(BusOp::RdX, LINE, c(0), ts(2));
        assert_eq!(out.data_from_owner, Some(c(2)));
        assert_eq!(out.invalidate, vec![c(2)]);
    }

    #[test]
    fn writeback_removes_the_owner() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::RdX, LINE, c(1), ts(1));
        let out = m.transition(BusOp::Wb, LINE, c(1), ts(5));
        assert_eq!(out.grant, MesiState::Invalid);
        assert!(m.sharers(LINE).is_empty());
        assert_eq!(m.tracked_lines(), 0, "empty entries are reclaimed");
    }

    #[test]
    fn per_line_monitors_flag_out_of_order_transitions() {
        let mut m = CacheMap::new(4);
        assert!(!m.transition(BusOp::Rd, LINE, c(0), ts(10)).violation);
        // Different line, earlier timestamp: fine.
        assert!(
            !m.transition(BusOp::Rd, LineAddr::new(0x500), c(1), ts(5))
                .violation
        );
        // Same line, earlier timestamp: map violation.
        assert!(m.transition(BusOp::Rd, LINE, c(1), ts(7)).violation);
        assert_eq!(m.violations(), 1);
        assert_eq!(m.transitions(), 3);
    }

    #[test]
    fn repeat_read_by_owner_keeps_exclusivity() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::Rd, LINE, c(0), ts(1));
        let out = m.transition(BusOp::Rd, LINE, c(0), ts(2));
        assert_eq!(out.grant, MesiState::Exclusive);
        assert!(out.downgrade.is_empty());
    }

    #[test]
    #[should_panic(expected = "between 1 and 16")]
    fn too_many_cores_rejected() {
        let _ = CacheMap::new(32);
    }
}
