//! A minimal JSON value model and recursive-descent parser.
//!
//! The exporters hand-roll their JSON output (the kernel has no external
//! dependencies), so the test suite needs an independent way to check that
//! the emitted Chrome Trace files are well-formed. This parser implements
//! enough of RFC 8259 for that round trip: all value types, string escapes
//! including `\uXXXX` with surrogate pairs, and numbers via `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Duplicate keys keep the last occurrence.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input.
    ///
    /// # Examples
    ///
    /// ```
    /// use slacksim_core::obs::json::Json;
    ///
    /// let v = Json::parse(r#"{"a": [1, 2.5, "x\n"], "b": null}"#).unwrap();
    /// assert_eq!(v.get("a").and_then(|a| a.as_array()).map(|a| a.len()), Some(3));
    /// ```
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let slice = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        let code = u16::from_str_radix(slice, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let code =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("lone low surrogate".to_string());
                            } else {
                                char::from_u32(hi as u32).ok_or("invalid codepoint")?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of unescaped bytes in one chunk.
                    // Validating UTF-8 over the whole remaining input per
                    // character would make string parsing quadratic; quote
                    // and backslash are never UTF-8 continuation bytes, so
                    // the run boundary cannot split a scalar.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[{"b":1},{"b":2}],"c":{"d":[]}}"#).unwrap();
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].get("b").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_array),
            Some(&[] as &[Json])
        );
    }

    #[test]
    fn parses_escapes() {
        let v = Json::parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "01x",
            r#""\q""#,
            "[1] garbage",
            r#""\ud83d""#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn keeps_unicode_text() {
        let v = Json::parse(r#""çâ 时间""#).unwrap();
        assert_eq!(v.as_str(), Some("çâ 时间"));
    }
}
