//! Simulation statistics and accuracy metrics.
//!
//! Accuracy in slack simulation is defined (paper §1) as the difference in a
//! metric of interest — e.g. execution time or CPI — between cycle-by-cycle
//! simulation (the gold standard) and a slack simulation of the same target.
//! This module provides the generic counter containers the engines fill in
//! and the error helpers the experiments use.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::time::Cycle;
use crate::violation::ViolationTally;

/// A named bag of monotonically increasing `u64` counters.
///
/// Target models report their statistics through `Counters` so the kernel
/// can aggregate and print them without knowing the model's vocabulary.
/// Keys are static strings by convention (`"l1d_miss"`, `"bus_txn"`, ...).
///
/// # Examples
///
/// ```
/// use slacksim_core::stats::Counters;
///
/// let mut c = Counters::new();
/// c.add("committed", 100);
/// c.add("committed", 20);
/// assert_eq!(c.get("committed"), 120);
/// assert_eq!(c.get("absent"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter bag.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero first).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.values.entry(name).or_insert(0) += delta;
    }

    /// Sets counter `name` to an absolute value.
    pub fn set(&mut self, name: &'static str, value: u64) {
        self.values.insert(name, value);
    }

    /// Returns the value of `name`, or 0 if never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merges another bag into this one (component-wise addition).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.values {
            *self.values.entry(k).or_insert(0) += v;
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    /// Returns the number of distinct counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Ratio of two counters, or 0 when the denominator is 0.
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        let d = self.get(den);
        if d == 0 {
            0.0
        } else {
            self.get(num) as f64 / d as f64
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k:>24}: {v}")?;
        }
        Ok(())
    }
}

impl FromIterator<(&'static str, u64)> for Counters {
    fn from_iter<I: IntoIterator<Item = (&'static str, u64)>>(iter: I) -> Self {
        let mut c = Counters::new();
        for (k, v) in iter {
            c.add(k, v);
        }
        c
    }
}

impl Extend<(&'static str, u64)> for Counters {
    fn extend<I: IntoIterator<Item = (&'static str, u64)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

/// Everything a finished simulation run reports.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Final global time: the target's execution time in cycles (the
    /// paper's primary accuracy metric).
    pub global_cycles: u64,
    /// Total committed target instructions across all cores.
    pub committed: u64,
    /// Violations detected, per kind.
    pub violations: ViolationTally,
    /// Host wall-clock duration of the run (the paper's "simulation time").
    pub wall: Duration,
    /// Per-core model counters (indexed by core id).
    pub per_core: Vec<Counters>,
    /// Uncore / manager model counters.
    pub uncore: Counters,
    /// Kernel-level counters (checkpoints taken, rollbacks, replay cycles,
    /// adaptive adjustments, ...).
    pub kernel: Counters,
    /// Trace of (global cycle, slack bound) pairs recorded at each adaptive
    /// adjustment decision; empty for non-adaptive schemes.
    pub bound_trace: Vec<(Cycle, u64)>,
    /// Observability data (trace records + metrics), present when the run
    /// was configured with [`crate::obs::ObsConfig`].
    pub obs: Option<crate::obs::ObsData>,
    /// Host-time profile (per-site span counts and self/total
    /// nanoseconds), present when the run was configured with an enabled
    /// [`crate::obs::Profiler`].
    pub prof: Option<crate::obs::ProfData>,
}

impl SimReport {
    /// Aggregate cycles-per-instruction over the whole run.
    pub fn cpi(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.global_cycles as f64 / self.committed as f64
        }
    }

    /// Total violation rate: violations per simulated (global) cycle.
    pub fn violation_rate(&self) -> f64 {
        self.violations.total_rate(self.global_cycles)
    }

    /// Sum of one per-core counter across all cores.
    pub fn core_total(&self, name: &str) -> u64 {
        self.per_core.iter().map(|c| c.get(name)).sum()
    }

    /// Host-side simulation speed in simulated cycles per wall-clock second.
    pub fn cycles_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.global_cycles as f64 / secs
        }
    }
}

impl fmt::Display for SimReport {
    /// Human-readable run summary (headline metrics; use the counter bags
    /// for the full detail).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "execution time : {} cycles", self.global_cycles)?;
        writeln!(f, "committed      : {} instructions", self.committed)?;
        writeln!(f, "CPI            : {:.3}", self.cpi())?;
        writeln!(
            f,
            "violations     : {} total ({:.4}% of cycles)",
            self.violations.total(),
            self.violation_rate() * 100.0
        )?;
        writeln!(f, "wall clock     : {:?}", self.wall)?;
        write!(
            f,
            "speed          : {:.0} kcycles/s",
            self.cycles_per_second() / 1e3
        )
    }
}

/// Signed relative error of `measured` against `reference`, in percent.
///
/// Returns 0 when the reference is 0.
///
/// # Examples
///
/// ```
/// use slacksim_core::stats::percent_error;
///
/// assert_eq!(percent_error(110.0, 100.0), 10.0);
/// assert_eq!(percent_error(95.0, 100.0), -5.0);
/// ```
pub fn percent_error(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (measured - reference) / reference * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::ViolationKind;

    #[test]
    fn counters_add_set_get() {
        let mut c = Counters::new();
        assert!(c.is_empty());
        c.add("x", 3);
        c.add("x", 4);
        c.set("y", 9);
        assert_eq!(c.get("x"), 7);
        assert_eq!(c.get("y"), 9);
        assert_eq!(c.get("z"), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counters_merge_and_iter_order() {
        let mut a: Counters = [("b", 1u64), ("a", 2)].into_iter().collect();
        let b: Counters = [("b", 10u64), ("c", 5)].into_iter().collect();
        a.merge(&b);
        let got: Vec<_> = a.iter().collect();
        assert_eq!(got, vec![("a", 2), ("b", 11), ("c", 5)]);
    }

    #[test]
    fn counters_ratio() {
        let c: Counters = [("hit", 90u64), ("access", 100)].into_iter().collect();
        assert!((c.ratio("hit", "access") - 0.9).abs() < 1e-12);
        assert_eq!(c.ratio("hit", "nothing"), 0.0);
    }

    #[test]
    fn counters_display_nonempty() {
        let c: Counters = [("k", 1u64)].into_iter().collect();
        assert!(format!("{c}").contains("k"));
    }

    #[test]
    fn counters_extend() {
        let mut c = Counters::new();
        c.extend([("a", 1u64), ("a", 2)]);
        assert_eq!(c.get("a"), 3);
    }

    #[test]
    fn report_derived_metrics() {
        let mut r = SimReport {
            global_cycles: 1000,
            committed: 500,
            wall: Duration::from_millis(250),
            ..SimReport::default()
        };
        r.violations.record(ViolationKind::Bus);
        assert!((r.cpi() - 2.0).abs() < 1e-12);
        assert!((r.violation_rate() - 0.001).abs() < 1e-12);
        assert!((r.cycles_per_second() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn report_core_total() {
        let mut r = SimReport::default();
        for v in [1u64, 2, 3] {
            let mut c = Counters::new();
            c.add("committed", v);
            r.per_core.push(c);
        }
        assert_eq!(r.core_total("committed"), 6);
    }

    #[test]
    fn percent_error_edges() {
        assert_eq!(percent_error(1.0, 0.0), 0.0);
        assert!((percent_error(50.0, 100.0) + 50.0).abs() < 1e-12);
    }

    #[test]
    fn report_display_has_headline_metrics() {
        let r = SimReport {
            global_cycles: 10,
            committed: 20,
            ..SimReport::default()
        };
        let text = r.to_string();
        assert!(text.contains("10 cycles"));
        assert!(text.contains("20 instructions"));
        assert!(text.contains("CPI"));
    }

    #[test]
    fn empty_report_metrics_are_zero() {
        let r = SimReport::default();
        assert_eq!(r.cpi(), 0.0);
        assert_eq!(r.violation_rate(), 0.0);
        assert_eq!(r.cycles_per_second(), 0.0);
    }
}
