//! Regenerates Figure 4: simulation time vs violation rate for bounded
//! slack (CC + S1-S9) and adaptive slack (bands 0% and 5%, 12 targets).
//!
//! Pass `--benchmark <name>` to select the workload (default: every
//! benchmark in turn with `--all`, FFT otherwise).

use slacksim_bench::experiments::fig4;
use slacksim_bench::scale::Scale;
use slacksim_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(args.iter().cloned(), 200_000);
    let benchmarks: Vec<Benchmark> = if args.iter().any(|a| a == "--all") {
        Benchmark::ALL.to_vec()
    } else {
        let picked = args
            .iter()
            .position(|a| a == "--benchmark")
            .and_then(|i| args.get(i + 1))
            .and_then(|n| Benchmark::parse(n))
            .unwrap_or(Benchmark::Fft);
        vec![picked]
    };
    for benchmark in benchmarks {
        let points = fig4::measure(&scale, benchmark);
        println!("{}", fig4::render(benchmark, &points));
    }
}
