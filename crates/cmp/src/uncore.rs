//! The manager-side target model: snooping bus + shared L2 + cache status
//! map + synchronisation device, wired together as one
//! [`UncoreModel`].
//!
//! This is the simulation-manager role of SlackSim's architecture
//! (paper Figure 1): it consumes core requests from the global queue in
//! arrival order, arbitrates the bus, consults the cache map, sources data
//! (remote owner, L2, or memory), and delivers completion and snoop events
//! back into core InQs — detecting bus and map violations along the way.

use slacksim_core::engine::{ServiceSink, UncoreModel};
use slacksim_core::event::{CoreId, Timestamped};
use slacksim_core::stats::Counters;
use slacksim_core::violation::{ViolationEvent, ViolationKind};

use crate::bus::Bus;
use crate::config::CmpConfig;
use crate::event::MemEvent;
use crate::l2::L2;
use crate::map::CacheMap;
use crate::mesi::BusOp;
use crate::sync::SyncDevice;

/// The shared portion of the target CMP.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::config::CmpConfig;
/// use slacksim_cmp::uncore::CmpUncore;
///
/// let uncore = CmpUncore::new(&CmpConfig::paper());
/// ```
#[derive(Debug, Clone)]
pub struct CmpUncore {
    n_cores: usize,
    upgrade_latency: u64,
    cache_to_cache_latency: u64,
    snoop_latency: u64,
    bus: Bus,
    l2: L2,
    map: CacheMap,
    sync: SyncDevice,
    c2c_transfers: u64,
    requests: u64,
    writebacks: u64,
}

impl CmpUncore {
    /// Builds the uncore for the given target configuration.
    pub fn new(cfg: &CmpConfig) -> Self {
        let u = &cfg.uncore;
        CmpUncore {
            n_cores: cfg.cores,
            upgrade_latency: u.upgrade_latency,
            cache_to_cache_latency: u.cache_to_cache_latency,
            snoop_latency: u.snoop_latency,
            bus: Bus::new(u.req_bus_cycles, u.resp_bus_cycles),
            l2: L2::new(u.l2, u.l2_hit_latency, u.l2_miss_latency),
            map: CacheMap::new(cfg.cores),
            sync: SyncDevice::new(cfg.cores, u.barrier_latency, u.lock_latency),
            c2c_transfers: 0,
            requests: 0,
            writebacks: 0,
        }
    }

    /// The bus model (read access for assertions and reports).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The cache status map (read access for assertions and reports).
    pub fn map(&self) -> &CacheMap {
        &self.map
    }
}

impl UncoreModel<MemEvent> for CmpUncore {
    fn service(
        &mut self,
        from: CoreId,
        ev: Timestamped<MemEvent>,
        sink: &mut ServiceSink<MemEvent>,
    ) {
        let ts = ev.ts;
        match ev.payload {
            MemEvent::Request {
                op,
                line,
                req,
                ifetch: _,
            } => {
                self.requests += 1;
                let grant = self.bus.arbitrate(ts);
                if grant.violation {
                    sink.report_violation(ViolationEvent {
                        kind: ViolationKind::Bus,
                        ts,
                        high_water: grant.high_water,
                    });
                }
                let outcome = self.map.transition(op, line, from, ts);
                if outcome.violation {
                    sink.report_violation(ViolationEvent {
                        kind: ViolationKind::Map,
                        ts,
                        high_water: outcome.high_water,
                    });
                }
                // Snoop deliveries ride right behind the request broadcast.
                let snoop_ts = grant.grant + self.snoop_latency;
                for c in outcome.invalidate {
                    sink.deliver(c, Timestamped::new(snoop_ts, MemEvent::Invalidate { line }));
                }
                for c in outcome.downgrade {
                    sink.deliver(c, Timestamped::new(snoop_ts, MemEvent::Downgrade { line }));
                }
                // Source the data.
                let data_ready = if let Some(_owner) = outcome.data_from_owner {
                    self.c2c_transfers += 1;
                    grant.grant + self.cache_to_cache_latency
                } else if op == BusOp::Upgr {
                    grant.grant + self.upgrade_latency
                } else {
                    self.l2.access(line, grant.grant).data_ready
                };
                let done = self.bus.respond(data_ready);
                sink.deliver(
                    from,
                    Timestamped::new(
                        done,
                        MemEvent::Reply {
                            req,
                            line,
                            grant: outcome.grant,
                        },
                    ),
                );
            }
            MemEvent::Writeback { line } => {
                self.writebacks += 1;
                let grant = self.bus.arbitrate(ts);
                if grant.violation {
                    sink.report_violation(ViolationEvent {
                        kind: ViolationKind::Bus,
                        ts,
                        high_water: grant.high_water,
                    });
                }
                let outcome = self.map.transition(BusOp::Wb, line, from, ts);
                if outcome.violation {
                    sink.report_violation(ViolationEvent {
                        kind: ViolationKind::Map,
                        ts,
                        high_water: outcome.high_water,
                    });
                }
                self.l2.write_back(line);
            }
            MemEvent::BarrierArrive { id } => {
                if let Some((release, cores)) = self.sync.barrier_arrive(from, id, ts) {
                    for c in cores {
                        sink.deliver(
                            c,
                            Timestamped::new(release, MemEvent::BarrierRelease { id }),
                        );
                    }
                }
            }
            MemEvent::LockAcquire { id } => {
                if let Some(grant) = self.sync.lock_acquire(from, id, ts) {
                    sink.deliver(from, Timestamped::new(grant, MemEvent::LockGranted { id }));
                }
            }
            MemEvent::LockRelease { id } => {
                if let Some((next, grant)) = self.sync.lock_release(from, id, ts) {
                    sink.deliver(next, Timestamped::new(grant, MemEvent::LockGranted { id }));
                }
            }
            reply @ (MemEvent::Reply { .. }
            | MemEvent::Invalidate { .. }
            | MemEvent::Downgrade { .. }
            | MemEvent::BarrierRelease { .. }
            | MemEvent::LockGranted { .. }) => {
                debug_assert!(false, "core sent a manager-direction event: {reply:?}");
            }
        }
    }

    fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("bus_transactions", self.bus.transactions());
        c.set("bus_conflicts", self.bus.conflicts());
        c.set("bus_busy_cycles", self.bus.busy_cycles());
        c.set("bus_violations", self.bus.violations());
        c.set("map_transitions", self.map.transitions());
        c.set("map_violations", self.map.violations());
        c.set("map_tracked_lines", self.map.tracked_lines() as u64);
        c.set("l2_hits", self.l2.hits());
        c.set("l2_misses", self.l2.misses());
        c.set("l2_writebacks_in", self.l2.writebacks_in());
        c.set("l2_memory_writes", self.l2.memory_writes());
        c.set("coherence_requests", self.requests);
        c.set("writebacks", self.writebacks);
        c.set("cache_to_cache_transfers", self.c2c_transfers);
        c.set("barriers_completed", self.sync.barriers_completed());
        c.set("lock_grants", self.sync.lock_grants());
        c.set("lock_contended", self.sync.lock_contended());
        c.set("cores", self.n_cores as u64);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LineAddr;
    use slacksim_core::time::Cycle;

    fn uncore() -> CmpUncore {
        CmpUncore::new(&CmpConfig::paper())
    }

    fn request(op: BusOp, line: u64, req: u32) -> MemEvent {
        MemEvent::Request {
            op,
            line: LineAddr::new(line),
            req,
            ifetch: false,
        }
    }

    fn service(
        u: &mut CmpUncore,
        from: u16,
        ts: u64,
        ev: MemEvent,
    ) -> (Vec<(CoreId, Timestamped<MemEvent>)>, Vec<ViolationEvent>) {
        let mut sink = ServiceSink::new();
        u.service(
            CoreId::new(from),
            Timestamped::new(Cycle::new(ts), ev),
            &mut sink,
        );
        (
            sink.take_deliveries().collect(),
            sink.take_violations().collect(),
        )
    }

    #[test]
    fn cold_read_misses_to_memory() {
        let mut u = uncore();
        let (deliveries, violations) = service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        assert!(violations.is_empty());
        assert_eq!(deliveries.len(), 1);
        let (to, ev) = &deliveries[0];
        assert_eq!(*to, CoreId::new(0));
        // grant(10) + miss(100) + response bus(1).
        assert_eq!(ev.ts, Cycle::new(111));
        match &ev.payload {
            MemEvent::Reply { grant, .. } => {
                assert_eq!(*grant, crate::mesi::MesiState::Exclusive)
            }
            other => panic!("unexpected delivery {other:?}"),
        }
    }

    #[test]
    fn second_reader_gets_shared_and_owner_downgrade() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        let (deliveries, _) = service(&mut u, 1, 20, request(BusOp::Rd, 7, 2));
        // Downgrade to core 0 plus reply to core 1.
        assert_eq!(deliveries.len(), 2);
        assert!(matches!(
            deliveries[0].1.payload,
            MemEvent::Downgrade { .. }
        ));
        assert_eq!(deliveries[0].0, CoreId::new(0));
        match &deliveries[1].1.payload {
            MemEvent::Reply { grant, .. } => {
                assert_eq!(*grant, crate::mesi::MesiState::Shared)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Cache-to-cache is faster than memory.
        assert!(deliveries[1].1.ts < Cycle::new(20 + 100));
    }

    #[test]
    fn rdx_invalidates_sharers() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        service(&mut u, 1, 20, request(BusOp::Rd, 7, 2));
        let (deliveries, _) = service(&mut u, 2, 30, request(BusOp::RdX, 7, 3));
        let invals: Vec<CoreId> = deliveries
            .iter()
            .filter(|(_, e)| matches!(e.payload, MemEvent::Invalidate { .. }))
            .map(|(c, _)| *c)
            .collect();
        assert_eq!(invals, vec![CoreId::new(0), CoreId::new(1)]);
    }

    #[test]
    fn upgrade_is_fast_and_dataless() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        service(&mut u, 1, 20, request(BusOp::Rd, 7, 2));
        let (deliveries, _) = service(&mut u, 0, 30, request(BusOp::Upgr, 7, 3));
        let reply = deliveries
            .iter()
            .find(|(_, e)| matches!(e.payload, MemEvent::Reply { .. }))
            .expect("reply");
        // grant(30) + upgrade(3) + resp bus(1).
        assert_eq!(reply.1.ts, Cycle::new(34));
    }

    #[test]
    fn out_of_order_requests_yield_bus_and_map_violations() {
        let mut u = uncore();
        service(&mut u, 0, 100, request(BusOp::Rd, 7, 1));
        let (_, violations) = service(&mut u, 1, 50, request(BusOp::Rd, 7, 2));
        let kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::Bus));
        assert!(kinds.contains(&ViolationKind::Map));
    }

    #[test]
    fn different_lines_only_violate_the_bus() {
        let mut u = uncore();
        service(&mut u, 0, 100, request(BusOp::Rd, 7, 1));
        let (_, violations) = service(&mut u, 1, 50, request(BusOp::Rd, 999, 2));
        let kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![ViolationKind::Bus]);
    }

    #[test]
    fn writeback_has_no_reply() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::RdX, 7, 1));
        let (deliveries, _) = service(
            &mut u,
            0,
            50,
            MemEvent::Writeback {
                line: LineAddr::new(7),
            },
        );
        assert!(deliveries.is_empty());
        assert_eq!(u.counters().get("l2_writebacks_in"), 1);
    }

    #[test]
    fn sync_traffic_bypasses_the_bus() {
        let mut u = uncore();
        let before = u.bus().transactions();
        service(&mut u, 0, 10, MemEvent::LockAcquire { id: 1 });
        service(&mut u, 0, 20, MemEvent::LockRelease { id: 1 });
        for i in 0..8u16 {
            service(&mut u, i, 30, MemEvent::BarrierArrive { id: 0 });
        }
        assert_eq!(u.bus().transactions(), before);
        assert_eq!(u.counters().get("barriers_completed"), 1);
    }

    #[test]
    fn barrier_release_reaches_all_cores() {
        let mut u = uncore();
        let mut released = Vec::new();
        for i in 0..8u16 {
            let (d, _) = service(&mut u, i, 10 + i as u64, MemEvent::BarrierArrive { id: 3 });
            released = d;
        }
        assert_eq!(released.len(), 8);
        assert!(released
            .iter()
            .all(|(_, e)| matches!(e.payload, MemEvent::BarrierRelease { id: 3 })));
    }

    #[test]
    fn counters_are_populated() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        let c = u.counters();
        assert_eq!(c.get("bus_transactions"), 1);
        assert_eq!(c.get("coherence_requests"), 1);
        assert_eq!(c.get("l2_misses"), 1);
        assert_eq!(c.get("cores"), 8);
    }
}
