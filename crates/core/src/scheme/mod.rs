//! Slack schemes: the policies that pace core-thread progress.
//!
//! Every scheme is expressed through the [`Pacer`] trait: given the current
//! global time it yields the *window end* — the exclusive upper limit on all
//! core local times. A core thread may simulate cycle `t` only while
//! `t < window_end(global)`. The schemes of the paper map to:
//!
//! | Scheme | window end | event servicing |
//! |---|---|---|
//! | cycle-by-cycle | `g + 1` | barrier: batched & sorted each cycle |
//! | bounded slack `B` | `g + B` | greedy, in arrival order |
//! | unbounded slack | `∞` | greedy |
//! | quantum `Q` | next multiple of `Q` | barrier at each boundary |
//! | adaptive | `g + B(t)`, `B` retuned by feedback | greedy |
//!
//! Barrier servicing means the manager defers event processing until every
//! core has reached the window end, then services the whole batch in
//! timestamp order. This makes cycle-by-cycle the deterministic gold
//! standard (zero violations by construction) and gives quantum simulation
//! its characteristic behaviour: ordering stays correct but event delivery
//! is delayed to the boundary, distorting timing once the quantum exceeds
//! the target's critical latency.

mod adaptive;

pub use adaptive::{AdaptiveConfig, AdaptiveController, StepPolicy};

use crate::persist::{ByteReader, ByteWriter, PersistError};
use crate::time::Cycle;

/// Observation window handed to [`Pacer::on_sample`] at each adaptive
/// sampling period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaceSample {
    /// Global time at the end of the observation window.
    pub global: Cycle,
    /// Simulated cycles covered by the window.
    pub window_cycles: u64,
    /// Violations (all kinds the controller tracks) detected inside the
    /// window.
    pub window_violations: u64,
}

impl PaceSample {
    /// Violation rate inside this window (violations per simulated cycle).
    pub fn rate(&self) -> f64 {
        if self.window_cycles == 0 {
            0.0
        } else {
            self.window_violations as f64 / self.window_cycles as f64
        }
    }
}

/// Folds per-shard minimum local times into the reconciled global floor
/// used by the threaded engine's two-level manager tree (DESIGN §18).
///
/// Each shard manager publishes the minimum local time of its cores as
/// observed *before* it last forwarded their OutQ events, so every floor
/// is conservative: all cross-shard events with timestamps strictly below
/// it are already visible to the root. The reconciled global is the
/// minimum over the shard floors, and window arithmetic
/// ([`Pacer::window_end`]) is evaluated at that floor. Evaluating the
/// window at the *reconciled* floor instead of the raw core-clock minimum
/// keeps slack windows sound under lagging consolidation — a shard that
/// has not yet forwarded its events holds the window back, never the
/// reverse — and thereby bounds forwarding-ring growth: cores cannot run
/// ahead of what the root has consolidated by more than the scheme's
/// slack plus the lead cap.
///
/// Returns `None` for an empty shard set (an engine-level impossibility —
/// every run has at least shard 0).
///
/// # Examples
///
/// ```
/// use slacksim_core::scheme::reconcile_shard_floor;
/// use slacksim_core::time::Cycle;
///
/// let floors = [Cycle::new(120), Cycle::new(96), Cycle::new(118)];
/// assert_eq!(reconcile_shard_floor(floors), Some(Cycle::new(96)));
/// assert_eq!(reconcile_shard_floor([]), None);
/// ```
pub fn reconcile_shard_floor(floors: impl IntoIterator<Item = Cycle>) -> Option<Cycle> {
    floors.into_iter().min()
}

/// A pacing policy: decides how far ahead of global time core threads may
/// run, and whether the manager services events greedily or at barriers.
pub trait Pacer: Send {
    /// Exclusive upper limit on local times given the current global time.
    ///
    /// Every implementation must be monotone in `global` and must return a
    /// value strictly greater than `global` (otherwise no core could ever
    /// advance and the simulation would deadlock).
    fn window_end(&self, global: Cycle) -> Cycle;

    /// When `true`, the manager defers event servicing until all cores have
    /// reached the window end, then services the batch in timestamp order.
    fn barrier_service(&self) -> bool {
        false
    }

    /// Feedback hook, invoked once per sampling period with the violation
    /// observations of that window. Only adaptive schemes react.
    fn on_sample(&mut self, _sample: &PaceSample) {}

    /// The current slack bound in cycles, when the concept applies.
    fn current_bound(&self) -> Option<u64> {
        None
    }

    /// Short human-readable scheme name for reports.
    fn scheme_name(&self) -> &'static str;

    /// Per-core window ends, for schemes that pace each core relative to
    /// *other cores' clocks* instead of global time (e.g. peer-to-peer
    /// synchronisation). Returning `None` (the default) keeps the uniform
    /// [`window_end`](Pacer::window_end) for every core.
    ///
    /// Implementations must keep the system live: the core holding the
    /// minimum local time must always receive a window strictly greater
    /// than its local time.
    fn window_ends(&mut self, _locals: &[Cycle]) -> Option<Vec<Cycle>> {
        None
    }

    /// Clones the pacer, including any adaptive state, into a new box.
    /// Required so the engines can snapshot pacer state at checkpoints.
    fn clone_box(&self) -> Box<dyn Pacer>;

    /// Serializes the pacer's *dynamic* state for durable checkpoints.
    /// Stateless pacers (everything reconstructible from the [`Scheme`]
    /// configuration) write nothing, which is the default.
    fn save_state(&self, _w: &mut ByteWriter) {}

    /// Restores dynamic state captured by [`save_state`](Pacer::save_state)
    /// into a pacer freshly built from the same [`Scheme`] configuration.
    fn load_state(&mut self, _r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        Ok(())
    }
}

impl Clone for Box<dyn Pacer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Configuration enum covering every scheme in the paper; converts into a
/// boxed [`Pacer`] via [`Scheme::into_pacer`].
///
/// # Examples
///
/// ```
/// use slacksim_core::scheme::Scheme;
/// use slacksim_core::time::Cycle;
///
/// let pacer = Scheme::BoundedSlack { bound: 8 }.into_pacer();
/// assert_eq!(pacer.window_end(Cycle::new(100)), Cycle::new(108));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// Barrier after every simulated cycle — the gold standard.
    CycleByCycle,
    /// Clocks kept within `bound` cycles of the slowest core.
    BoundedSlack {
        /// Maximum clock spread in cycles (must be ≥ 1).
        bound: u64,
    },
    /// No synchronisation between core threads at all.
    UnboundedSlack,
    /// Barrier at every multiple of `quantum` cycles.
    Quantum {
        /// Quantum length in cycles (must be ≥ 1).
        quantum: u64,
    },
    /// Bounded slack whose bound is retuned by a violation-rate feedback
    /// loop (paper §4).
    Adaptive(AdaptiveConfig),
    /// Graphite-style peer-to-peer synchronisation (the paper's §6 names
    /// this as an approach to explore): each core periodically picks a
    /// random peer and may only run up to that peer's clock plus `lead`.
    LaxP2p {
        /// How far ahead of the chosen peer a core may run, in cycles.
        lead: u64,
        /// How often (in global cycles) each core re-picks its peer.
        period: u64,
        /// Seed for the deterministic peer choices.
        seed: u64,
    },
}

impl Scheme {
    /// Builds the pacer implementing this scheme.
    ///
    /// # Panics
    ///
    /// Panics if a bound or quantum of 0 is configured.
    pub fn into_pacer(self) -> Box<dyn Pacer> {
        match self {
            Scheme::CycleByCycle => Box::new(CycleByCycle),
            Scheme::BoundedSlack { bound } => Box::new(BoundedSlack::new(bound)),
            Scheme::UnboundedSlack => Box::new(UnboundedSlack),
            Scheme::Quantum { quantum } => Box::new(Quantum::new(quantum)),
            Scheme::Adaptive(cfg) => Box::new(AdaptiveController::new(cfg)),
            Scheme::LaxP2p { lead, period, seed } => Box::new(LaxP2p::new(lead, period, seed)),
        }
    }

    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::CycleByCycle => "cycle-by-cycle",
            Scheme::BoundedSlack { .. } => "bounded-slack",
            Scheme::UnboundedSlack => "unbounded-slack",
            Scheme::Quantum { .. } => "quantum",
            Scheme::Adaptive(_) => "adaptive-slack",
            Scheme::LaxP2p { .. } => "lax-p2p",
        }
    }
}

/// Cycle-by-cycle pacer: lockstep with barrier servicing.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleByCycle;

impl Pacer for CycleByCycle {
    fn window_end(&self, global: Cycle) -> Cycle {
        global + 1
    }

    fn barrier_service(&self) -> bool {
        true
    }

    fn current_bound(&self) -> Option<u64> {
        Some(1)
    }

    fn scheme_name(&self) -> &'static str {
        "cycle-by-cycle"
    }

    fn clone_box(&self) -> Box<dyn Pacer> {
        Box::new(*self)
    }
}

/// Bounded-slack pacer: all clocks within `bound` of the slowest.
#[derive(Debug, Clone, Copy)]
pub struct BoundedSlack {
    bound: u64,
}

impl BoundedSlack {
    /// Creates a pacer with the given slack bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn new(bound: u64) -> Self {
        assert!(bound >= 1, "slack bound must be at least 1");
        BoundedSlack { bound }
    }
}

impl Pacer for BoundedSlack {
    fn window_end(&self, global: Cycle) -> Cycle {
        global.saturating_add(self.bound)
    }

    fn current_bound(&self) -> Option<u64> {
        Some(self.bound)
    }

    fn scheme_name(&self) -> &'static str {
        "bounded-slack"
    }

    fn clone_box(&self) -> Box<dyn Pacer> {
        Box::new(*self)
    }
}

/// Unbounded-slack pacer: cores never wait for each other.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnboundedSlack;

impl Pacer for UnboundedSlack {
    fn window_end(&self, _global: Cycle) -> Cycle {
        Cycle::MAX
    }

    fn scheme_name(&self) -> &'static str {
        "unbounded-slack"
    }

    fn clone_box(&self) -> Box<dyn Pacer> {
        Box::new(*self)
    }
}

/// Quantum pacer: barrier at every multiple of the quantum.
#[derive(Debug, Clone, Copy)]
pub struct Quantum {
    quantum: u64,
}

impl Quantum {
    /// Creates a pacer with the given quantum length.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is 0.
    pub fn new(quantum: u64) -> Self {
        assert!(quantum >= 1, "quantum must be at least 1");
        Quantum { quantum }
    }
}

impl Pacer for Quantum {
    fn window_end(&self, global: Cycle) -> Cycle {
        global.next_multiple_of(self.quantum)
    }

    fn barrier_service(&self) -> bool {
        true
    }

    fn current_bound(&self) -> Option<u64> {
        Some(self.quantum)
    }

    fn scheme_name(&self) -> &'static str {
        "quantum"
    }

    fn clone_box(&self) -> Box<dyn Pacer> {
        Box::new(*self)
    }
}

/// Peer-to-peer pacer: each core is paced against one randomly chosen
/// peer, re-drawn every `period` global cycles (Graphite's *LaxP2P*,
/// paper §6).
///
/// Liveness: the slowest core's peer is at or ahead of it, so its window
/// is always at least `global + lead > global`.
#[derive(Debug, Clone)]
pub struct LaxP2p {
    lead: u64,
    period: u64,
    rng: crate::rng::Xoshiro256,
    partners: Vec<usize>,
    next_shuffle: Cycle,
}

impl LaxP2p {
    /// Creates a pacer with the given lead and re-pairing period.
    ///
    /// # Panics
    ///
    /// Panics if `lead` or `period` is 0.
    pub fn new(lead: u64, period: u64, seed: u64) -> Self {
        assert!(lead >= 1, "p2p lead must be at least 1");
        assert!(period >= 1, "p2p period must be at least 1");
        LaxP2p {
            lead,
            period,
            rng: crate::rng::Xoshiro256::new(seed),
            partners: Vec::new(),
            next_shuffle: Cycle::ZERO,
        }
    }

    fn reshuffle(&mut self, n: usize) {
        self.partners.clear();
        for i in 0..n {
            // Pick a peer other than yourself (any peer for n == 1).
            let mut p = self.rng.next_below(n as u64) as usize;
            if p == i && n > 1 {
                p = (p + 1) % n;
            }
            self.partners.push(p);
        }
    }
}

impl Pacer for LaxP2p {
    fn window_end(&self, global: Cycle) -> Cycle {
        // Fallback uniform window (used by engines only before the first
        // per-core computation): behave like bounded slack at `lead`.
        global.saturating_add(self.lead)
    }

    fn window_ends(&mut self, locals: &[Cycle]) -> Option<Vec<Cycle>> {
        let n = locals.len();
        let global = locals.iter().copied().min().unwrap_or(Cycle::ZERO);
        if self.partners.len() != n || global >= self.next_shuffle {
            self.reshuffle(n);
            self.next_shuffle = global.saturating_add(self.period);
        }
        Some(
            (0..n)
                .map(|i| locals[self.partners[i]].saturating_add(self.lead))
                .collect(),
        )
    }

    fn current_bound(&self) -> Option<u64> {
        Some(self.lead)
    }

    fn scheme_name(&self) -> &'static str {
        "lax-p2p"
    }

    fn clone_box(&self) -> Box<dyn Pacer> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut ByteWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        w.u32(self.partners.len() as u32);
        for &p in &self.partners {
            w.u32(p as u32);
        }
        w.u64(self.next_shuffle.as_u64());
    }

    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        self.rng = crate::rng::Xoshiro256::from_state(s);
        let n = r.u32()? as usize;
        self.partners = (0..n)
            .map(|_| r.u32().map(|p| p as usize))
            .collect::<Result<_, _>>()?;
        self.next_shuffle = Cycle::new(r.u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(t: u64) -> Cycle {
        Cycle::new(t)
    }

    #[test]
    fn cycle_by_cycle_window_is_one() {
        let p = CycleByCycle;
        assert_eq!(p.window_end(g(0)), g(1));
        assert_eq!(p.window_end(g(41)), g(42));
        assert!(p.barrier_service());
        assert_eq!(p.current_bound(), Some(1));
    }

    #[test]
    fn bounded_window_tracks_global() {
        let p = BoundedSlack::new(5);
        assert_eq!(p.window_end(g(0)), g(5));
        assert_eq!(p.window_end(g(100)), g(105));
        assert!(!p.barrier_service());
        assert_eq!(p.current_bound(), Some(5));
    }

    #[test]
    fn bounded_saturates_at_max() {
        let p = BoundedSlack::new(10);
        assert_eq!(p.window_end(Cycle::MAX), Cycle::MAX);
    }

    #[test]
    #[should_panic(expected = "slack bound must be at least 1")]
    fn bounded_rejects_zero() {
        let _ = BoundedSlack::new(0);
    }

    #[test]
    fn unbounded_window_is_max() {
        let p = UnboundedSlack;
        assert_eq!(p.window_end(g(7)), Cycle::MAX);
        assert_eq!(p.current_bound(), None);
    }

    #[test]
    fn quantum_window_snaps_to_boundary() {
        let p = Quantum::new(10);
        assert_eq!(p.window_end(g(0)), g(10));
        assert_eq!(p.window_end(g(9)), g(10));
        assert_eq!(p.window_end(g(10)), g(20));
        assert!(p.barrier_service());
    }

    #[test]
    #[should_panic(expected = "quantum must be at least 1")]
    fn quantum_rejects_zero() {
        let _ = Quantum::new(0);
    }

    #[test]
    fn windows_always_exceed_global() {
        // Liveness invariant shared by all pacers.
        let pacers: Vec<Box<dyn Pacer>> = vec![
            Scheme::CycleByCycle.into_pacer(),
            Scheme::BoundedSlack { bound: 3 }.into_pacer(),
            Scheme::UnboundedSlack.into_pacer(),
            Scheme::Quantum { quantum: 7 }.into_pacer(),
            Scheme::Adaptive(AdaptiveConfig::default()).into_pacer(),
        ];
        for p in &pacers {
            for t in [0u64, 1, 6, 7, 8, 63, 64, 1000] {
                assert!(
                    p.window_end(g(t)) > g(t),
                    "{} stalls at {t}",
                    p.scheme_name()
                );
            }
        }
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::CycleByCycle.name(), "cycle-by-cycle");
        assert_eq!(Scheme::BoundedSlack { bound: 2 }.name(), "bounded-slack");
        assert_eq!(Scheme::UnboundedSlack.name(), "unbounded-slack");
        assert_eq!(Scheme::Quantum { quantum: 4 }.name(), "quantum");
        assert_eq!(
            Scheme::Adaptive(AdaptiveConfig::default()).name(),
            "adaptive-slack"
        );
    }

    #[test]
    fn lax_p2p_windows_follow_partners() {
        let mut p = LaxP2p::new(10, 100, 7);
        let locals = vec![Cycle::new(50), Cycle::new(80), Cycle::new(60)];
        let wins = p.window_ends(&locals).expect("per-core windows");
        assert_eq!(wins.len(), 3);
        // Liveness: the slowest core can always advance.
        assert!(wins[0] > locals[0]);
        // Every window is some peer's local + lead.
        for (i, w) in wins.iter().enumerate() {
            assert!(
                locals.iter().any(|&l| l + 10 == *w),
                "window {i} = {w} not peer-derived"
            );
        }
    }

    #[test]
    fn lax_p2p_reshuffles_deterministically() {
        let locals = vec![Cycle::new(0); 4];
        let mut a = LaxP2p::new(5, 50, 9);
        let mut b = LaxP2p::new(5, 50, 9);
        assert_eq!(a.window_ends(&locals), b.window_ends(&locals));
    }

    #[test]
    #[should_panic(expected = "p2p lead must be at least 1")]
    fn lax_p2p_rejects_zero_lead() {
        let _ = LaxP2p::new(0, 10, 1);
    }

    #[test]
    fn scheme_p2p_name() {
        assert_eq!(
            Scheme::LaxP2p {
                lead: 8,
                period: 100,
                seed: 1
            }
            .name(),
            "lax-p2p"
        );
    }

    #[test]
    fn reconcile_shard_floor_takes_the_minimum() {
        assert_eq!(
            reconcile_shard_floor([g(50), g(10), g(40)]),
            Some(g(10)),
            "a lagging shard holds the reconciled global back"
        );
        assert_eq!(reconcile_shard_floor([g(7)]), Some(g(7)));
        assert_eq!(reconcile_shard_floor([]), None);
    }

    #[test]
    fn reconciled_windows_never_overtake_a_lagging_shard() {
        // Window arithmetic over the reconciled floor must be identical to
        // evaluating the pacer at the slowest shard's clock: the window a
        // fast shard sees is capped by the slow shard's published minimum.
        let p = BoundedSlack::new(8);
        let floors = [g(100), g(64), g(99)];
        let floor = reconcile_shard_floor(floors).expect("non-empty");
        assert_eq!(p.window_end(floor), p.window_end(g(64)));
        assert!(p.window_end(floor) < p.window_end(g(100)));
    }

    #[test]
    fn sample_rate() {
        let s = PaceSample {
            global: g(100),
            window_cycles: 1000,
            window_violations: 3,
        };
        assert!((s.rate() - 0.003).abs() < 1e-12);
        let zero = PaceSample {
            global: g(0),
            window_cycles: 0,
            window_violations: 0,
        };
        assert_eq!(zero.rate(), 0.0);
    }
}
