//! Table 2: wall-clock simulation time of cycle-by-cycle, unbounded
//! slack, adaptive slack (0.01% target, 5% band), and adaptive slack with
//! periodic checkpointing every 5 k / 10 k / 50 k / 100 k simulated
//! cycles — the latter in both checkpoint capture modes (full clones and
//! incremental deltas, DESIGN §12).
//!
//! Paper shape: unbounded slack beats cycle-by-cycle by 2–3×; adaptive
//! lands in between; checkpointing overhead makes short intervals (5 k,
//! 10 k) slower than cycle-by-cycle and fades by 50 k–100 k. Delta
//! capture shrinks the per-checkpoint constant, so its columns must sit
//! at or below the full-clone columns at every interval.

use slacksim::scheme::Scheme;
use slacksim::{Benchmark, CheckpointMode, SpeculationConfig};

use crate::runner::{calibrated_adaptive, run_threaded};
use crate::scale::Scale;
use crate::table::Table;

/// Checkpoint intervals, in simulated cycles (paper values).
pub const INTERVALS: [u64; 4] = [5_000, 10_000, 50_000, 100_000];

/// Measured row for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The benchmark measured.
    pub benchmark: Benchmark,
    /// Cycle-by-cycle wall seconds.
    pub cc: f64,
    /// Unbounded-slack wall seconds.
    pub su: f64,
    /// Adaptive (0.01%, 5% band) wall seconds.
    pub adaptive: f64,
    /// Adaptive + full-clone checkpointing wall seconds, per interval of
    /// [`INTERVALS`].
    pub checkpointed: [f64; 4],
    /// Adaptive + delta checkpointing wall seconds, per interval of
    /// [`INTERVALS`].
    pub checkpointed_delta: [f64; 4],
}

/// Measures every benchmark.
pub fn measure(scale: &Scale) -> Vec<Table2Row> {
    Benchmark::ALL
        .iter()
        .map(|&benchmark| {
            let cc = run_threaded(scale, benchmark, Scheme::CycleByCycle)
                .wall
                .as_secs_f64();
            let su = run_threaded(scale, benchmark, Scheme::UnboundedSlack)
                .wall
                .as_secs_f64();
            let (adaptive_cfg, _) = calibrated_adaptive(scale, benchmark, 0.01, 5.0);
            let adaptive = run_threaded(scale, benchmark, Scheme::Adaptive(adaptive_cfg.clone()))
                .wall
                .as_secs_f64();
            let mut checkpointed = [0.0; 4];
            let mut checkpointed_delta = [0.0; 4];
            for (slot, mode) in [
                (&mut checkpointed, CheckpointMode::Full),
                (&mut checkpointed_delta, CheckpointMode::Delta),
            ] {
                for (i, interval) in INTERVALS.iter().enumerate() {
                    let mut sim = crate::runner::sim(scale, benchmark);
                    sim.scheme(Scheme::Adaptive(adaptive_cfg.clone()))
                        .engine(slacksim::EngineKind::Threaded)
                        .speculation(SpeculationConfig::checkpoint_only(*interval).with_mode(mode));
                    slot[i] = sim.run().expect("checkpointed run").wall.as_secs_f64();
                }
            }
            eprintln!(
                "table2: {benchmark}: CC={cc:.3}s SU={su:.3}s Adapt={adaptive:.3}s \
                 cp-full={checkpointed:?} cp-delta={checkpointed_delta:?}"
            );
            Table2Row {
                benchmark,
                cc,
                su,
                adaptive,
                checkpointed,
                checkpointed_delta,
            }
        })
        .collect()
}

/// Renders the table.
pub fn render(rows: &[Table2Row]) -> Table {
    let mut t = Table::new(
        "Table 2. Simulation time of schemes with 0.01% target violation rate (seconds).",
    );
    t.headers([
        "", "CC", "SU", "Adapt", "5K", "10K", "50K", "100K", "5Kd", "10Kd", "50Kd", "100Kd",
    ]);
    for r in rows {
        t.row([
            r.benchmark.name().to_string(),
            format!("{:.3}", r.cc),
            format!("{:.3}", r.su),
            format!("{:.3}", r.adaptive),
            format!("{:.3}", r.checkpointed[0]),
            format!("{:.3}", r.checkpointed[1]),
            format!("{:.3}", r.checkpointed[2]),
            format!("{:.3}", r.checkpointed[3]),
            format!("{:.3}", r.checkpointed_delta[0]),
            format!("{:.3}", r.checkpointed_delta[1]),
            format!("{:.3}", r.checkpointed_delta[2]),
            format!("{:.3}", r.checkpointed_delta[3]),
        ]);
    }
    t.note("threaded engine; NK columns checkpoint every N cycles with full in-memory snapshots (paper: fork()), NKd columns with incremental deltas (DESIGN §12)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_match_paper() {
        assert_eq!(INTERVALS, [5_000, 10_000, 50_000, 100_000]);
    }

    #[test]
    fn render_has_one_row_per_benchmark() {
        let rows: Vec<Table2Row> = Benchmark::ALL
            .iter()
            .map(|&benchmark| Table2Row {
                benchmark,
                cc: 1.0,
                su: 0.4,
                adaptive: 0.7,
                checkpointed: [2.0, 1.5, 0.9, 0.8],
                checkpointed_delta: [1.1, 0.9, 0.8, 0.8],
            })
            .collect();
        let t = render(&rows);
        assert_eq!(t.len(), 4);
        let text = t.to_string();
        assert!(text.contains("Water-Nsq"));
        assert!(text.contains("5Kd"), "delta columns rendered");
    }
}
