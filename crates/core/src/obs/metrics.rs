//! The metrics registry: named time-series gauges and log2-bucketed
//! histograms.
//!
//! Gauges are sampled on the manager's cadence — every `sample_every` global
//! cycles — and keep their full history as `(cycle, value)` points so the
//! CSV exporter can dump real time series. Histograms aggregate
//! distributions (manager wait, violation distance, queue depth) into 65
//! power-of-two buckets with O(1) recording and constant memory.

use std::collections::BTreeMap;

use crate::time::Cycle;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use slacksim_core::obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [0, 1, 3, 100, 100_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 100_000);
/// assert!(h.percentile(0.5) <= 128); // p50 bucket upper bound
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (`0`, then `2^i − 1`).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `p`-quantile (`0 ≤ p ≤ 1`);
    /// 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Iterates `(bucket_upper_bound, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper_bound(i), c))
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for i in 0..BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One gauge sample: the value of a named series at a simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Global simulated time of the sample.
    pub cycle: u64,
    /// Sampled value.
    pub value: f64,
}

/// Stable handle to an interned gauge series — see
/// [`MetricsRegistry::intern_gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Stable handle to an interned histogram — see
/// [`MetricsRegistry::intern_histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// Named gauges (full time series) and histograms, sampled on a fixed
/// global-cycle cadence.
///
/// Hot samplers (the engines' per-sample loops) intern their keys once
/// at startup with [`intern_gauge`](Self::intern_gauge) /
/// [`intern_histogram`](Self::intern_histogram) and record through the
/// returned ids — no string formatting, hashing or allocation per
/// sample. The string-keyed [`gauge`](Self::gauge) /
/// [`histogram`](Self::histogram) entry points remain for cold paths
/// and allocate only on the first touch of a new name.
///
/// # Examples
///
/// ```
/// use slacksim_core::obs::MetricsRegistry;
/// use slacksim_core::time::Cycle;
///
/// let mut m = MetricsRegistry::new(100);
/// assert!(m.sample_ready(Cycle::new(100)));
/// assert!(!m.sample_ready(Cycle::new(150)));
/// m.gauge("slack_bound", Cycle::new(100), 8.0);
/// m.histogram("manager_wait_ns").record(1500);
/// let id = m.intern_gauge("slack_bound");
/// m.gauge_by(id, Cycle::new(200), 16.0);
/// assert_eq!(m.gauges().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    sample_every: u64,
    next_sample: u64,
    gauge_index: BTreeMap<String, usize>,
    gauge_series: Vec<Vec<SeriesPoint>>,
    hist_index: BTreeMap<String, usize>,
    hists: Vec<Histogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(1024)
    }
}

impl MetricsRegistry {
    /// Creates a registry sampling every `sample_every` global cycles
    /// (values of 0 are clamped to 1).
    pub fn new(sample_every: u64) -> Self {
        let step = sample_every.max(1);
        MetricsRegistry {
            sample_every: step,
            next_sample: step,
            gauge_index: BTreeMap::new(),
            gauge_series: Vec::new(),
            hist_index: BTreeMap::new(),
            hists: Vec::new(),
        }
    }

    /// The sampling cadence in global cycles.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Returns `true` when global time has crossed the next sampling point,
    /// and advances the cadence past `global`. At most one `true` per
    /// crossing, no matter how far time jumped.
    pub fn sample_ready(&mut self, global: Cycle) -> bool {
        if global.as_u64() < self.next_sample {
            return false;
        }
        while self.next_sample <= global.as_u64() {
            self.next_sample = self.next_sample.saturating_add(self.sample_every);
        }
        true
    }

    /// Interns a gauge name, returning a stable id for allocation-free
    /// recording. Repeated calls with the same name return the same id.
    pub fn intern_gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&i) = self.gauge_index.get(name) {
            return GaugeId(i);
        }
        let i = self.gauge_series.len();
        self.gauge_series.push(Vec::new());
        self.gauge_index.insert(name.to_string(), i);
        GaugeId(i)
    }

    /// Appends one point to an interned gauge series. No lookup, no
    /// allocation beyond amortized series growth.
    #[inline]
    pub fn gauge_by(&mut self, id: GaugeId, cycle: Cycle, value: f64) {
        debug_assert!(
            value.is_finite(),
            "non-finite gauge sample (id {id:?}, cycle {cycle}): {value}"
        );
        self.gauge_series[id.0].push(SeriesPoint {
            cycle: cycle.as_u64(),
            value,
        });
    }

    /// Appends one point to the named gauge series (interning the name
    /// on first touch; subsequent calls allocate nothing).
    pub fn gauge(&mut self, name: &str, cycle: Cycle, value: f64) {
        let id = self.intern_gauge(name);
        self.gauge_by(id, cycle, value);
    }

    /// Interns a histogram name, returning a stable id for
    /// allocation-free recording.
    pub fn intern_histogram(&mut self, name: &str) -> HistId {
        if let Some(&i) = self.hist_index.get(name) {
            return HistId(i);
        }
        let i = self.hists.len();
        self.hists.push(Histogram::new());
        self.hist_index.insert(name.to_string(), i);
        HistId(i)
    }

    /// The interned histogram behind `id`.
    #[inline]
    pub fn histogram_by(&mut self, id: HistId) -> &mut Histogram {
        &mut self.hists[id.0]
    }

    /// The named histogram, created empty on first touch.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        let id = self.intern_histogram(name);
        self.histogram_by(id)
    }

    /// Iterates gauge series in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &[SeriesPoint])> {
        self.gauge_index
            .iter()
            .map(|(n, &i)| (n.as_str(), self.gauge_series[i].as_slice()))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hist_index
            .iter()
            .map(|(n, &i)| (n.as_str(), &self.hists[i]))
    }

    /// Returns `true` when no gauge point or histogram sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.gauge_series.iter().all(Vec::is_empty) && self.hists.iter().all(|h| h.count() == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(3), 7);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        // p50 of 0..1000 lives in the [512, 1023] bucket or below.
        assert!(p50 >= 255, "p50 {p50} implausibly low");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn sample_cadence_fires_once_per_crossing() {
        let mut m = MetricsRegistry::new(100);
        assert!(!m.sample_ready(Cycle::new(99)));
        assert!(m.sample_ready(Cycle::new(100)));
        assert!(!m.sample_ready(Cycle::new(100)));
        assert!(!m.sample_ready(Cycle::new(199)));
        // A jump over several sampling points yields a single trigger.
        assert!(m.sample_ready(Cycle::new(1000)));
        assert!(!m.sample_ready(Cycle::new(1000)));
        assert!(m.sample_ready(Cycle::new(1100)));
    }

    #[test]
    fn gauges_keep_history_in_order() {
        let mut m = MetricsRegistry::new(10);
        m.gauge("drift.core0", Cycle::new(10), 1.0);
        m.gauge("drift.core0", Cycle::new(20), 4.0);
        m.gauge("bound", Cycle::new(10), 8.0);
        let series: Vec<(&str, usize)> = m.gauges().map(|(n, p)| (n, p.len())).collect();
        assert_eq!(series, vec![("bound", 1), ("drift.core0", 2)]);
    }

    #[test]
    fn interned_ids_alias_string_keys() {
        let mut m = MetricsRegistry::new(10);
        let id = m.intern_gauge("drift.core0");
        assert_eq!(m.intern_gauge("drift.core0"), id);
        m.gauge_by(id, Cycle::new(10), 1.0);
        m.gauge("drift.core0", Cycle::new(20), 2.0);
        let pts: Vec<_> = m.gauges().map(|(n, p)| (n, p.len())).collect();
        assert_eq!(pts, vec![("drift.core0", 2)]);

        let h = m.intern_histogram("wait");
        m.histogram_by(h).record(5);
        m.histogram("wait").record(7);
        assert_eq!(m.histograms().next().unwrap().1.count(), 2);
    }

    #[test]
    fn is_empty_reflects_recorded_data_not_interned_keys() {
        let mut m = MetricsRegistry::new(10);
        assert!(m.is_empty());
        let _ = m.intern_gauge("a");
        let _ = m.intern_histogram("b");
        assert!(m.is_empty(), "interning alone records nothing");
        m.gauge("a", Cycle::new(1), 0.5);
        assert!(!m.is_empty());
    }

    #[test]
    fn zero_cadence_is_clamped() {
        let mut m = MetricsRegistry::new(0);
        assert_eq!(m.sample_every(), 1);
        assert!(m.sample_ready(Cycle::new(1)));
    }
}
