//! The split request/response snooping bus.
//!
//! Requests are granted in the order the manager services them; the bus is
//! the single most contended simulation resource and carries a single
//! monitoring variable — the source of *bus violations* (simulation state
//! violations, paper §3). Because a transaction occupies the request bus
//! for one cycle, conflicts can arise within one cycle of latency, which
//! is what forces the critical latency of an accurate quantum simulation
//! down to a single clock (paper §1).
//!
//! Both buses are modelled as slot-reservation resources: a transaction
//! occupies the first free slot at or after its request time. A single
//! "free-from" pointer would impose head-of-line blocking (a 100-cycle
//! memory reply would delay an unrelated earlier-ready transfer), which
//! the target's split-transaction bus does not have.

use slacksim_core::checkpoint::Checkpointable;
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};
use slacksim_core::time::Cycle;
use slacksim_core::violation::TimestampMonitor;

/// Reserved-slot calendar for one bus, with each reservation occupying
/// `occupancy` consecutive cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SlotCalendar {
    pub(crate) occupancy: u64,
    /// Reservation starts, ascending and duplicate-free. Arrivals are
    /// near-monotone, so inserts land at (or within a few elements of) the
    /// tail — a sorted `Vec` beats a `BTreeSet` on both the binary-searched
    /// conflict probe and the insert, with no per-node allocation.
    reserved: Vec<u64>,
    horizon: u64,
}

/// Reservations further than this many cycles in the past of the newest
/// reservation are pruned; any request that old would be a (already
/// counted) violating straggler and may treat those slots as free.
const PRUNE_WINDOW: u64 = 1 << 14;

impl SlotCalendar {
    pub(crate) fn new(occupancy: u64) -> Self {
        assert!(occupancy >= 1, "bus occupancy must be at least 1");
        SlotCalendar {
            occupancy,
            reserved: Vec::new(),
            horizon: 0,
        }
    }

    /// Reserves and returns the first slot start `>= from` whose
    /// `occupancy` cycles are all free.
    pub(crate) fn reserve(&mut self, from: u64) -> u64 {
        let c = self.occupancy;
        // Past-the-horizon fast path: every existing reservation starts at
        // or below `horizon`, so a request at `horizon + c` or later can
        // never overlap one — its slot is free by construction. Requests
        // arrive in near-monotone timestamp order on every engine's
        // servicing path, so this branch takes the tree walk off the hot
        // path entirely for uncontended traffic.
        if from >= self.horizon + c || self.reserved.is_empty() {
            // Strictly past every existing start, so pushing keeps the Vec
            // sorted.
            self.reserved.push(from);
            self.horizon = self.horizon.max(from);
            self.maybe_prune();
            return from;
        }
        let mut slot = from;
        let mut end = self.reserved.partition_point(|&r| r < slot + c);
        loop {
            // Any reservation r with r + c > slot and r < slot + c overlaps;
            // the latest such r (if any) sits just before `end`.
            match self.reserved[..end].last().copied() {
                Some(r) if r + c > slot => {
                    slot = r + c;
                    end += self.reserved[end..].partition_point(|&r| r < slot + c);
                }
                _ => break,
            }
        }
        self.reserved.insert(end, slot);
        self.horizon = self.horizon.max(slot);
        self.maybe_prune();
        slot
    }

    /// Drops reservations far enough behind the horizon that no future
    /// request can legitimately land among them (see [`PRUNE_WINDOW`]).
    #[inline]
    fn maybe_prune(&mut self) {
        if self.reserved.len() > 4096 {
            let cutoff = self.horizon.saturating_sub(PRUNE_WINDOW);
            let keep_from = self.reserved.partition_point(|&r| r < cutoff);
            self.reserved.drain(..keep_from);
        }
    }

    /// Serializes the calendar (occupancy is configuration, not stored).
    pub(crate) fn save_state(&self, w: &mut ByteWriter) {
        w.u64(self.horizon);
        w.u32(self.reserved.len() as u32);
        for &slot in &self.reserved {
            w.u64(slot);
        }
    }

    pub(crate) fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        let horizon = r.u64()?;
        let n = r.u32()? as usize;
        let mut reserved = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            reserved.push(r.u64()?);
        }
        reserved.sort_unstable();
        reserved.dedup();
        if reserved.len() != n {
            return Err(PersistError::Corrupt("duplicate bus reservation slot"));
        }
        self.horizon = horizon;
        self.reserved = reserved;
        Ok(())
    }
}

/// Result of arbitrating one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// Cycle at which the request owns the request bus.
    pub grant: Cycle,
    /// Whether the request arrived out of timestamp order (bus violation).
    pub violation: bool,
    /// The bus monitor's largest observed timestamp at arbitration time
    /// (feeds violation-distance observability).
    pub high_water: Cycle,
    /// Whether the request had to wait for another transaction
    /// (bus conflict).
    pub conflict: bool,
}

/// Split-transaction bus timing state.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::bus::Bus;
/// use slacksim_core::time::Cycle;
///
/// let mut bus = Bus::new(1, 1);
/// let a = bus.arbitrate(Cycle::new(10));
/// let b = bus.arbitrate(Cycle::new(10)); // same-cycle conflict
/// assert_eq!(a.grant, Cycle::new(10));
/// assert_eq!(b.grant, Cycle::new(11));
/// assert!(b.conflict && !b.violation);
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    request: SlotCalendar,
    response: SlotCalendar,
    monitor: TimestampMonitor,
    transactions: u64,
    conflicts: u64,
    violations: u64,
    busy_cycles: u64,
    /// Mutation generation (tracking metadata: excluded from equality).
    /// The bus is dirtied by essentially every transaction, so it tracks
    /// one whole-struct generation instead of fine-grained stamps — its
    /// delta is all-or-nothing.
    gen: u64,
}

/// Equality is over model state only; the generation counter is capture
/// bookkeeping.
impl PartialEq for Bus {
    fn eq(&self, other: &Self) -> bool {
        self.request == other.request
            && self.response == other.response
            && self.monitor == other.monitor
            && self.transactions == other.transactions
            && self.conflicts == other.conflicts
            && self.violations == other.violations
            && self.busy_cycles == other.busy_cycles
    }
}

impl Eq for Bus {}

/// Incremental state carrier for the [`Bus`]: whole-struct, present only
/// when the bus mutated since the capture baseline. Capture pays one
/// clone — the same cost the bus contributes to a full snapshot — and
/// apply *moves* the box into place, so the delta path never clones the
/// calendars twice.
#[derive(Debug, Clone)]
pub struct BusDelta {
    gen: u64,
    state: Option<Box<Bus>>,
}

impl BusDelta {
    /// Whether the delta carries any state.
    pub fn is_dirty(&self) -> bool {
        self.state.is_some()
    }
}

impl Checkpointable for Bus {
    type Delta = BusDelta;

    fn generation(&self) -> u64 {
        self.gen
    }

    fn capture_delta(&mut self, since_gen: u64) -> BusDelta {
        BusDelta {
            gen: self.gen,
            state: (self.gen > since_gen).then(|| Box::new(self.clone())),
        }
    }

    fn apply_delta(&mut self, delta: BusDelta) {
        let gen = self.gen.max(delta.gen);
        if let Some(state) = delta.state {
            *self = *state;
        }
        self.gen = gen;
    }

    fn restore_from(&mut self, base: &Self, since_gen: u64) {
        if self.gen > since_gen {
            let live_gen = self.gen;
            *self = base.clone();
            self.gen = live_gen; // generations are never rewound
        }
    }
}

impl Bus {
    /// Creates a bus with the given per-transaction occupancies.
    ///
    /// # Panics
    ///
    /// Panics if either occupancy is 0.
    pub fn new(req_bus_cycles: u64, resp_bus_cycles: u64) -> Self {
        Bus {
            request: SlotCalendar::new(req_bus_cycles),
            response: SlotCalendar::new(resp_bus_cycles),
            monitor: TimestampMonitor::new(),
            transactions: 0,
            conflicts: 0,
            violations: 0,
            busy_cycles: 0,
            gen: 0,
        }
    }

    /// Arbitrates the request bus for a transaction stamped `ts`,
    /// returning the grant time and the violation/conflict verdicts.
    pub fn arbitrate(&mut self, ts: Cycle) -> BusGrant {
        self.gen += 1;
        self.transactions += 1;
        let violation = self.monitor.observe(ts);
        if violation {
            self.violations += 1;
        }
        let slot = self.request.reserve(ts.as_u64());
        let conflict = slot != ts.as_u64();
        if conflict {
            self.conflicts += 1;
        }
        self.busy_cycles += self.request.occupancy;
        BusGrant {
            grant: Cycle::new(slot),
            violation,
            high_water: self.monitor.high_water(),
            conflict,
        }
    }

    /// The bus monitor's largest observed request timestamp so far.
    pub fn high_water(&self) -> Cycle {
        self.monitor.high_water()
    }

    /// Schedules a data transfer on the response bus once the data is
    /// ready; returns the cycle the transfer completes at the requester.
    pub fn respond(&mut self, data_ready: Cycle) -> Cycle {
        self.gen += 1;
        let slot = self.response.reserve(data_ready.as_u64());
        Cycle::new(slot + self.response.occupancy)
    }

    /// Transactions arbitrated so far.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Requests that found their slot taken.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Out-of-order grants detected.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Total request-bus busy cycles (utilisation numerator).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Serializes the model state (calendar slots, monitor high-water,
    /// counters). Occupancies are configuration, never stored.
    pub fn save_state(&self, w: &mut ByteWriter) {
        self.request.save_state(w);
        self.response.save_state(w);
        w.u64(self.monitor.high_water().as_u64());
        w.u64(self.transactions);
        w.u64(self.conflicts);
        w.u64(self.violations);
        w.u64(self.busy_cycles);
    }

    /// Restores state written by [`Bus::save_state`]. The generation
    /// counter is reset; the caller re-seeds delta baselines on resume.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if the bytes are malformed.
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        self.request.load_state(r)?;
        self.response.load_state(r)?;
        self.monitor = TimestampMonitor::with_high_water(Cycle::new(r.u64()?));
        self.transactions = r.u64()?;
        self.conflicts = r.u64()?;
        self.violations = r.u64()?;
        self.busy_cycles = r.u64()?;
        self.gen = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Cycle {
        Cycle::new(t)
    }

    #[test]
    fn in_order_requests_never_violate() {
        let mut bus = Bus::new(1, 1);
        for t in [1u64, 2, 5, 5, 9] {
            assert!(!bus.arbitrate(ts(t)).violation);
        }
        assert_eq!(bus.violations(), 0);
        assert_eq!(bus.transactions(), 5);
    }

    #[test]
    fn straggler_is_a_violation_but_can_fill_old_slots() {
        let mut bus = Bus::new(1, 1);
        bus.arbitrate(ts(10));
        let g = bus.arbitrate(ts(4));
        assert!(g.violation);
        assert_eq!(bus.violations(), 1);
        // The straggler takes the free slot at its own timestamp — no
        // head-of-line blocking behind the later grant.
        assert_eq!(g.grant, ts(4));
        assert!(!g.conflict);
    }

    #[test]
    fn back_to_back_conflicts_serialise() {
        let mut bus = Bus::new(1, 1);
        let a = bus.arbitrate(ts(7));
        let b = bus.arbitrate(ts(7));
        let c = bus.arbitrate(ts(7));
        assert_eq!(a.grant, ts(7));
        assert_eq!(b.grant, ts(8));
        assert_eq!(c.grant, ts(9));
        assert_eq!(bus.conflicts(), 2);
    }

    #[test]
    fn idle_gap_clears_conflicts() {
        let mut bus = Bus::new(1, 1);
        bus.arbitrate(ts(1));
        let g = bus.arbitrate(ts(100));
        assert!(!g.conflict);
        assert_eq!(g.grant, ts(100));
    }

    #[test]
    fn wider_occupancy_extends_conflicts() {
        let mut bus = Bus::new(4, 1);
        bus.arbitrate(ts(0));
        let g = bus.arbitrate(ts(2));
        assert!(g.conflict);
        assert_eq!(g.grant, ts(4));
    }

    #[test]
    fn gap_between_reservations_is_usable() {
        let mut bus = Bus::new(1, 1);
        bus.arbitrate(ts(5));
        bus.arbitrate(ts(10));
        // The hole at 6..10 serves a request stamped 7.
        let g = bus.arbitrate(ts(7));
        assert_eq!(g.grant, ts(7));
        assert!(!g.conflict);
    }

    #[test]
    fn response_bus_has_no_head_of_line_blocking() {
        let mut bus = Bus::new(1, 1);
        // A slow memory reply reserves cycle 110.
        let slow = bus.respond(ts(110));
        assert_eq!(slow, ts(111));
        // A fast cache-to-cache reply ready at 30 is not stuck behind it.
        let fast = bus.respond(ts(30));
        assert_eq!(fast, ts(31));
        // But a same-cycle transfer does conflict.
        let third = bus.respond(ts(30));
        assert_eq!(third, ts(32));
    }

    #[test]
    fn response_occupancy_respected() {
        let mut bus = Bus::new(1, 4);
        assert_eq!(bus.respond(ts(0)), ts(4));
        assert_eq!(bus.respond(ts(1)), ts(8));
        assert_eq!(bus.respond(ts(100)), ts(104));
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut bus = Bus::new(1, 1);
        bus.arbitrate(ts(0));
        bus.arbitrate(ts(1));
        assert_eq!(bus.busy_cycles(), 2);
    }

    #[test]
    fn calendar_prunes_but_stays_correct_near_horizon() {
        let mut bus = Bus::new(1, 1);
        for t in 0..5000u64 {
            bus.arbitrate(ts(t * 2));
        }
        // Recent slots remain reserved after pruning.
        let g = bus.arbitrate(ts(9998));
        assert_eq!(g.grant, ts(9999));
    }

    #[test]
    #[should_panic(expected = "bus occupancy must be at least 1")]
    fn zero_occupancy_rejected() {
        let _ = Bus::new(0, 1);
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let mut live = Bus::new(2, 1);
        live.arbitrate(ts(5));
        live.arbitrate(ts(5)); // conflict
        live.arbitrate(ts(2)); // violation
        live.respond(ts(40));

        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = Bus::new(2, 1);
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).expect("load succeeds");
        r.finish().expect("no trailing bytes");
        assert_eq!(restored, live);
        assert_eq!(restored.high_water(), live.high_water());
        // Future arbitration must see identical occupancy/monitor state.
        assert_eq!(restored.arbitrate(ts(6)), live.arbitrate(ts(6)));
        let err = restored.load_state(&mut ByteReader::new(&bytes[..4]));
        assert!(err.is_err(), "truncation errors instead of panicking");
    }

    #[test]
    fn delta_is_empty_when_clean_and_whole_when_dirty() {
        let mut live = Bus::new(1, 1);
        live.arbitrate(ts(5));
        let mut base = live.clone();
        let gen = live.generation();

        assert!(!live.capture_delta(gen).is_dirty(), "clean since capture");

        live.arbitrate(ts(6));
        live.respond(ts(20));
        let delta = live.capture_delta(gen);
        assert!(delta.is_dirty());
        base.apply_delta(delta);
        assert_eq!(base, live);

        let cp = live.clone();
        let cp_gen = live.generation();
        live.arbitrate(ts(30));
        live.restore_from(&cp, cp_gen);
        assert_eq!(live, cp, "restore rewinds to the checkpoint");
        assert!(live.generation() > cp_gen, "generation is not rewound");
    }
}
