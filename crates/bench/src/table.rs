//! Plain-text table rendering for experiment output.

use std::fmt;

/// A titled, column-aligned text table with optional footnotes.
///
/// # Examples
///
/// ```
/// use slacksim_bench::table::Table;
///
/// let mut t = Table::new("Table 1. Benchmarks.");
/// t.headers(["Benchmark", "Input Set"]);
/// t.row(["FFT", "64K points"]);
/// let text = t.to_string();
/// assert!(text.contains("FFT"));
/// assert!(text.contains("64K points"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Table::default()
        }
    }

    /// Sets the column headers.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (headers + rows; title and notes become
    /// `#`-prefixed comment lines), for plotting outside the harness.
    ///
    /// # Examples
    ///
    /// ```
    /// use slacksim_bench::table::Table;
    ///
    /// let mut t = Table::new("demo");
    /// t.headers(["a", "b"]).row(["1", "x,y"]);
    /// let csv = t.to_csv();
    /// assert!(csv.contains("a,b"));
    /// assert!(csv.contains("\"x,y\""));
    /// ```
    pub fn to_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = format!("# {}\n", self.title);
        if !self.headers.is_empty() {
            let cells: Vec<String> = self.headers.iter().map(|h| field(h)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| field(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line_len = w.iter().sum::<usize>() + 3 * w.len().saturating_sub(1);
        writeln!(f, "{}", self.title)?;
        writeln!(
            f,
            "{}",
            "=".repeat(self.title.chars().count().max(line_len))
        )?;
        if !self.headers.is_empty() {
            let cells: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{:>width$}", h, width = w[i]))
                .collect();
            writeln!(f, "{}", cells.join(" | "))?;
            writeln!(f, "{}", "-".repeat(line_len))?;
        }
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        for note in &self.notes {
            writeln!(f, "  * {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T");
        t.headers(["a", "longheader"]);
        t.row(["1", "2"]);
        t.row(["333333", "4"]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        // Header and both rows share the same separator positions.
        let sep_positions: Vec<usize> = lines
            .iter()
            .filter(|l| l.contains('|'))
            .map(|l| l.find('|').unwrap())
            .collect();
        assert_eq!(sep_positions.len(), 3);
        assert!(sep_positions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn notes_are_rendered() {
        let mut t = Table::new("T");
        t.headers(["x"]).row(["1"]).note("hello note");
        assert!(t.to_string().contains("* hello note"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_and_structures() {
        let mut t = Table::new("T");
        t.headers(["col a", "col,b"]).row(["1", "va\"l"]).note("n");
        let csv = t.to_csv();
        assert!(csv.starts_with("# T\n"));
        assert!(csv.contains("col a,\"col,b\""));
        assert!(csv.contains("\"va\"\"l\""));
        assert!(csv.ends_with("# n\n"));
    }

    #[test]
    fn empty_table_renders_title_only() {
        let t = Table::new("Just a title");
        assert!(t.to_string().contains("Just a title"));
        assert!(t.is_empty());
    }
}
