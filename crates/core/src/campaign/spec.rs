//! Sweep-spec parsing and design-space grid expansion.
//!
//! A sweep spec is one JSON document (parsed with the in-tree
//! [`obs::json`](crate::obs::json) parser, matching the no-external-crates
//! policy) describing a {scheme × bound × quantum × uncore × cores ×
//! shards × workload × seed} grid plus the fixed per-job settings every
//! point shares:
//!
//! ```json
//! {
//!   "v": 1,
//!   "commit": 20000,
//!   "engine": "seq",
//!   "checkpoint": 2000,
//!   "checkpoint_mode": "full",
//!   "max_cycles": 10000000,
//!   "workers": 3,
//!   "axes": {
//!     "scheme": ["cc", "bounded"],
//!     "bound": [8, 16],
//!     "quantum": [50],
//!     "cores": [2],
//!     "workload": ["fft", "water"],
//!     "seed": [1, 2]
//!   }
//! }
//! ```
//!
//! Expansion is the full cartesian product of the eight axes in the
//! fixed nesting order scheme → bound → quantum → uncore → cores →
//! shards → workload → seed, so the grid cardinality is exactly the
//! product of the axis lengths and job ordering is stable across parses. Every job
//! carries its axis values in its identity token even when its scheme
//! consumes only some of them (a cycle-by-cycle job ignores `bound`),
//! which keeps job IDs unique by construction; axes whose values an
//! author does not want multiplied out simply stay single-valued.
//!
//! Validation is strict and errors are enumerated: unknown fields,
//! unknown axis names, duplicate axis values (which would mint duplicate
//! job IDs), zero quantities and out-of-range core counts are all
//! refused with a [`SpecError`] naming the accepted values, never
//! silently defaulted — the same contract as the CLI's flag validation.

use std::fmt;

use crate::checkpoint::CheckpointMode;
use crate::obs::json::Json;
use crate::scheme::{AdaptiveConfig, Scheme};

/// Version of the sweep-spec JSON schema (the `v` field).
pub const SPEC_VERSION: u64 = 1;

/// Hard cap on expanded grid size: a runaway product (eight axes multiply
/// fast) is refused at parse time instead of exhausting memory.
pub const MAX_GRID_JOBS: u64 = 100_000;

/// Accepted `scheme` axis values, in canonical order.
pub const SCHEME_TOKENS: &str = "cc|bounded|unbounded|quantum|adaptive|p2p";
/// Accepted `uncore` axis values.
pub const UNCORE_TOKENS: &str = "bus|directory";
/// Accepted `engine` values.
pub const ENGINE_TOKENS: &str = "seq|threaded|batched";
/// Accepted `checkpoint_mode` values.
pub const CHECKPOINT_MODE_TOKENS: &str = "full|delta";

/// Everything that can be wrong with a sweep spec. Every variant's
/// `Display` names the offending value and enumerates what is accepted.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not valid JSON.
    Json(String),
    /// The document is valid JSON but not an object.
    NotAnObject,
    /// A required field is absent.
    MissingField(&'static str),
    /// The `v` field is not [`SPEC_VERSION`].
    BadVersion(f64),
    /// A field that must be a non-negative integer is not one.
    NotAnInteger {
        /// The field or axis name.
        field: &'static str,
        /// The offending JSON fragment, rendered.
        found: String,
    },
    /// A quantity that must be at least 1 was 0.
    ZeroValue(&'static str),
    /// A `cores` axis value outside the range supported by every uncore
    /// on the `uncore` axis.
    CoresOutOfRange {
        /// The offending core count.
        value: u64,
        /// The most restrictive uncore on the axis.
        uncore: &'static str,
        /// That uncore's core ceiling.
        max: u64,
    },
    /// An unknown `scheme` axis value.
    UnknownScheme(String),
    /// An unknown `uncore` axis value.
    UnknownUncore(String),
    /// An unknown `engine` value.
    UnknownEngine(String),
    /// An unknown `checkpoint_mode` value.
    UnknownCheckpointMode(String),
    /// A top-level or axis field this schema version does not define —
    /// refused so a typo cannot silently drop an axis.
    UnknownField(String),
    /// An axis that must be a JSON array is not one.
    NotAnArray(&'static str),
    /// An axis array with no values.
    EmptyAxis(&'static str),
    /// The same value appears twice in one axis, which would mint two
    /// jobs with identical IDs.
    DuplicateAxisValue {
        /// The axis name.
        axis: &'static str,
        /// The repeated value, rendered.
        value: String,
    },
    /// A workload axis entry that is not a non-empty string.
    BadWorkload(String),
    /// `engine` is `batched` but the scheme axis holds a non-quantum
    /// scheme the batched engine cannot execute.
    BatchedNeedsQuantum(String),
    /// A `shards` axis value above 1 with a non-threaded engine (the
    /// manager tree only exists in the threaded engine).
    ShardsNeedThreaded(u64),
    /// The expanded grid would exceed [`MAX_GRID_JOBS`].
    GridTooLarge(u64),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "sweep spec is not valid JSON: {e}"),
            SpecError::NotAnObject => write!(f, "sweep spec must be a JSON object"),
            SpecError::MissingField(name) => {
                write!(f, "sweep spec is missing required field '{name}'")
            }
            SpecError::BadVersion(v) => write!(
                f,
                "unsupported sweep-spec version {v} (this build reads v={SPEC_VERSION})"
            ),
            SpecError::NotAnInteger { field, found } => {
                write!(f, "'{field}' must be a non-negative integer (got {found})")
            }
            SpecError::ZeroValue(name) => {
                write!(f, "'{name}' must be at least 1 (got 0)")
            }
            SpecError::CoresOutOfRange { value, uncore, max } => {
                write!(
                    f,
                    "'cores' axis value {value} out of range for the {uncore} uncore \
                     (expected 1..={max})"
                )
            }
            SpecError::UnknownScheme(s) => {
                write!(f, "unknown scheme '{s}' in axis (expected {SCHEME_TOKENS})")
            }
            SpecError::UnknownUncore(s) => {
                write!(f, "unknown uncore '{s}' in axis (expected {UNCORE_TOKENS})")
            }
            SpecError::UnknownEngine(s) => {
                write!(f, "unknown engine '{s}' (expected {ENGINE_TOKENS})")
            }
            SpecError::UnknownCheckpointMode(s) => write!(
                f,
                "unknown checkpoint mode '{s}' (expected {CHECKPOINT_MODE_TOKENS})"
            ),
            SpecError::UnknownField(s) => {
                write!(f, "unknown sweep-spec field '{s}'")
            }
            SpecError::NotAnArray(name) => {
                write!(f, "axis '{name}' must be a JSON array")
            }
            SpecError::EmptyAxis(name) => {
                write!(f, "axis '{name}' must hold at least one value")
            }
            SpecError::DuplicateAxisValue { axis, value } => write!(
                f,
                "axis '{axis}' repeats value {value}, which would duplicate job IDs"
            ),
            SpecError::BadWorkload(s) => {
                write!(
                    f,
                    "workload axis entries must be non-empty strings (got {s})"
                )
            }
            SpecError::BatchedNeedsQuantum(s) => write!(
                f,
                "engine 'batched' requires a quantum-only scheme axis (got '{s}'): the \
                 quantum-compiled loop only resolves cross-core events at quantum boundaries"
            ),
            SpecError::ShardsNeedThreaded(n) => write!(
                f,
                "'shards' axis value {n} requires engine 'threaded' (the manager tree \
                 only exists in the threaded engine)"
            ),
            SpecError::GridTooLarge(n) => write!(
                f,
                "expanded grid holds {n} jobs, over the {MAX_GRID_JOBS} cap"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Which execution engine runs every job of the sweep.
///
/// Mirrors the facade's engine selection by name; the campaign layer is
/// target-agnostic and treats the token as opaque beyond validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineToken {
    /// Deterministic single-threaded engine.
    #[default]
    Seq,
    /// One host thread per target core plus a manager.
    Threaded,
    /// Quantum-compiled batched engine (quantum schemes only).
    Batched,
}

impl EngineToken {
    /// Parses an engine token (the CLI's `--engine` vocabulary).
    pub fn parse(name: &str) -> Option<EngineToken> {
        match name {
            "seq" | "sequential" => Some(EngineToken::Seq),
            "threaded" | "thr" => Some(EngineToken::Threaded),
            "batched" | "bsp" => Some(EngineToken::Batched),
            _ => None,
        }
    }

    /// The canonical token name.
    pub fn name(self) -> &'static str {
        match self {
            EngineToken::Seq => "seq",
            EngineToken::Threaded => "threaded",
            EngineToken::Batched => "batched",
        }
    }
}

/// One point on the uncore axis: which interconnect every core of a job
/// shares. Mirrors the target's uncore selection by name (like
/// [`EngineToken`] mirrors engine selection); the campaign layer only
/// needs the token and its core ceiling for validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UncoreToken {
    /// The snooping bus: one shared resource, at most 16 cores.
    #[default]
    Bus,
    /// Sharded directory-MESI: up to 1024 cores.
    Directory,
}

impl UncoreToken {
    /// Parses an uncore axis token.
    pub fn parse(name: &str) -> Option<UncoreToken> {
        match name {
            "bus" => Some(UncoreToken::Bus),
            "directory" => Some(UncoreToken::Directory),
            _ => None,
        }
    }

    /// The canonical token name.
    pub fn name(self) -> &'static str {
        match self {
            UncoreToken::Bus => "bus",
            UncoreToken::Directory => "directory",
        }
    }

    /// Largest core count this uncore supports (must agree with the
    /// target's `UncoreKind::max_cores`).
    pub fn max_cores(self) -> u64 {
        match self {
            UncoreToken::Bus => 16,
            UncoreToken::Directory => 1024,
        }
    }
}

/// One point on the scheme axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Barrier every cycle.
    Cc,
    /// Bounded slack (consumes the `bound` axis).
    Bounded,
    /// No synchronisation.
    Unbounded,
    /// Barrier every quantum (consumes the `quantum` axis).
    Quantum,
    /// Feedback-controlled adaptive slack (paper defaults: 0.2% target,
    /// 5% band).
    Adaptive,
    /// Lax peer-to-peer sync (consumes the `bound` axis as the lead; the
    /// re-pick period is fixed at 500 cycles).
    P2p,
}

impl SchemeKind {
    /// Parses a scheme axis token.
    pub fn parse(name: &str) -> Option<SchemeKind> {
        match name {
            "cc" | "cycle" => Some(SchemeKind::Cc),
            "bounded" => Some(SchemeKind::Bounded),
            "unbounded" | "su" => Some(SchemeKind::Unbounded),
            "quantum" => Some(SchemeKind::Quantum),
            "adaptive" => Some(SchemeKind::Adaptive),
            "p2p" => Some(SchemeKind::P2p),
            _ => None,
        }
    }

    /// The canonical token name.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Cc => "cc",
            SchemeKind::Bounded => "bounded",
            SchemeKind::Unbounded => "unbounded",
            SchemeKind::Quantum => "quantum",
            SchemeKind::Adaptive => "adaptive",
            SchemeKind::P2p => "p2p",
        }
    }
}

/// Per-job durable-checkpoint settings shared by every grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint interval in global cycles.
    pub interval: u64,
    /// Capture mode.
    pub mode: CheckpointMode,
}

/// The eight sweep axes. Missing axes default to one neutral value so a
/// spec only spells out what it varies.
#[derive(Debug, Clone, PartialEq)]
pub struct Axes {
    /// Synchronisation schemes (required, at least one).
    pub schemes: Vec<SchemeKind>,
    /// Slack bounds / p2p leads (default `[8]`).
    pub bounds: Vec<u64>,
    /// Quantum lengths (default `[50]`).
    pub quantums: Vec<u64>,
    /// Uncore interconnects (default `[bus]`). Every `cores` value must
    /// fit the most restrictive uncore on this axis, so every expanded
    /// (uncore, cores) pair is runnable.
    pub uncores: Vec<UncoreToken>,
    /// Target core counts (default `[8]`).
    pub cores: Vec<u64>,
    /// Threaded-engine manager-tree widths (default `[1]`, the classic
    /// single manager). A host-throughput axis: every value produces
    /// identical simulated results, so sweeping it measures wall-clock
    /// scaling only. Values above 1 require the threaded engine.
    pub shards: Vec<u64>,
    /// Workload names (required, at least one; validated against the
    /// target's benchmark set by the embedder).
    pub workloads: Vec<String>,
    /// Run seeds (default `[1]`).
    pub seeds: Vec<u64>,
}

/// A parsed, validated sweep specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Committed-instruction target per job.
    pub commit: u64,
    /// Engine every job runs under.
    pub engine: EngineToken,
    /// Durable per-job checkpointing (enables crash-safe job resume).
    pub checkpoint: Option<CheckpointSpec>,
    /// Per-job simulated-cycle cap (resource cap; jobs hitting it stall
    /// out and are reported as failed rather than running forever).
    pub max_cycles: Option<u64>,
    /// Suggested worker-pool width (the runner may override).
    pub workers: Option<u64>,
    /// The sweep axes.
    pub axes: Axes,
}

/// One expanded grid point: everything needed to run one job.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Dense grid index in expansion order (stable across parses).
    pub index: u64,
    /// The scheme-axis point.
    pub kind: SchemeKind,
    /// The fully parameterised scheme this job runs under.
    pub scheme: Scheme,
    /// The bound-axis value (carried even by schemes that ignore it, so
    /// job IDs stay unique over the full product).
    pub bound: u64,
    /// The quantum-axis value (ditto).
    pub quantum: u64,
    /// The uncore-axis point.
    pub uncore: UncoreToken,
    /// Target core count.
    pub cores: u64,
    /// Threaded manager-tree width (1 = classic single manager).
    pub shards: u64,
    /// Workload name.
    pub workload: String,
    /// Run seed.
    pub seed: u64,
}

impl Job {
    /// The job's deterministic identity token: every axis value, in a
    /// filesystem-safe shape. Unique within a grid by construction
    /// (duplicate axis values are refused at parse time). Bus jobs keep
    /// the historical six-part shape so existing campaign directories
    /// still resume; only directory jobs carry the `-dir` suffix.
    pub fn token(&self) -> String {
        let mut token = format!(
            "{}-{}-b{}-q{}-c{}-s{}",
            self.workload.to_ascii_lowercase(),
            self.kind.name(),
            self.bound,
            self.quantum,
            self.cores,
            self.seed,
        );
        if self.uncore == UncoreToken::Directory {
            token.push_str("-dir");
        }
        // Like `-dir`, the shard suffix appears only off the default so
        // historical single-manager campaign directories still resume.
        if self.shards != 1 {
            token.push_str(&format!("-sh{}", self.shards));
        }
        token
    }
}

impl SweepSpec {
    /// Parses and validates a sweep spec document.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found; messages enumerate the
    /// accepted values.
    pub fn parse(src: &str) -> Result<SweepSpec, SpecError> {
        let doc = Json::parse(src).map_err(SpecError::Json)?;
        let obj = doc.as_object().ok_or(SpecError::NotAnObject)?;
        for key in obj.keys() {
            match key.as_str() {
                "v" | "commit" | "engine" | "checkpoint" | "checkpoint_mode" | "max_cycles"
                | "workers" | "axes" => {}
                other => return Err(SpecError::UnknownField(other.to_string())),
            }
        }

        let v = doc
            .get("v")
            .ok_or(SpecError::MissingField("v"))?
            .as_f64()
            .ok_or(SpecError::MissingField("v"))?;
        if v != SPEC_VERSION as f64 {
            return Err(SpecError::BadVersion(v));
        }

        let commit = required_u64(&doc, "commit")?;
        if commit == 0 {
            return Err(SpecError::ZeroValue("commit"));
        }

        let engine = match doc.get("engine") {
            None => EngineToken::Seq,
            Some(j) => {
                let name = j.as_str().ok_or(SpecError::UnknownEngine(render(j)))?;
                EngineToken::parse(name)
                    .ok_or_else(|| SpecError::UnknownEngine(name.to_string()))?
            }
        };

        let checkpoint = match doc.get("checkpoint") {
            None => {
                if doc.get("checkpoint_mode").is_some() {
                    return Err(SpecError::MissingField("checkpoint"));
                }
                None
            }
            Some(j) => {
                let interval = json_u64(j, "checkpoint")?;
                if interval == 0 {
                    return Err(SpecError::ZeroValue("checkpoint"));
                }
                let mode = match doc.get("checkpoint_mode") {
                    None => CheckpointMode::Full,
                    Some(m) => {
                        let name = m
                            .as_str()
                            .ok_or(SpecError::UnknownCheckpointMode(render(m)))?;
                        CheckpointMode::parse(name)
                            .ok_or_else(|| SpecError::UnknownCheckpointMode(name.to_string()))?
                    }
                };
                Some(CheckpointSpec { interval, mode })
            }
        };

        let max_cycles = match doc.get("max_cycles") {
            None => None,
            Some(j) => {
                let v = json_u64(j, "max_cycles")?;
                if v == 0 {
                    return Err(SpecError::ZeroValue("max_cycles"));
                }
                Some(v)
            }
        };

        let workers = match doc.get("workers") {
            None => None,
            Some(j) => {
                let v = json_u64(j, "workers")?;
                if v == 0 {
                    return Err(SpecError::ZeroValue("workers"));
                }
                Some(v)
            }
        };

        let axes_doc = doc.get("axes").ok_or(SpecError::MissingField("axes"))?;
        let axes_obj = axes_doc
            .as_object()
            .ok_or(SpecError::MissingField("axes"))?;
        for key in axes_obj.keys() {
            match key.as_str() {
                "scheme" | "bound" | "quantum" | "uncore" | "cores" | "shards" | "workload"
                | "seed" => {}
                other => {
                    return Err(SpecError::UnknownField(format!("axes.{other}")));
                }
            }
        }

        let schemes = {
            let arr =
                axis_array(axes_doc, "scheme")?.ok_or(SpecError::MissingField("axes.scheme"))?;
            let mut out = Vec::with_capacity(arr.len());
            for j in arr {
                let name = j
                    .as_str()
                    .ok_or_else(|| SpecError::UnknownScheme(render(j)))?;
                let kind = SchemeKind::parse(name)
                    .ok_or_else(|| SpecError::UnknownScheme(name.to_string()))?;
                if out.contains(&kind) {
                    return Err(SpecError::DuplicateAxisValue {
                        axis: "scheme",
                        value: format!("'{}'", kind.name()),
                    });
                }
                if engine == EngineToken::Batched && kind != SchemeKind::Quantum {
                    return Err(SpecError::BatchedNeedsQuantum(kind.name().to_string()));
                }
                out.push(kind);
            }
            out
        };

        let bounds = numeric_axis(axes_doc, "bound", 8, |v| {
            if v == 0 {
                Err(SpecError::ZeroValue("bound"))
            } else {
                Ok(())
            }
        })?;
        let quantums = numeric_axis(axes_doc, "quantum", 50, |v| {
            if v == 0 {
                Err(SpecError::ZeroValue("quantum"))
            } else {
                Ok(())
            }
        })?;
        let uncores = match axis_array(axes_doc, "uncore")? {
            None => vec![UncoreToken::Bus],
            Some(arr) => {
                if arr.is_empty() {
                    return Err(SpecError::EmptyAxis("uncore"));
                }
                let mut out = Vec::with_capacity(arr.len());
                for j in arr {
                    let name = j
                        .as_str()
                        .ok_or_else(|| SpecError::UnknownUncore(render(j)))?;
                    let tok = UncoreToken::parse(name)
                        .ok_or_else(|| SpecError::UnknownUncore(name.to_string()))?;
                    if out.contains(&tok) {
                        return Err(SpecError::DuplicateAxisValue {
                            axis: "uncore",
                            value: format!("'{}'", tok.name()),
                        });
                    }
                    out.push(tok);
                }
                out
            }
        };

        // Every cores value must fit the most restrictive uncore on the
        // axis: the grid is a full product, so a 64-core point paired
        // with the 16-core bus would mint an unrunnable job.
        let strictest = *uncores
            .iter()
            .min_by_key(|u| u.max_cores())
            .expect("uncore axis is non-empty");
        let cores = numeric_axis(axes_doc, "cores", 8, |v| {
            if !(1..=strictest.max_cores()).contains(&v) {
                Err(SpecError::CoresOutOfRange {
                    value: v,
                    uncore: strictest.name(),
                    max: strictest.max_cores(),
                })
            } else {
                Ok(())
            }
        })?;
        let shards = numeric_axis(axes_doc, "shards", 1, |v| {
            if v == 0 {
                Err(SpecError::ZeroValue("shards"))
            } else if v > 1 && engine != EngineToken::Threaded {
                Err(SpecError::ShardsNeedThreaded(v))
            } else {
                Ok(())
            }
        })?;
        let seeds = numeric_axis(axes_doc, "seed", 1, |_| Ok(()))?;

        let workloads = {
            let arr = axis_array(axes_doc, "workload")?
                .ok_or(SpecError::MissingField("axes.workload"))?;
            let mut out: Vec<String> = Vec::with_capacity(arr.len());
            for j in arr {
                let name = j
                    .as_str()
                    .ok_or_else(|| SpecError::BadWorkload(render(j)))?;
                if name.is_empty() {
                    return Err(SpecError::BadWorkload("\"\"".to_string()));
                }
                let canon = name.to_ascii_lowercase();
                if out.contains(&canon) {
                    return Err(SpecError::DuplicateAxisValue {
                        axis: "workload",
                        value: format!("'{canon}'"),
                    });
                }
                out.push(canon);
            }
            out
        };

        let spec = SweepSpec {
            commit,
            engine,
            checkpoint,
            max_cycles,
            workers,
            axes: Axes {
                schemes,
                bounds,
                quantums,
                uncores,
                cores,
                shards,
                workloads,
                seeds,
            },
        };
        let total = spec.cardinality();
        if total > MAX_GRID_JOBS {
            return Err(SpecError::GridTooLarge(total));
        }
        Ok(spec)
    }

    /// The expanded grid size: the product of the eight axis lengths.
    pub fn cardinality(&self) -> u64 {
        let a = &self.axes;
        (a.schemes.len() as u64)
            .saturating_mul(a.bounds.len() as u64)
            .saturating_mul(a.quantums.len() as u64)
            .saturating_mul(a.uncores.len() as u64)
            .saturating_mul(a.cores.len() as u64)
            .saturating_mul(a.shards.len() as u64)
            .saturating_mul(a.workloads.len() as u64)
            .saturating_mul(a.seeds.len() as u64)
    }

    /// Expands the grid in the fixed nesting order scheme → bound →
    /// quantum → uncore → cores → shards → workload → seed. Stable
    /// across parses of the same document; specs without an `uncore` or
    /// `shards` axis expand exactly as before (one implicit bus /
    /// single-manager value).
    pub fn expand(&self) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.cardinality() as usize);
        let a = &self.axes;
        for &kind in &a.schemes {
            for &bound in &a.bounds {
                for &quantum in &a.quantums {
                    for &uncore in &a.uncores {
                        for &cores in &a.cores {
                            for &shards in &a.shards {
                                for workload in &a.workloads {
                                    for &seed in &a.seeds {
                                        let scheme = build_scheme(kind, bound, quantum, seed);
                                        jobs.push(Job {
                                            index: jobs.len() as u64,
                                            kind,
                                            scheme,
                                            bound,
                                            quantum,
                                            uncore,
                                            cores,
                                            shards,
                                            workload: workload.clone(),
                                            seed,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        jobs
    }

    /// A canonical one-line rendering of everything that affects
    /// simulation results: the campaign fingerprint recorded in the
    /// manifest, compared on resume so a changed spec is refused instead
    /// of silently producing a mixed-grid aggregate. Worker-pool width is
    /// deliberately excluded — resuming on a different host shape is
    /// legal and changes nothing about any job's result.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let a = &self.axes;
        let mut out = format!(
            "v{SPEC_VERSION};commit={};engine={}",
            self.commit,
            self.engine.name()
        );
        match self.checkpoint {
            None => out.push_str(";checkpoint=off"),
            Some(cp) => {
                let mode = match cp.mode {
                    CheckpointMode::Full => "full",
                    CheckpointMode::Delta => "delta",
                };
                let _ = write!(out, ";checkpoint={mode}@{}", cp.interval);
            }
        }
        match self.max_cycles {
            None => out.push_str(";max_cycles=off"),
            Some(mc) => {
                let _ = write!(out, ";max_cycles={mc}");
            }
        }
        let _ = write!(out, ";scheme=");
        join(&mut out, a.schemes.iter().map(|s| s.name().to_string()));
        let _ = write!(out, ";bound=");
        join(&mut out, a.bounds.iter().map(u64::to_string));
        let _ = write!(out, ";quantum=");
        join(&mut out, a.quantums.iter().map(u64::to_string));
        let _ = write!(out, ";uncore=");
        join(&mut out, a.uncores.iter().map(|u| u.name().to_string()));
        let _ = write!(out, ";cores=");
        join(&mut out, a.cores.iter().map(u64::to_string));
        // The shards segment appears only off the default, so manifests
        // from campaigns recorded before the axis existed still match
        // their (implicitly single-manager) specs on resume.
        if a.shards != [1] {
            let _ = write!(out, ";shards=");
            join(&mut out, a.shards.iter().map(u64::to_string));
        }
        let _ = write!(out, ";workload=");
        join(&mut out, a.workloads.iter().cloned());
        let _ = write!(out, ";seed=");
        join(&mut out, a.seeds.iter().map(u64::to_string));
        out
    }
}

/// Builds the fully parameterised scheme for one grid point.
fn build_scheme(kind: SchemeKind, bound: u64, quantum: u64, seed: u64) -> Scheme {
    match kind {
        SchemeKind::Cc => Scheme::CycleByCycle,
        SchemeKind::Bounded => Scheme::BoundedSlack { bound },
        SchemeKind::Unbounded => Scheme::UnboundedSlack,
        SchemeKind::Quantum => Scheme::Quantum { quantum },
        SchemeKind::Adaptive => Scheme::Adaptive(AdaptiveConfig::percent(0.2, 5.0)),
        SchemeKind::P2p => Scheme::LaxP2p {
            lead: bound,
            period: 500,
            seed,
        },
    }
}

fn join(out: &mut String, items: impl Iterator<Item = String>) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
}

/// Renders an arbitrary JSON fragment for error messages.
fn render(j: &Json) -> String {
    match j {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => n.to_string(),
        Json::Str(s) => format!("\"{s}\""),
        Json::Arr(_) => "an array".to_string(),
        Json::Obj(_) => "an object".to_string(),
    }
}

/// Reads a required non-negative integer field.
fn required_u64(doc: &Json, field: &'static str) -> Result<u64, SpecError> {
    json_u64(doc.get(field).ok_or(SpecError::MissingField(field))?, field)
}

/// Converts one JSON value to a non-negative integer.
fn json_u64(j: &Json, field: &'static str) -> Result<u64, SpecError> {
    let v = j.as_f64().ok_or(SpecError::NotAnInteger {
        field,
        found: render(j),
    })?;
    if !v.is_finite() || v < 0.0 || v.fract() != 0.0 || v > (1u64 << 53) as f64 {
        return Err(SpecError::NotAnInteger {
            field,
            found: render(j),
        });
    }
    Ok(v as u64)
}

/// Fetches one axis as an array, `Ok(None)` when absent.
fn axis_array<'a>(axes: &'a Json, name: &'static str) -> Result<Option<&'a [Json]>, SpecError> {
    match axes.get(name) {
        None => Ok(None),
        Some(j) => j.as_array().map(Some).ok_or(SpecError::NotAnArray(name)),
    }
}

/// Parses one numeric axis, defaulting to `[default]` when absent, and
/// rejecting duplicates and per-value range violations.
fn numeric_axis(
    axes: &Json,
    name: &'static str,
    default: u64,
    check: impl Fn(u64) -> Result<(), SpecError>,
) -> Result<Vec<u64>, SpecError> {
    let Some(arr) = axis_array(axes, name)? else {
        return Ok(vec![default]);
    };
    if arr.is_empty() {
        return Err(SpecError::EmptyAxis(name));
    }
    let mut out = Vec::with_capacity(arr.len());
    for j in arr {
        let v = json_u64(j, name)?;
        check(v)?;
        if out.contains(&v) {
            return Err(SpecError::DuplicateAxisValue {
                axis: name,
                value: v.to_string(),
            });
        }
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "v": 1,
        "commit": 5000,
        "engine": "seq",
        "axes": {
            "scheme": ["cc", "bounded"],
            "bound": [8, 16],
            "cores": [2],
            "workload": ["fft", "water"],
            "seed": [1, 2]
        }
    }"#;

    #[test]
    fn parse_expands_to_the_axis_product() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        // 2 schemes x 2 bounds x 1 quantum x 1 cores x 2 workloads x 2 seeds
        assert_eq!(spec.cardinality(), 16);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 16);
        assert_eq!(jobs[0].index, 0);
        assert_eq!(jobs[0].kind, SchemeKind::Cc);
        assert_eq!(jobs[0].workload, "fft");
        assert_eq!(jobs.last().unwrap().index, 15);
        assert_eq!(jobs.last().unwrap().kind, SchemeKind::Bounded);
        assert_eq!(jobs.last().unwrap().bound, 16);
    }

    #[test]
    fn job_tokens_are_unique_and_stable() {
        let a = SweepSpec::parse(SPEC).unwrap().expand();
        let b = SweepSpec::parse(SPEC).unwrap().expand();
        assert_eq!(a, b, "expansion is stable across parses");
        let mut tokens: Vec<String> = a.iter().map(Job::token).collect();
        tokens.sort();
        tokens.dedup();
        assert_eq!(tokens.len(), a.len(), "job IDs are unique");
    }

    #[test]
    fn schemes_consume_their_axes() {
        let spec = SweepSpec::parse(
            r#"{"v":1,"commit":10,"axes":{
                "scheme":["bounded","quantum","p2p"],
                "bound":[32],"quantum":[77],
                "workload":["lu"],"seed":[9]}}"#,
        )
        .unwrap();
        let jobs = spec.expand();
        assert_eq!(jobs[0].scheme, Scheme::BoundedSlack { bound: 32 });
        assert_eq!(jobs[1].scheme, Scheme::Quantum { quantum: 77 });
        assert_eq!(
            jobs[2].scheme,
            Scheme::LaxP2p {
                lead: 32,
                period: 500,
                seed: 9
            }
        );
    }

    #[test]
    fn canonical_excludes_workers() {
        let with = SweepSpec::parse(
            r#"{"v":1,"commit":10,"workers":7,
                "axes":{"scheme":["cc"],"workload":["fft"]}}"#,
        )
        .unwrap();
        let without = SweepSpec::parse(
            r#"{"v":1,"commit":10,
                "axes":{"scheme":["cc"],"workload":["fft"]}}"#,
        )
        .unwrap();
        assert_eq!(with.canonical(), without.canonical());
    }

    #[test]
    fn rejections_are_enumerated() {
        let cases: &[(&str, &str)] = &[
            ("{", "not valid JSON"),
            ("[1]", "must be a JSON object"),
            (
                r#"{"v":2,"commit":1,"axes":{"scheme":["cc"],"workload":["fft"]}}"#,
                "version 2",
            ),
            (
                r#"{"commit":1,"axes":{"scheme":["cc"],"workload":["fft"]}}"#,
                "missing required field 'v'",
            ),
            (
                r#"{"v":1,"axes":{"scheme":["cc"],"workload":["fft"]}}"#,
                "'commit'",
            ),
            (
                r#"{"v":1,"commit":0,"axes":{"scheme":["cc"],"workload":["fft"]}}"#,
                "'commit' must be at least 1",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"scheme":["warp"],"workload":["fft"]}}"#,
                "cc|bounded|unbounded|quantum|adaptive|p2p",
            ),
            (
                r#"{"v":1,"commit":1,"engine":"turbo","axes":{"scheme":["cc"],"workload":["fft"]}}"#,
                "seq|threaded|batched",
            ),
            (
                r#"{"v":1,"commit":1,"checkpoint":100,"checkpoint_mode":"sparse","axes":{"scheme":["cc"],"workload":["fft"]}}"#,
                "full|delta",
            ),
            (
                r#"{"v":1,"commit":1,"checkpoint_mode":"full","axes":{"scheme":["cc"],"workload":["fft"]}}"#,
                "'checkpoint'",
            ),
            (
                r#"{"v":1,"commit":1,"frobnicate":3,"axes":{"scheme":["cc"],"workload":["fft"]}}"#,
                "unknown sweep-spec field 'frobnicate'",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"scheme":["cc"],"workload":["fft"],"warp":[1]}}"#,
                "axes.warp",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"scheme":["cc"],"workload":["fft"],"bound":[]}}"#,
                "at least one value",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"scheme":["cc"],"workload":["fft"],"bound":[8,8]}}"#,
                "repeats value 8",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"scheme":["cc","cc"],"workload":["fft"]}}"#,
                "repeats value 'cc'",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"scheme":["cc"],"workload":["fft"],"bound":[0]}}"#,
                "'bound' must be at least 1",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"scheme":["cc"],"workload":["fft"],"cores":[17]}}"#,
                "out of range",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"scheme":["cc"],"workload":["fft"],"seed":[1.5]}}"#,
                "'seed' must be a non-negative integer",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"scheme":["cc"]}}"#,
                "axes.workload",
            ),
            (
                r#"{"v":1,"commit":1,"axes":{"workload":["fft"]}}"#,
                "axes.scheme",
            ),
            (
                r#"{"v":1,"commit":1,"engine":"batched","axes":{"scheme":["cc"],"workload":["fft"]}}"#,
                "requires a quantum-only scheme axis",
            ),
        ];
        for (src, expect) in cases {
            let err = SweepSpec::parse(src).expect_err(src);
            let msg = err.to_string();
            assert!(
                msg.contains(expect),
                "for {src}: expected {expect:?} in {msg:?}"
            );
        }
    }

    #[test]
    fn uncore_axis_lifts_the_core_cap() {
        let spec = SweepSpec::parse(
            r#"{"v":1,"commit":10,"axes":{
                "scheme":["cc"],"uncore":["directory"],"cores":[16,64],
                "workload":["fft"]}}"#,
        )
        .unwrap();
        assert_eq!(spec.axes.uncores, vec![UncoreToken::Directory]);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].cores, 64);
        assert_eq!(jobs[1].uncore, UncoreToken::Directory);
        assert!(
            jobs[1].token().ends_with("-dir"),
            "directory jobs are suffixed: {}",
            jobs[1].token()
        );
    }

    #[test]
    fn shards_axis_expands_suffixes_and_fingerprints() {
        let spec = SweepSpec::parse(
            r#"{"v":1,"commit":10,"engine":"threaded","axes":{
                "scheme":["cc"],"shards":[1,4],"workload":["fft"]}}"#,
        )
        .unwrap();
        assert_eq!(spec.axes.shards, vec![1, 4]);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].shards, 1);
        assert_eq!(
            jobs[0].token(),
            "fft-cc-b8-q50-c8-s1",
            "the default shard width keeps the historical token shape"
        );
        assert_eq!(jobs[1].shards, 4);
        assert!(
            jobs[1].token().ends_with("-sh4"),
            "sharded jobs are suffixed: {}",
            jobs[1].token()
        );
        assert!(spec.canonical().contains(";shards=1,4;"));
    }

    #[test]
    fn default_shards_axis_leaves_the_canonical_untouched() {
        let spec =
            SweepSpec::parse(r#"{"v":1,"commit":10,"axes":{"scheme":["cc"],"workload":["fft"]}}"#)
                .unwrap();
        assert_eq!(spec.axes.shards, vec![1]);
        assert!(
            !spec.canonical().contains("shards"),
            "pre-axis manifests must still match: {}",
            spec.canonical()
        );
    }

    #[test]
    fn shards_above_one_require_the_threaded_engine() {
        let err = SweepSpec::parse(
            r#"{"v":1,"commit":10,"axes":{
                "scheme":["cc"],"shards":[2],"workload":["fft"]}}"#,
        )
        .unwrap_err();
        assert_eq!(err, SpecError::ShardsNeedThreaded(2));
        assert!(err.to_string().contains("threaded"), "{err}");
        let err = SweepSpec::parse(
            r#"{"v":1,"commit":10,"axes":{
                "scheme":["cc"],"shards":[0],"workload":["fft"]}}"#,
        )
        .unwrap_err();
        assert_eq!(err, SpecError::ZeroValue("shards"));
    }

    #[test]
    fn bus_tokens_keep_their_historical_shape() {
        let jobs = SweepSpec::parse(SPEC).unwrap().expand();
        assert_eq!(jobs[0].token(), "fft-cc-b8-q50-c2-s1");
    }

    #[test]
    fn cores_must_fit_the_strictest_uncore() {
        // A mixed axis pairs every cores value with the bus too, so the
        // bus ceiling governs.
        let err = SweepSpec::parse(
            r#"{"v":1,"commit":10,"axes":{
                "scheme":["cc"],"uncore":["bus","directory"],"cores":[64],
                "workload":["fft"]}}"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SpecError::CoresOutOfRange {
                value: 64,
                uncore: "bus",
                max: 16
            }
        );
        assert!(err.to_string().contains("for the bus uncore"));
    }

    #[test]
    fn uncore_rejections_are_enumerated() {
        let err = SweepSpec::parse(
            r#"{"v":1,"commit":10,"axes":{
                "scheme":["cc"],"uncore":["ring"],"workload":["fft"]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("bus|directory"), "{err}");
        let err = SweepSpec::parse(
            r#"{"v":1,"commit":10,"axes":{
                "scheme":["cc"],"uncore":["bus","bus"],"workload":["fft"]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("repeats value 'bus'"), "{err}");
    }

    #[test]
    fn canonical_covers_the_uncore_axis() {
        let bus =
            SweepSpec::parse(r#"{"v":1,"commit":10,"axes":{"scheme":["cc"],"workload":["fft"]}}"#)
                .unwrap();
        let dir = SweepSpec::parse(
            r#"{"v":1,"commit":10,"axes":{"scheme":["cc"],"uncore":["directory"],"workload":["fft"]}}"#,
        )
        .unwrap();
        assert!(bus.canonical().contains(";uncore=bus;"));
        assert_ne!(bus.canonical(), dir.canonical());
    }

    #[test]
    fn grid_too_large_is_refused() {
        // 6 schemes x 100 bounds x 100 quantums x 16 cores... fake it
        // with seeds: 6 * 20000 seeds * 1 * 1 > cap? Use bounds x seeds.
        let bounds: Vec<String> = (1..=400).map(|v| v.to_string()).collect();
        let seeds: Vec<String> = (0..400).map(|v| v.to_string()).collect();
        let src = format!(
            r#"{{"v":1,"commit":1,"axes":{{"scheme":["cc"],"workload":["fft"],
               "bound":[{}],"seed":[{}]}}}}"#,
            bounds.join(","),
            seeds.join(","),
        );
        let err = SweepSpec::parse(&src).unwrap_err();
        assert!(matches!(err, SpecError::GridTooLarge(160_000)));
    }
}
