//! The global cache-status map maintained by the simulation manager.
//!
//! The manager tracks, per line, which cores hold copies and which (if
//! any) owns the line in M/E — a duplicate-tag view of all L1s that the
//! snooping protocol consults to source data and direct invalidations.
//! Every transition carries the requesting event's timestamp through a
//! per-entry monitoring variable: a transition stamped earlier than one
//! already applied to the same entry is a **map violation** (a simulated
//! system state violation, paper §3).
//!
//! Because E lines may silently become M inside an L1, the map treats the
//! M/E owner conservatively as a potential data supplier.

use slacksim_core::checkpoint::Checkpointable;
use slacksim_core::event::CoreId;
use slacksim_core::fxhash::FxHashMap;
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};
use slacksim_core::time::Cycle;
use slacksim_core::violation::KeyedMonitor;

use crate::cache::LineAddr;
use crate::mesi::{BusOp, MesiState};

/// Global residence state of one line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct MapEntry {
    /// Bitmask of cores holding the line (any state).
    sharers: u16,
    /// Core holding the line in M or E, if any.
    owner: Option<CoreId>,
}

impl MapEntry {
    fn has(&self, core: CoreId) -> bool {
        self.sharers & (1 << core.index()) != 0
    }

    fn add(&mut self, core: CoreId) {
        self.sharers |= 1 << core.index();
    }

    fn remove(&mut self, core: CoreId) {
        self.sharers &= !(1 << core.index());
        if self.owner == Some(core) {
            self.owner = None;
        }
    }

    fn others(&self, core: CoreId) -> u16 {
        self.sharers & !(1 << core.index())
    }
}

/// Outcome of one map transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOutcome {
    /// The transition arrived out of timestamp order for this entry.
    pub violation: bool,
    /// The entry monitor's largest previously observed timestamp at the
    /// time of this transition (feeds violation-distance observability).
    pub high_water: Cycle,
    /// Remote core that supplies the data from its M/E copy, if any.
    pub data_from_owner: Option<CoreId>,
    /// State granted to the requester's L1.
    pub grant: MesiState,
    /// Remote copies to invalidate.
    pub invalidate: Vec<CoreId>,
    /// Remote copies to downgrade to S.
    pub downgrade: Vec<CoreId>,
}

/// The manager's cache status map with per-entry violation monitors.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::cache::LineAddr;
/// use slacksim_cmp::map::CacheMap;
/// use slacksim_cmp::mesi::{BusOp, MesiState};
/// use slacksim_core::event::CoreId;
/// use slacksim_core::time::Cycle;
///
/// let mut map = CacheMap::new(8);
/// let line = LineAddr::new(0x40);
/// let first = map.transition(BusOp::Rd, line, CoreId::new(0), Cycle::new(10));
/// assert_eq!(first.grant, MesiState::Exclusive); // sole copy
/// let second = map.transition(BusOp::Rd, line, CoreId::new(1), Cycle::new(20));
/// assert_eq!(second.grant, MesiState::Shared);
/// assert_eq!(second.downgrade, vec![CoreId::new(0)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CacheMap {
    entries: FxHashMap<LineAddr, MapEntry>,
    monitor: KeyedMonitor<LineAddr>,
    n_cores: usize,
    transitions: u64,
    violations: u64,
    /// Mutation generation (tracking metadata: excluded from equality,
    /// never rewound by restores).
    gen: u64,
    /// Per-line dirty stamps. An entry here *outlives* the map entry it
    /// stamps: a line whose entry was reclaimed keeps its stamp, which is
    /// how deltas and restores learn about removals (the delta records
    /// `None` for such a line).
    dirty: FxHashMap<LineAddr, u64>,
}

/// Equality is over model state only; the generation counter and dirty
/// stamps are capture bookkeeping (full-clone and delta checkpointing
/// must agree bit-for-bit).
impl PartialEq for CacheMap {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
            && self.monitor == other.monitor
            && self.n_cores == other.n_cores
            && self.transitions == other.transitions
            && self.violations == other.violations
    }
}

impl Eq for CacheMap {}

/// Incremental state carrier for the [`CacheMap`]: the dirty lines since
/// the capture baseline plus the transition counters.
#[derive(Debug, Clone)]
pub struct CacheMapDelta {
    gen: u64,
    payload: MapPayload,
    transitions: u64,
    violations: u64,
}

/// How the dirty lines travel.
#[derive(Debug, Clone)]
enum MapPayload {
    /// Per dirty line, the entry's full state (`None` = reclaimed) and
    /// its monitor high-water mark (`None` = never touched).
    Sparse(Vec<(LineAddr, Option<MapEntry>, Option<Cycle>)>),
    /// Bulk fallback once most tracked lines are dirty: capture clones
    /// the maps wholesale (buckets copy at memcpy speed) and apply moves
    /// them into place, where the sparse journal pays several hash
    /// probes per line on both sides.
    Dense(Box<DenseMap>),
}

/// The bulk payload: the map's complete model state and dirty stamps as
/// of the capture, so an apply leaves the snapshot bit-identical to the
/// live map.
#[derive(Debug, Clone)]
struct DenseMap {
    entries: FxHashMap<LineAddr, MapEntry>,
    monitor: KeyedMonitor<LineAddr>,
    dirty: FxHashMap<LineAddr, u64>,
}

impl CacheMapDelta {
    /// Number of lines dirty since the capture baseline.
    pub fn dirty_lines(&self) -> usize {
        match &self.payload {
            MapPayload::Sparse(lines) => lines.len(),
            MapPayload::Dense(state) => state.dirty.len(),
        }
    }
}

impl CacheMap {
    /// Creates a map for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or exceeds 16.
    pub fn new(n_cores: usize) -> Self {
        assert!(
            (1..=16).contains(&n_cores),
            "core count must be between 1 and 16"
        );
        CacheMap {
            entries: FxHashMap::default(),
            monitor: KeyedMonitor::new(),
            n_cores,
            transitions: 0,
            violations: 0,
            gen: 0,
            dirty: FxHashMap::default(),
        }
    }

    /// Applies one bus transaction to the map and returns the protocol
    /// outcome (grant state, snoop targets, data source) along with the
    /// violation verdict of this entry's monitoring variable.
    pub fn transition(&mut self, op: BusOp, line: LineAddr, from: CoreId, ts: Cycle) -> MapOutcome {
        debug_assert!(from.index() < self.n_cores, "unknown core {from}");
        self.transitions += 1;
        self.gen += 1;
        self.dirty.insert(line, self.gen);
        let (violation, high_water) = self.monitor.observe_high_water(line, ts);
        if violation {
            self.violations += 1;
        }

        let entry = self.entries.entry(line).or_default();
        let mut invalidate = Vec::new();
        let mut downgrade = Vec::new();
        let mut data_from_owner = None;

        let grant = match op {
            BusOp::Rd => {
                if let Some(owner) = entry.owner {
                    if owner != from {
                        // Possible dirty remote copy: owner supplies and
                        // downgrades (E owners downgrade silently; the
                        // conservative flush costs nothing extra in a
                        // timing-only model).
                        data_from_owner = Some(owner);
                        downgrade.push(owner);
                        entry.owner = None;
                    }
                }
                let other = entry.others(from) != 0;
                entry.add(from);
                if other {
                    MesiState::Shared
                } else {
                    entry.owner = Some(from);
                    MesiState::Exclusive
                }
            }
            BusOp::RdX | BusOp::Upgr => {
                if let Some(owner) = entry.owner {
                    if owner != from {
                        data_from_owner = Some(owner);
                    }
                }
                for c in CoreId::all(self.n_cores) {
                    if c != from && entry.has(c) {
                        invalidate.push(c);
                    }
                }
                entry.sharers = 1 << from.index();
                entry.owner = Some(from);
                MesiState::Modified
            }
            BusOp::Wb => {
                entry.remove(from);
                MesiState::Invalid
            }
        };

        if entry.sharers == 0 {
            self.entries.remove(&line);
        }

        MapOutcome {
            violation,
            high_water,
            data_from_owner,
            grant,
            invalidate,
            downgrade,
        }
    }

    /// Number of lines currently tracked.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Total transitions applied.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total map violations detected.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Returns the set of cores currently holding `line` (testing aid).
    pub fn sharers(&self, line: LineAddr) -> Vec<CoreId> {
        match self.entries.get(&line) {
            Some(e) => CoreId::all(self.n_cores).filter(|&c| e.has(c)).collect(),
            None => Vec::new(),
        }
    }

    /// Number of per-line violation monitors currently tracked.
    pub fn monitor_entries(&self) -> usize {
        self.monitor.len()
    }

    /// Drops per-line monitors whose high-water mark is at or below
    /// `horizon`, returning how many were reclaimed.
    ///
    /// Safe at a committed checkpoint with `horizon` = the checkpoint's
    /// global time: every event at or below the horizon has been serviced
    /// and all future (or replayed) events carry timestamps above it, so
    /// a monitor at the horizon can never flag a violation again. Each
    /// removed line is stamped dirty so delta checkpoints record the
    /// removal and stay bit-identical to full clones.
    pub fn compact_monitor(&mut self, horizon: Cycle) -> usize {
        let removed = self.monitor.compact(horizon);
        for &line in &removed {
            self.gen += 1;
            self.dirty.insert(line, self.gen);
        }
        removed.len()
    }

    /// Serializes the model state. Maps are written sorted by line so the
    /// byte stream is deterministic; the core count is configuration and
    /// is validated, not stored.
    pub fn save_state(&self, w: &mut ByteWriter) {
        let mut lines: Vec<LineAddr> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        w.u32(lines.len() as u32);
        for line in lines {
            let e = &self.entries[&line];
            w.u64(line.raw());
            w.u16(e.sharers);
            match e.owner {
                Some(c) => {
                    w.bool(true);
                    w.u16(c.index() as u16);
                }
                None => w.bool(false),
            }
        }
        let mut monitors: Vec<(LineAddr, Cycle)> =
            self.monitor.iter().map(|(&l, hw)| (l, hw)).collect();
        monitors.sort_unstable_by_key(|&(l, _)| l);
        w.u32(monitors.len() as u32);
        for (line, hw) in monitors {
            w.u64(line.raw());
            w.u64(hw.as_u64());
        }
        w.u64(self.transitions);
        w.u64(self.violations);
    }

    /// Restores state written by [`CacheMap::save_state`]. Capture
    /// bookkeeping (generation, dirty stamps) is reset; the caller
    /// re-seeds delta baselines on resume.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if the bytes are malformed or reference
    /// cores outside this map's core count.
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        let n = self.n_cores;
        let mut entries = FxHashMap::default();
        for _ in 0..r.u32()? {
            let line = LineAddr::new(r.u64()?);
            let sharers = r.u16()?;
            if u32::from(sharers) >> n != 0 {
                return Err(PersistError::Corrupt("map entry references unknown core"));
            }
            let owner = if r.bool()? {
                let idx = r.u16()?;
                if (idx as usize) >= n {
                    return Err(PersistError::Corrupt("map owner is an unknown core"));
                }
                Some(CoreId::new(idx))
            } else {
                None
            };
            entries.insert(line, MapEntry { sharers, owner });
        }
        let mut monitor = KeyedMonitor::new();
        for _ in 0..r.u32()? {
            let line = LineAddr::new(r.u64()?);
            let hw = Cycle::new(r.u64()?);
            monitor.set(line, Some(hw));
        }
        self.entries = entries;
        self.monitor = monitor;
        self.transitions = r.u64()?;
        self.violations = r.u64()?;
        self.gen = 0;
        self.dirty.clear();
        Ok(())
    }
}

impl Checkpointable for CacheMap {
    type Delta = CacheMapDelta;

    fn generation(&self) -> u64 {
        self.gen
    }

    fn capture_delta(&mut self, since_gen: u64) -> CacheMapDelta {
        // Stamps at or below `since_gen` can never be needed again: every
        // future capture baseline and restore target sits at or above the
        // generation being captured here.
        self.dirty.retain(|_, stamp| *stamp > since_gen);
        let dirty = self.dirty.len();
        let tracked = self.entries.len() + self.monitor.len();
        // The sparse journal costs several hash probes per line on each
        // side, so it only beats bulk clones while the dirty set is a
        // small fraction of the tracked state. The absolute floor keeps
        // small maps (and their tests) on the readable sparse path.
        let payload = if dirty >= 256 && dirty * 8 >= tracked {
            MapPayload::Dense(Box::new(DenseMap {
                entries: self.entries.clone(),
                monitor: self.monitor.clone(),
                dirty: self.dirty.clone(),
            }))
        } else {
            MapPayload::Sparse(
                self.dirty
                    .keys()
                    .map(|&line| {
                        (
                            line,
                            self.entries.get(&line).copied(),
                            self.monitor.get(&line),
                        )
                    })
                    .collect(),
            )
        };
        CacheMapDelta {
            gen: self.gen,
            payload,
            transitions: self.transitions,
            violations: self.violations,
        }
    }

    fn apply_delta(&mut self, delta: CacheMapDelta) {
        match delta.payload {
            MapPayload::Sparse(lines) => {
                for (line, entry, high_water) in lines {
                    match entry {
                        Some(e) => {
                            self.entries.insert(line, e);
                        }
                        None => {
                            self.entries.remove(&line);
                        }
                    }
                    self.monitor.set(line, high_water);
                    self.dirty.insert(line, delta.gen);
                }
            }
            MapPayload::Dense(state) => {
                self.entries = state.entries;
                self.monitor = state.monitor;
                self.dirty = state.dirty;
            }
        }
        self.gen = self.gen.max(delta.gen);
        self.transitions = delta.transitions;
        self.violations = delta.violations;
    }

    fn restore_from(&mut self, base: &Self, since_gen: u64) {
        let dirty_lines: Vec<LineAddr> = self
            .dirty
            .iter()
            .filter(|&(_, &stamp)| stamp > since_gen)
            .map(|(&line, _)| line)
            .collect();
        for line in dirty_lines {
            match base.entries.get(&line) {
                Some(&e) => {
                    self.entries.insert(line, e);
                }
                None => {
                    self.entries.remove(&line);
                }
            }
            self.monitor.set(line, base.monitor.get(&line));
        }
        self.transitions = base.transitions;
        self.violations = base.violations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn ts(t: u64) -> Cycle {
        Cycle::new(t)
    }

    const LINE: LineAddr = LineAddr::new(0x99);

    #[test]
    fn first_read_grants_exclusive() {
        let mut m = CacheMap::new(4);
        let out = m.transition(BusOp::Rd, LINE, c(0), ts(1));
        assert_eq!(out.grant, MesiState::Exclusive);
        assert!(out.invalidate.is_empty() && out.downgrade.is_empty());
        assert_eq!(out.data_from_owner, None);
        assert_eq!(m.sharers(LINE), vec![c(0)]);
    }

    #[test]
    fn second_read_downgrades_owner_and_shares() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::Rd, LINE, c(0), ts(1));
        let out = m.transition(BusOp::Rd, LINE, c(1), ts(2));
        assert_eq!(out.grant, MesiState::Shared);
        assert_eq!(out.downgrade, vec![c(0)]);
        assert_eq!(out.data_from_owner, Some(c(0)));
        assert_eq!(m.sharers(LINE), vec![c(0), c(1)]);
    }

    #[test]
    fn rdx_invalidates_all_others() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::Rd, LINE, c(0), ts(1));
        m.transition(BusOp::Rd, LINE, c(1), ts(2));
        m.transition(BusOp::Rd, LINE, c(2), ts(3));
        let out = m.transition(BusOp::RdX, LINE, c(3), ts(4));
        assert_eq!(out.grant, MesiState::Modified);
        assert_eq!(out.invalidate, vec![c(0), c(1), c(2)]);
        assert_eq!(m.sharers(LINE), vec![c(3)]);
    }

    #[test]
    fn upgr_from_sharer_invalidates_peers_without_data() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::Rd, LINE, c(0), ts(1));
        m.transition(BusOp::Rd, LINE, c(1), ts(2));
        let out = m.transition(BusOp::Upgr, LINE, c(0), ts(3));
        assert_eq!(out.grant, MesiState::Modified);
        assert_eq!(out.invalidate, vec![c(1)]);
        assert_eq!(out.data_from_owner, None, "upgrade moves no data");
        assert_eq!(m.sharers(LINE), vec![c(0)]);
    }

    #[test]
    fn rdx_from_modified_owner_sources_data_from_owner() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::RdX, LINE, c(2), ts(1));
        let out = m.transition(BusOp::RdX, LINE, c(0), ts(2));
        assert_eq!(out.data_from_owner, Some(c(2)));
        assert_eq!(out.invalidate, vec![c(2)]);
    }

    #[test]
    fn writeback_removes_the_owner() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::RdX, LINE, c(1), ts(1));
        let out = m.transition(BusOp::Wb, LINE, c(1), ts(5));
        assert_eq!(out.grant, MesiState::Invalid);
        assert!(m.sharers(LINE).is_empty());
        assert_eq!(m.tracked_lines(), 0, "empty entries are reclaimed");
    }

    #[test]
    fn per_line_monitors_flag_out_of_order_transitions() {
        let mut m = CacheMap::new(4);
        assert!(!m.transition(BusOp::Rd, LINE, c(0), ts(10)).violation);
        // Different line, earlier timestamp: fine.
        assert!(
            !m.transition(BusOp::Rd, LineAddr::new(0x500), c(1), ts(5))
                .violation
        );
        // Same line, earlier timestamp: map violation.
        assert!(m.transition(BusOp::Rd, LINE, c(1), ts(7)).violation);
        assert_eq!(m.violations(), 1);
        assert_eq!(m.transitions(), 3);
    }

    #[test]
    fn repeat_read_by_owner_keeps_exclusivity() {
        let mut m = CacheMap::new(4);
        m.transition(BusOp::Rd, LINE, c(0), ts(1));
        let out = m.transition(BusOp::Rd, LINE, c(0), ts(2));
        assert_eq!(out.grant, MesiState::Exclusive);
        assert!(out.downgrade.is_empty());
    }

    #[test]
    #[should_panic(expected = "between 1 and 16")]
    fn too_many_cores_rejected() {
        let _ = CacheMap::new(32);
    }

    #[test]
    fn delta_roundtrip_covers_insert_update_and_reclaim() {
        let mut live = CacheMap::new(4);
        live.transition(BusOp::Rd, LINE, c(0), ts(1));
        let mut base = live.clone();
        let gen = live.generation();

        live.transition(BusOp::RdX, LINE, c(1), ts(2)); // update
        live.transition(BusOp::Rd, LineAddr::new(0x500), c(2), ts(3)); // insert
        live.transition(BusOp::Wb, LINE, c(1), ts(4)); // reclaim LINE
        assert_eq!(live.tracked_lines(), 1);

        let delta = live.capture_delta(gen);
        assert_eq!(delta.dirty_lines(), 2, "LINE and 0x500");
        base.apply_delta(delta);
        assert_eq!(base, live, "apply reproduces insert, update and reclaim");
    }

    #[test]
    fn restore_rewinds_entries_monitors_and_counters() {
        let mut live = CacheMap::new(4);
        live.transition(BusOp::Rd, LINE, c(0), ts(10));
        let cp = live.clone();
        let cp_gen = live.generation();

        live.transition(BusOp::Wb, LINE, c(0), ts(20)); // reclaim
        live.transition(BusOp::Rd, LineAddr::new(0x77), c(1), ts(5));
        live.transition(BusOp::Rd, LineAddr::new(0x77), c(2), ts(3)); // violation
        assert_eq!(live.violations(), 1);

        live.restore_from(&cp, cp_gen);
        assert_eq!(live, cp, "restore rewinds to the checkpoint");
        assert_eq!(live.violations(), 0);
        // The reclaimed entry is back and its monitor remembers ts(10):
        // an earlier transition violates again after the restore.
        assert!(live.transition(BusOp::Rd, LINE, c(1), ts(7)).violation);
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let mut live = CacheMap::new(4);
        live.transition(BusOp::Rd, LINE, c(0), ts(10));
        live.transition(BusOp::RdX, LINE, c(1), ts(20));
        live.transition(BusOp::Rd, LineAddr::new(0x500), c(2), ts(15));
        live.transition(BusOp::Wb, LINE, c(1), ts(30)); // reclaimed entry, monitor kept
        live.transition(BusOp::Rd, LineAddr::new(0x77), c(3), ts(5));

        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = CacheMap::new(4);
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).expect("load succeeds");
        r.finish().expect("no trailing bytes");
        assert_eq!(restored, live);
        assert_eq!(restored.monitor_entries(), live.monitor_entries());
        // A reclaimed line's monitor must survive: an earlier transition
        // still violates after the round trip.
        assert!(restored.transition(BusOp::Rd, LINE, c(0), ts(25)).violation);

        // Sharer bits beyond this map's core count are rejected.
        let mut tiny = CacheMap::new(1);
        assert!(tiny.load_state(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn compaction_drops_settled_monitors_and_survives_deltas() {
        let mut live = CacheMap::new(4);
        live.transition(BusOp::Rd, LINE, c(0), ts(10));
        live.transition(BusOp::Rd, LineAddr::new(0x500), c(1), ts(50));
        let mut base = live.clone();
        let gen = live.generation();

        assert_eq!(live.monitor_entries(), 2);
        assert_eq!(live.compact_monitor(ts(10)), 1, "only LINE settled");
        assert_eq!(live.monitor_entries(), 1);
        // The removal must travel through the delta so snapshots stay
        // bit-identical with the live map.
        base.apply_delta(live.capture_delta(gen));
        assert_eq!(base, live);
        assert_eq!(base.monitor_entries(), 1);
        // An old-timestamp transition on the compacted line no longer
        // violates: its monitor was retired as settled.
        assert!(!live.transition(BusOp::Rd, LINE, c(2), ts(3)).violation);
    }

    #[test]
    fn equality_ignores_tracking_metadata() {
        let mut a = CacheMap::new(4);
        let mut b = CacheMap::new(4);
        a.transition(BusOp::Rd, LINE, c(0), ts(1));
        b.transition(BusOp::Rd, LINE, c(0), ts(1));
        let cp_gen = b.generation();
        let cp = b.clone();
        b.transition(BusOp::Rd, LINE, c(1), ts(2));
        b.restore_from(&cp, cp_gen);
        assert!(b.generation() > a.generation());
        assert_eq!(a, b, "generations are not part of model state");
    }
}
