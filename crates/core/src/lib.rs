//! # slacksim-core — the slack-simulation kernel
//!
//! A from-scratch Rust implementation of the parallel CMP-on-CMP
//! simulation paradigm of *"Adaptive and Speculative Slack Simulations of
//! CMPs on CMPs"* (Chen, Dabbiru, Annavaram, Dubois — MoBS 2010).
//!
//! In slack simulation, every target core is simulated by its own (logical
//! or physical) host thread, and per-core simulated clocks are allowed to
//! drift apart within a *slack bound* instead of barrier-synchronising
//! every cycle. The kernel provides:
//!
//! * simulated-time primitives and event plumbing ([`time`], [`event`]);
//! * the pacing schemes of the paper — cycle-by-cycle, bounded slack,
//!   unbounded slack, quantum, and feedback-controlled *adaptive* slack
//!   ([`scheme`]);
//! * violation detection through timestamp monitoring variables
//!   ([`violation`]);
//! * checkpointing, rollback and the checkpoint-interval statistics behind
//!   the paper's speculative scheme ([`speculative`]), plus its analytical
//!   performance model ([`model`]);
//! * two interchangeable execution engines ([`engine`]): a deterministic
//!   sequential engine for reproducible accuracy experiments and a
//!   one-thread-per-core engine for wall-clock performance experiments.
//!
//! The kernel is target-agnostic: hardware models plug in through the
//! [`engine::CoreModel`] and [`engine::UncoreModel`] traits. The companion
//! crate `slacksim-cmp` provides the paper's 8-core snooping-bus CMP.
//!
//! ## Example
//!
//! A minimal self-contained target (one monitored resource, cores that
//! ping it) run under bounded slack:
//!
//! ```
//! use slacksim_core::engine::{
//!     CoreModel, EngineConfig, SequentialEngine, ServiceSink, TickCtx, UncoreModel,
//! };
//! use slacksim_core::event::{CoreId, Timestamped};
//! use slacksim_core::scheme::Scheme;
//! use slacksim_core::stats::Counters;
//! use slacksim_core::violation::{TimestampMonitor, ViolationEvent, ViolationKind};
//!
//! #[derive(Clone)]
//! struct Pinger(u64);
//! impl CoreModel for Pinger {
//!     type Event = ();
//!     fn tick(&mut self, ctx: &mut TickCtx<'_, ()>) -> u32 {
//!         while ctx.pop_event().is_some() {}
//!         if ctx.now().as_u64() % 4 == 0 {
//!             ctx.emit(());
//!         }
//!         self.0 += 1;
//!         1
//!     }
//!     fn committed(&self) -> u64 {
//!         self.0
//!     }
//!     fn counters(&self) -> Counters {
//!         Counters::new()
//!     }
//! }
//!
//! #[derive(Clone, Default)]
//! struct Bus(TimestampMonitor);
//! impl UncoreModel<()> for Bus {
//!     fn service(&mut self, from: CoreId, ev: Timestamped<()>, sink: &mut ServiceSink<()>) {
//!         if self.0.observe(ev.ts) {
//!             sink.report_violation(ViolationEvent {
//!                 kind: ViolationKind::Bus,
//!                 ts: ev.ts,
//!                 high_water: self.0.high_water(),
//!             });
//!         }
//!         sink.deliver(from, Timestamped::new(ev.ts + 3, ()));
//!     }
//!     fn counters(&self) -> Counters {
//!         Counters::new()
//!     }
//! }
//!
//! // Checkpointing by full clone is fine for toy models; real targets
//! // can implement `checkpoint::Checkpointable` for incremental deltas.
//! slacksim_core::impl_checkpointable_by_clone!(Pinger, Bus);
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cores = vec![Pinger(0); 4];
//! let cfg = EngineConfig::new(Scheme::BoundedSlack { bound: 16 }, 10_000);
//! let report = SequentialEngine::new(cores, Bus::default(), cfg).run()?;
//! assert!(report.committed >= 10_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod checkpoint;
pub mod engine;
pub mod event;
pub mod fxhash;
pub mod model;
pub mod obs;
pub mod persist;
pub mod rng;
pub mod sched;
pub mod scheme;
pub mod speculative;
pub mod stats;
pub mod sync;
pub mod time;
pub mod violation;

pub use checkpoint::{CheckpointMode, Checkpointable};
pub use engine::{
    CoreModel, EngineConfig, EngineError, SequentialEngine, ServiceSink, ThreadedEngine, TickCtx,
    UncoreModel,
};
pub use event::{CoreId, Timestamped};
pub use sched::{HostSched, SchedRef, SchedSite, TaskId};
pub use scheme::Scheme;
pub use speculative::{SpeculationConfig, ViolationSelect};
pub use stats::SimReport;
pub use time::Cycle;
pub use violation::{ViolationEvent, ViolationKind};
