//! # slacksim-conformance
//!
//! Deterministic schedule-fuzzing and cross-engine conformance harness
//! for the slack engines.
//!
//! The threaded engine's correctness depends on a lock-free
//! synchronisation protocol (SPSC rings, parked-flag/fence hand-shakes,
//! snapshot mailboxes) whose bugs hide in host-scheduler interleavings
//! that ordinary tests cannot force or replay. This crate attacks that
//! from three sides:
//!
//! * [`vsched`] — a **virtual scheduler** ([`VirtualSched`]) that plugs
//!   into the engine's [`HostSched`](slacksim::HostSched) seam and runs
//!   the *real* threaded protocol under a seeded, fully deterministic
//!   interleaving explorer: random walks plus targeted adversarial
//!   policies (park-just-before-wake races, victim starvation,
//!   drain-vs-push preemption), with optional protocol
//!   [`Mutation`]s to prove the harness catches the bug class it hunts.
//! * [`oracle`] — a **differential oracle** comparing engines across a
//!   {scheme × workload × core-count} matrix: exact [`Fingerprint`]
//!   equality where the design guarantees it (cycle-by-cycle), and
//!   metamorphic invariants everywhere else, plus a greedy failure
//!   [`shrink`]er.
//! * [`repro`] — a **one-line repro format** (`conformance-repro v1
//!   ...`) so any failure replays from a single pasted line.
//!
//! ```
//! use slacksim_conformance::{run_virtual, SchedPolicy, Mutation, VirtCase};
//! use slacksim::{scheme::Scheme, Benchmark};
//!
//! let case = VirtCase {
//!     policy: SchedPolicy::RandomWalk,
//!     sched_seed: 42,
//!     mutation: Mutation::None,
//!     bench: Benchmark::Fft,
//!     cores: 2,
//!     shards: 1,
//!     scheme: Scheme::BoundedSlack { bound: 8 },
//!     target: 2_000,
//!     seed: 1,
//! };
//! let (report, diag) = run_virtual(&case);
//! assert!(report.committed >= 2_000);
//! assert_eq!(diag.lost_wakeups, 0, "correct protocol loses no wakeups");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod oracle;
pub mod repro;
pub mod vsched;

pub use oracle::{
    check_invariants, fingerprint, run_engine, run_engine_on, run_engine_sharded, run_repro,
    run_resumed, run_resumed_on, run_speculative, run_virtual, shrink, Fingerprint,
};
pub use repro::{format_scheme, parse_repro, parse_scheme, VirtCase};
pub use vsched::{Mutation, SchedDiag, SchedPolicy, VirtualSched};

/// Number of schedule seeds each fuzzing loop explores, scaled to the
/// build profile and overridable via `SLACKSIM_CONFORMANCE_SEEDS` (CI's
/// smoke step pins this to keep the run inside its time budget).
pub fn smoke_seeds() -> u64 {
    if let Ok(v) = std::env::var("SLACKSIM_CONFORMANCE_SEEDS") {
        if let Ok(n) = v.parse::<u64>() {
            return n.max(1);
        }
    }
    if cfg!(debug_assertions) {
        2
    } else {
        6
    }
}
