//! The event vocabulary exchanged between core threads and the simulation
//! manager over OutQ/InQ (paper §2).

use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};

use crate::cache::LineAddr;
use crate::mesi::{BusOp, MesiState};

/// Per-core request tag matching replies to MSHRs.
pub type ReqId = u32;

/// Events flowing between a core thread and the manager.
///
/// The first group travels core → manager (requests placed in the core's
/// OutQ); the second travels manager → core (completions and snoop actions
/// delivered into the core's InQ). Timestamps live in the enclosing
/// [`Timestamped`](slacksim_core::event::Timestamped) wrapper: a request's
/// timestamp is the issuing core's local time, a reply's timestamp is the
/// manager-computed completion time on the response bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemEvent {
    // ---- core → manager ------------------------------------------------
    /// A coherence transaction for the request bus.
    Request {
        /// Transaction type.
        op: BusOp,
        /// Line concerned.
        line: LineAddr,
        /// Requester-local tag for matching the reply.
        req: ReqId,
        /// `true` when this is an instruction fetch (no coherence state is
        /// installed in remote caches' data arrays).
        ifetch: bool,
    },
    /// Eviction notice for a dirty line (bus writeback; no reply).
    Writeback {
        /// Line being written back.
        line: LineAddr,
    },
    /// The core reached a global barrier and is spinning.
    BarrierArrive {
        /// Barrier episode id.
        id: u32,
    },
    /// The core wants a lock and is spinning.
    LockAcquire {
        /// Lock id.
        id: u32,
    },
    /// The core released a lock (fire-and-forget).
    LockRelease {
        /// Lock id.
        id: u32,
    },

    // ---- manager → core ------------------------------------------------
    /// Completion of a [`MemEvent::Request`]: data (or ownership) is
    /// available at the event's timestamp.
    Reply {
        /// Tag of the completed request.
        req: ReqId,
        /// Line concerned.
        line: LineAddr,
        /// State the line enters in the requester's L1.
        grant: MesiState,
    },
    /// Snoop-induced invalidation of a remote copy.
    Invalidate {
        /// Line to drop.
        line: LineAddr,
    },
    /// Snoop-induced downgrade (M/E → S) of a remote copy.
    Downgrade {
        /// Line to downgrade.
        line: LineAddr,
    },
    /// All cores arrived: resume from the barrier.
    BarrierRelease {
        /// Barrier episode id.
        id: u32,
    },
    /// The lock is now held by this core.
    LockGranted {
        /// Lock id.
        id: u32,
    },
}

impl MemEvent {
    /// Whether this event travels core → manager.
    pub const fn is_request(&self) -> bool {
        matches!(
            self,
            MemEvent::Request { .. }
                | MemEvent::Writeback { .. }
                | MemEvent::BarrierArrive { .. }
                | MemEvent::LockAcquire { .. }
                | MemEvent::LockRelease { .. }
        )
    }

    /// Whether this event occupies the snooping bus (and therefore
    /// participates in bus-order violation detection). Synchronisation
    /// traffic is executed reliably inside the simulator and bypasses the
    /// modelled bus, exactly as SlackSim executes the MP_Simplesim
    /// parallel-programming APIs.
    pub const fn uses_bus(&self) -> bool {
        matches!(self, MemEvent::Request { .. } | MemEvent::Writeback { .. })
    }

    /// Serializes the event with a stable one-byte variant tag for the
    /// on-disk snapshot format.
    pub fn save_state(&self, w: &mut ByteWriter) {
        match *self {
            MemEvent::Request {
                op,
                line,
                req,
                ifetch,
            } => {
                w.u8(0);
                w.u8(op.persist_tag());
                w.u64(line.raw());
                w.u32(req);
                w.bool(ifetch);
            }
            MemEvent::Writeback { line } => {
                w.u8(1);
                w.u64(line.raw());
            }
            MemEvent::BarrierArrive { id } => {
                w.u8(2);
                w.u32(id);
            }
            MemEvent::LockAcquire { id } => {
                w.u8(3);
                w.u32(id);
            }
            MemEvent::LockRelease { id } => {
                w.u8(4);
                w.u32(id);
            }
            MemEvent::Reply { req, line, grant } => {
                w.u8(5);
                w.u32(req);
                w.u64(line.raw());
                w.u8(grant.persist_tag());
            }
            MemEvent::Invalidate { line } => {
                w.u8(6);
                w.u64(line.raw());
            }
            MemEvent::Downgrade { line } => {
                w.u8(7);
                w.u64(line.raw());
            }
            MemEvent::BarrierRelease { id } => {
                w.u8(8);
                w.u32(id);
            }
            MemEvent::LockGranted { id } => {
                w.u8(9);
                w.u32(id);
            }
        }
    }

    /// Decodes an event written by [`MemEvent::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for an unknown variant tag or truncated
    /// bytes.
    pub fn load_state(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => MemEvent::Request {
                op: BusOp::from_persist_tag(r.u8()?)?,
                line: LineAddr::new(r.u64()?),
                req: r.u32()?,
                ifetch: r.bool()?,
            },
            1 => MemEvent::Writeback {
                line: LineAddr::new(r.u64()?),
            },
            2 => MemEvent::BarrierArrive { id: r.u32()? },
            3 => MemEvent::LockAcquire { id: r.u32()? },
            4 => MemEvent::LockRelease { id: r.u32()? },
            5 => MemEvent::Reply {
                req: r.u32()?,
                line: LineAddr::new(r.u64()?),
                grant: MesiState::from_persist_tag(r.u8()?)?,
            },
            6 => MemEvent::Invalidate {
                line: LineAddr::new(r.u64()?),
            },
            7 => MemEvent::Downgrade {
                line: LineAddr::new(r.u64()?),
            },
            8 => MemEvent::BarrierRelease { id: r.u32()? },
            9 => MemEvent::LockGranted { id: r.u32()? },
            _ => return Err(PersistError::Corrupt("unknown memory-event tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_classification() {
        assert!(MemEvent::Writeback {
            line: LineAddr::new(1)
        }
        .is_request());
        assert!(MemEvent::BarrierArrive { id: 0 }.is_request());
        assert!(!MemEvent::Reply {
            req: 0,
            line: LineAddr::new(0),
            grant: MesiState::Shared
        }
        .is_request());
        assert!(!MemEvent::BarrierRelease { id: 0 }.is_request());
    }

    #[test]
    fn every_variant_round_trips() {
        let events = [
            MemEvent::Request {
                op: BusOp::RdX,
                line: LineAddr::new(0x40),
                req: 7,
                ifetch: true,
            },
            MemEvent::Writeback {
                line: LineAddr::new(0x99),
            },
            MemEvent::BarrierArrive { id: 3 },
            MemEvent::LockAcquire { id: 4 },
            MemEvent::LockRelease { id: 5 },
            MemEvent::Reply {
                req: 9,
                line: LineAddr::new(0x7),
                grant: MesiState::Shared,
            },
            MemEvent::Invalidate {
                line: LineAddr::new(0x8),
            },
            MemEvent::Downgrade {
                line: LineAddr::new(0x9),
            },
            MemEvent::BarrierRelease { id: 6 },
            MemEvent::LockGranted { id: 7 },
        ];
        for ev in &events {
            let mut w = ByteWriter::new();
            ev.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&MemEvent::load_state(&mut r).unwrap(), ev);
            r.finish().unwrap();
        }
        let mut bad = ByteReader::new(&[0xff]);
        assert!(MemEvent::load_state(&mut bad).is_err());
    }

    #[test]
    fn bus_usage_classification() {
        assert!(MemEvent::Request {
            op: BusOp::Rd,
            line: LineAddr::new(3),
            req: 1,
            ifetch: false
        }
        .uses_bus());
        assert!(MemEvent::Writeback {
            line: LineAddr::new(3)
        }
        .uses_bus());
        assert!(!MemEvent::LockAcquire { id: 1 }.uses_bus());
        assert!(!MemEvent::BarrierArrive { id: 1 }.uses_bus());
    }
}
