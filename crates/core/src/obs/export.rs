//! Exporters: Chrome Trace Event Format JSON (loadable in `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev)) and a long-format CSV dump of
//! the metrics registry.
//!
//! Everything is hand-rolled over `std::fmt::Write` — the kernel carries no
//! serialisation dependency. The trace maps one simulated cycle to one
//! microsecond of trace time, so a 2-million-cycle run renders as a 2-second
//! timeline.

use std::collections::HashMap;
use std::fmt::Write as _;

use super::prof::ProfData;
use super::trace::{Phase, TraceEvent, TraceRecord};
use super::ObsData;

/// Escapes a string for inclusion inside a JSON string literal (quotes
/// not included). Shared by the exporters here and the campaign
/// manifest/aggregate writers.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a finite JSON number (non-finite values become 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

struct EventWriter {
    events: Vec<String>,
}

impl EventWriter {
    fn new() -> Self {
        EventWriter { events: Vec::new() }
    }

    fn metadata(&mut self, name: &str, pid: u64, tid: u64, arg_name: &str) {
        self.events.push(format!(
            r#"{{"name":"{}","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            escape_json(name),
            escape_json(arg_name)
        ));
    }

    fn span(&mut self, name: &str, cat: &str, tid: u64, ts: u64, dur: u64, args: &str) {
        self.events.push(format!(
            r#"{{"name":"{}","cat":"{}","ph":"X","pid":1,"tid":{tid},"ts":{ts},"dur":{dur},"args":{{{args}}}}}"#,
            escape_json(name),
            escape_json(cat)
        ));
    }

    fn instant(&mut self, name: &str, cat: &str, tid: u64, ts: u64, args: &str) {
        self.events.push(format!(
            r#"{{"name":"{}","cat":"{}","ph":"i","s":"t","pid":1,"tid":{tid},"ts":{ts},"args":{{{args}}}}}"#,
            escape_json(name),
            escape_json(cat)
        ));
    }

    fn counter(&mut self, name: &str, ts: u64, arg_name: &str, value: &str) {
        self.events.push(format!(
            r#"{{"name":"{}","ph":"C","pid":1,"ts":{ts},"args":{{"{}":{value}}}}}"#,
            escape_json(name),
            escape_json(arg_name)
        ));
    }

    fn finish(self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

/// Renders the observability data as a Chrome Trace Event Format document.
///
/// Track layout:
///
/// * one thread track per target core (`tid` = core index) carrying
///   `run`/`wait`/`replay` spans and violation instants;
/// * a `manager` track (`tid` = core count) carrying checkpoint and
///   rollback spans;
/// * counter tracks for the slack bound, the sampled violation rate, local
///   clock drift, queue depths, and manager wait time.
///
/// Timestamps are simulated cycles interpreted as microseconds.
pub fn chrome_trace_json(obs: &ObsData) -> String {
    chrome_trace_json_with_prof(obs, None)
}

/// [`chrome_trace_json`] plus, when a host-time profile is given, one
/// `prof.<site>` counter track carrying the site's final self-time in
/// milliseconds (a flat counter anchored at trace time 0 — Perfetto
/// renders it as a labelled summary track next to the timeline).
pub fn chrome_trace_json_with_prof(obs: &ObsData, prof: Option<&ProfData>) -> String {
    let manager_tid = obs.cores as u64;
    let mut w = EventWriter::new();
    w.events.push(
        r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"slacksim"}}"#
            .to_string(),
    );
    for c in 0..obs.cores {
        w.metadata("thread_name", 1, c as u64, &format!("core {c}"));
    }
    w.metadata("thread_name", 1, manager_tid, "manager");

    let mut records: Vec<&TraceRecord> = obs.records.iter().collect();
    records.sort_by_key(|r| r.cycle);

    // Open phase begins, keyed by (core, phase), holding the begin cycle.
    // Begins and ends always nest per (core, phase) pair, so a stack copes
    // with ring-buffer truncation: an orphaned end (its begin was dropped)
    // is skipped rather than mis-paired.
    let mut open: HashMap<(u16, Phase), Vec<u64>> = HashMap::new();

    for rec in records {
        let ts = rec.cycle.as_u64();
        match rec.event {
            TraceEvent::PhaseBegin { core, phase } => {
                open.entry((core.index() as u16, phase))
                    .or_default()
                    .push(ts);
            }
            TraceEvent::PhaseEnd { core, phase } => {
                if let Some(begin) = open
                    .get_mut(&(core.index() as u16, phase))
                    .and_then(|stack| stack.pop())
                {
                    w.span(
                        phase.name(),
                        "phase",
                        core.index() as u64,
                        begin,
                        ts.saturating_sub(begin),
                        "",
                    );
                }
            }
            TraceEvent::Violation {
                kind,
                core,
                ts: vts,
                high_water,
            } => {
                let args = format!(
                    r#""ts":{},"high_water":{},"distance":{}"#,
                    vts.as_u64(),
                    high_water.as_u64(),
                    high_water.as_u64().saturating_sub(vts.as_u64())
                );
                w.instant(
                    &format!("violation:{kind:?}"),
                    "violation",
                    core.index() as u64,
                    ts,
                    &args,
                );
            }
            TraceEvent::BoundChange { old, new, rate } => {
                w.counter("slack_bound", ts, "bound", &format!("{new}"));
                w.counter("violation_rate", ts, "rate", &json_num(rate));
                let args = format!(r#""old":{old},"new":{new},"rate":{}"#, json_num(rate));
                w.instant("bound_change", "adaptive", manager_tid, ts, &args);
            }
            TraceEvent::Checkpoint { ordinal, overshoot } => {
                let args = format!(r#""ordinal":{ordinal},"overshoot":{overshoot}"#);
                w.span(
                    "checkpoint",
                    "speculation",
                    manager_tid,
                    ts,
                    overshoot,
                    &args,
                );
            }
            TraceEvent::Rollback {
                ordinal,
                wasted_cycles,
            } => {
                let args = format!(r#""ordinal":{ordinal},"wasted_cycles":{wasted_cycles}"#);
                // The discarded region precedes the rollback instant.
                w.span(
                    "rollback",
                    "speculation",
                    manager_tid,
                    ts.saturating_sub(wasted_cycles),
                    wasted_cycles,
                    &args,
                );
            }
            TraceEvent::ReplayEnd {
                ordinal,
                replay_cycles,
            } => {
                let args = format!(r#""ordinal":{ordinal},"replay_cycles":{replay_cycles}"#);
                // Recorded when replay reaches the boundary: the replayed
                // region extends backwards from the record time.
                w.span(
                    "cc_replay",
                    "speculation",
                    manager_tid,
                    ts.saturating_sub(replay_cycles),
                    replay_cycles,
                    &args,
                );
            }
            TraceEvent::ManagerWait { ns } => {
                w.counter("manager_wait_ns", ts, "ns", &format!("{ns}"));
            }
            TraceEvent::QueueDepth { q, len } => {
                w.counter(&q.label(), ts, "len", &format!("{len}"));
            }
            TraceEvent::LocalTimeSample { core, cycle } => {
                let drift = cycle.as_u64().saturating_sub(ts);
                w.counter(
                    &format!("drift.core{}", core.index()),
                    ts,
                    "cycles",
                    &format!("{drift}"),
                );
            }
            TraceEvent::StatePersist { ordinal, bytes } => {
                let args = format!(r#""ordinal":{ordinal},"bytes":{bytes}"#);
                w.instant("state_persist", "persist", manager_tid, ts, &args);
                w.counter("persist_bytes", ts, "bytes", &format!("{bytes}"));
            }
            TraceEvent::StateRestore { global } => {
                let args = format!(r#""global":{}"#, global.as_u64());
                w.instant("state_restore", "persist", manager_tid, ts, &args);
            }
        }
    }
    if let Some(prof) = prof {
        for s in &prof.sites {
            w.counter(
                &format!("prof.{}", s.site.name()),
                0,
                "self_ms",
                &json_num(s.self_ns as f64 / 1e6),
            );
        }
    }
    w.finish()
}

/// Human-readable nanosecond quantity (`1.234 s`, `56.7 ms`, `890 µs`,
/// `12 ns`).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Renders the host-time profile as an aligned text table, one row per
/// site ordered by descending self-time, with a footer stating the
/// measured wall-clock, recording thread count and self-time coverage
/// (self-time sum over `wall × threads`).
pub fn prof_table(prof: &ProfData) -> String {
    let mut rows: Vec<_> = prof.sites.iter().collect();
    rows.sort_by(|a, b| {
        b.self_ns
            .cmp(&a.self_ns)
            .then((a.site as usize).cmp(&(b.site as usize)))
    });
    let total_self = prof.total_self_ns().max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>12} {:>12} {:>12} {:>7}",
        "site", "calls", "total", "self", "share"
    );
    for s in rows {
        let _ = writeln!(
            out,
            "{:<20} {:>12} {:>12} {:>12} {:>6.1}%",
            s.site.name(),
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(s.self_ns),
            s.self_ns as f64 / total_self as f64 * 100.0,
        );
    }
    let _ = writeln!(
        out,
        "wall clock {} x {} thread{}; self-time coverage {:.1}%",
        fmt_ns(prof.wall_ns),
        prof.threads,
        if prof.threads == 1 { "" } else { "s" },
        prof.coverage() * 100.0,
    );
    out
}

/// Renders the host-time profile as CSV
/// (`site,count,total_ns,self_ns,self_share`), one row per site in
/// [`super::prof::ProfSite::ALL`] order, followed by `wall_ns` and
/// `threads` summary rows (zeros in the unused columns).
pub fn prof_csv(prof: &ProfData) -> String {
    let total_self = prof.total_self_ns().max(1);
    let mut out = String::from("site,count,total_ns,self_ns,self_share\n");
    for s in &prof.sites {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            s.site.name(),
            s.count,
            s.total_ns,
            s.self_ns,
            json_num(s.self_ns as f64 / total_self as f64),
        );
    }
    let _ = writeln!(out, "wall_ns,0,{},0,0", prof.wall_ns);
    let _ = writeln!(out, "threads,0,{},0,0", prof.threads);
    out
}

/// Renders the metrics registry as long-format CSV: one `metric,cycle,value`
/// row per gauge point, followed by histogram summary rows
/// (`hist.<name>.<stat>`) and non-empty bucket rows (`hist.<name>.le`,
/// where the `cycle` column holds the bucket's inclusive upper bound).
pub fn metrics_csv(obs: &ObsData) -> String {
    let mut out = String::from("metric,cycle,value\n");
    for (name, points) in obs.metrics.gauges() {
        for p in points {
            let _ = writeln!(out, "{name},{},{}", p.cycle, json_num(p.value));
        }
    }
    for (name, h) in obs.metrics.histograms() {
        let _ = writeln!(out, "hist.{name}.count,0,{}", h.count());
        let _ = writeln!(out, "hist.{name}.sum,0,{}", h.sum());
        let _ = writeln!(out, "hist.{name}.mean,0,{}", json_num(h.mean()));
        let _ = writeln!(out, "hist.{name}.min,0,{}", h.min());
        let _ = writeln!(out, "hist.{name}.max,0,{}", h.max());
        let _ = writeln!(out, "hist.{name}.p50,0,{}", h.percentile(0.50));
        let _ = writeln!(out, "hist.{name}.p99,0,{}", h.percentile(0.99));
        for (upper, count) in h.nonzero_buckets() {
            let _ = writeln!(out, "hist.{name}.le,{upper},{count}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::json::Json;
    use super::super::{MetricsRegistry, ObsData};
    use super::*;
    use crate::event::CoreId;
    use crate::time::Cycle;
    use crate::violation::ViolationKind;

    fn rec(cycle: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            cycle: Cycle::new(cycle),
            event,
        }
    }

    fn demo_obs() -> ObsData {
        let mut metrics = MetricsRegistry::new(100);
        metrics.gauge("slack_bound", Cycle::new(100), 8.0);
        metrics.gauge("slack_bound", Cycle::new(200), 4.0);
        metrics.histogram("manager_wait_ns").record(1500);
        ObsData {
            cores: 2,
            records: vec![
                rec(
                    0,
                    TraceEvent::PhaseBegin {
                        core: CoreId::new(0),
                        phase: Phase::Run,
                    },
                ),
                rec(
                    50,
                    TraceEvent::PhaseEnd {
                        core: CoreId::new(0),
                        phase: Phase::Run,
                    },
                ),
                rec(
                    60,
                    TraceEvent::Violation {
                        kind: ViolationKind::Bus,
                        core: CoreId::new(1),
                        ts: Cycle::new(55),
                        high_water: Cycle::new(60),
                    },
                ),
                rec(
                    100,
                    TraceEvent::BoundChange {
                        old: 8,
                        new: 4,
                        rate: 0.02,
                    },
                ),
                rec(
                    120,
                    TraceEvent::Checkpoint {
                        ordinal: 1,
                        overshoot: 30,
                    },
                ),
                rec(
                    150,
                    TraceEvent::Rollback {
                        ordinal: 1,
                        wasted_cycles: 80,
                    },
                ),
                rec(
                    250,
                    TraceEvent::ReplayEnd {
                        ordinal: 1,
                        replay_cycles: 100,
                    },
                ),
            ],
            dropped: 0,
            metrics,
        }
    }

    #[test]
    fn chrome_trace_parses_and_has_tracks() {
        let doc = chrome_trace_json(&demo_obs());
        let v = Json::parse(&doc).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 1 process + 3 thread names, 1 run span, 1 violation instant,
        // 2 counters + 1 instant for the bound change, 3 speculation spans.
        assert!(events.len() >= 11, "only {} events", events.len());
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"run"));
        assert!(names.contains(&"violation:Bus"));
        assert!(names.contains(&"slack_bound"));
        assert!(names.contains(&"checkpoint"));
        assert!(names.contains(&"rollback"));
        assert!(names.contains(&"cc_replay"));
    }

    #[test]
    fn speculation_spans_cover_the_regions_they_describe() {
        let doc = chrome_trace_json(&demo_obs());
        let v = Json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(Json::as_array).unwrap();
        let span = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .unwrap_or_else(|| panic!("missing {name} span"))
        };
        // The rollback at cycle 150 wasted 80 cycles: the span covers the
        // discarded region [70, 150).
        let rb = span("rollback");
        assert_eq!(rb.get("ts").and_then(Json::as_f64), Some(70.0));
        assert_eq!(rb.get("dur").and_then(Json::as_f64), Some(80.0));
        // Replay reached the boundary at 250 after re-executing 100 cycles:
        // the span covers [150, 250).
        let rp = span("cc_replay");
        assert_eq!(rp.get("ts").and_then(Json::as_f64), Some(150.0));
        assert_eq!(rp.get("dur").and_then(Json::as_f64), Some(100.0));
    }

    #[test]
    fn span_durations_are_correct() {
        let doc = chrome_trace_json(&demo_obs());
        let v = Json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(Json::as_array).unwrap();
        let run = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("run"))
            .unwrap();
        assert_eq!(run.get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(run.get("dur").and_then(Json::as_f64), Some(50.0));
        assert_eq!(run.get("tid").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn orphaned_phase_end_is_skipped() {
        let obs = ObsData {
            cores: 1,
            records: vec![rec(
                10,
                TraceEvent::PhaseEnd {
                    core: CoreId::new(0),
                    phase: Phase::Wait,
                },
            )],
            dropped: 5,
            metrics: MetricsRegistry::default(),
        };
        let doc = chrome_trace_json(&obs);
        let v = Json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) != Some("X")));
    }

    #[test]
    fn csv_has_gauge_series_and_histogram_summary() {
        let csv = metrics_csv(&demo_obs());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "metric,cycle,value");
        assert!(lines.contains(&"slack_bound,100,8"));
        assert!(lines.contains(&"slack_bound,200,4"));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("hist.manager_wait_ns.count,")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("hist.manager_wait_ns.le,")));
    }

    #[test]
    fn prof_table_and_csv_render_all_sites() {
        use super::super::prof::{ProfData, ProfSite, SiteStat};
        let prof = ProfData {
            sites: vec![
                SiteStat {
                    site: ProfSite::CoreTick,
                    count: 100,
                    self_ns: 3_000_000_000,
                    total_ns: 3_000_000_000,
                },
                SiteStat {
                    site: ProfSite::ManagerService,
                    count: 50,
                    self_ns: 1_000_000_000,
                    total_ns: 1_500_000_000,
                },
            ],
            wall_ns: 4_200_000_000,
            threads: 1,
        };
        let table = prof_table(&prof);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("site"));
        assert!(
            lines[1].starts_with("core-tick"),
            "rows sorted by self time: {table}"
        );
        assert!(lines[2].starts_with("manager-service"));
        assert!(table.contains("75.0%"), "core-tick holds 3/4 of self time");
        assert!(
            lines.last().unwrap().contains("coverage 95.2%"),
            "footer states coverage: {table}"
        );

        let csv = prof_csv(&prof);
        let rows: Vec<&str> = csv.lines().collect();
        assert_eq!(rows[0], "site,count,total_ns,self_ns,self_share");
        assert_eq!(rows[1], "core-tick,100,3000000000,3000000000,0.75");
        assert!(rows.contains(&"wall_ns,0,4200000000,0,0"));
        assert!(rows.contains(&"threads,0,1,0,0"));
    }

    #[test]
    fn chrome_trace_carries_prof_counter_track() {
        use super::super::prof::{ProfData, ProfSite, SiteStat};
        let prof = ProfData {
            sites: vec![SiteStat {
                site: ProfSite::CoreTick,
                count: 1,
                self_ns: 2_000_000,
                total_ns: 2_000_000,
            }],
            wall_ns: 10_000_000,
            threads: 1,
        };
        let doc = chrome_trace_json_with_prof(&demo_obs(), Some(&prof));
        let v = Json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Json::as_array).unwrap();
        let counter = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("prof.core-tick"))
            .expect("prof counter track present");
        assert_eq!(
            counter
                .get("args")
                .and_then(|a| a.get("self_ms"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn escaping_is_safe() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(1.5), "1.5");
    }
}
