//! Prints Table 1: the benchmark input sets.

fn main() {
    println!("{}", slacksim_bench::experiments::table1());
}
