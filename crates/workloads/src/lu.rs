//! Synthetic blocked LU decomposition (256×256 matrix, paper Table 1).
//!
//! SPLASH-2 LU factorises the matrix in steps: at each step every thread
//! reads the shared pivot block, then updates the blocks it owns
//! (owner-computes), with a barrier separating steps. Shared traffic is
//! dominated by *read-only* pivot sharing; updates are private. This gives
//! LU the lowest bus density and the lowest fraction of violating
//! checkpoint intervals in the paper (Table 3: 13–31 %).

use std::collections::VecDeque;

use slacksim_cmp::isa::{Instr, InstrStream, Op};
use slacksim_core::rng::Xoshiro256;

use crate::mix::{CodeWalker, FillerMix, Regions};
use crate::params::WorkloadParams;

/// Instructions spent reading the pivot block per step.
const PIVOT_LEN: u64 = 900;
/// Instructions spent updating owned blocks per step.
const UPDATE_LEN: u64 = 13_000;
/// Pivot block bytes (one 16×16 block of doubles = 2 KiB).
const PIVOT_BYTES: u64 = 2 * 1024;
/// Number of distinct pivot blocks cycled through (matrix diagonal).
const PIVOT_BLOCKS: u64 = 16;
/// Per-thread owned-blocks working set (slightly exceeds the L1).
const OWNED_BYTES: u64 = 12 * 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pivot,
    Update,
}

/// Per-thread LU instruction stream.
#[derive(Debug, Clone)]
pub struct LuStream {
    tid: usize,
    rng: Xoshiro256,
    code: CodeWalker,
    queue: VecDeque<Op>,
    phase: Phase,
    phase_left: i64,
    episode: u32,
    step: u64,
    pivot_cursor: u64,
    owned_cursor: u64,
}

impl LuStream {
    /// Creates the stream for one workload thread.
    pub fn new(params: &WorkloadParams) -> Self {
        LuStream {
            tid: params.thread_id,
            rng: Xoshiro256::new(params.thread_seed(0x1_0)),
            code: CodeWalker::new(Regions::code(2), 1024),
            queue: VecDeque::new(),
            phase: Phase::Pivot,
            phase_left: PIVOT_LEN as i64,
            episode: 0,
            step: 0,
            pivot_cursor: 0,
            owned_cursor: 0,
        }
    }

    fn pivot_base(&self) -> u64 {
        Regions::SHARED + (self.step % PIVOT_BLOCKS) * PIVOT_BYTES
    }

    fn refill(&mut self) {
        if self.phase_left <= 0 {
            match self.phase {
                Phase::Pivot => {
                    // Pivot read done: update owned blocks (no barrier
                    // between pivot and update — reads are already safe
                    // after the step barrier).
                    self.phase = Phase::Update;
                    self.phase_left = UPDATE_LEN as i64;
                    self.code.rebase(Regions::code(3), 4096);
                    // Fall through to an update chunk below.
                }
                Phase::Update => {
                    // Step finished: barrier, next pivot.
                    self.queue.push_back(Op::Barrier { id: self.episode });
                    self.episode += 1;
                    self.step += 1;
                    self.phase = Phase::Pivot;
                    self.phase_left = PIVOT_LEN as i64;
                    self.pivot_cursor = 0;
                    self.code.rebase(Regions::code(2), 1024);
                    self.phase_left -= 1;
                    return;
                }
            }
        }
        let chunk = match self.phase {
            Phase::Pivot => self.pivot_chunk(),
            Phase::Update => self.update_chunk(),
        };
        self.phase_left -= chunk as i64;
    }

    /// Read-share the pivot block: sequential loads, FP factorisation
    /// work, no stores.
    fn pivot_chunk(&mut self) -> u64 {
        let base = self.pivot_base();
        self.queue.push_back(Op::Load {
            addr: base + self.pivot_cursor,
        });
        self.pivot_cursor = (self.pivot_cursor + 8) % PIVOT_BYTES;
        let mut count = 1u64;
        for _ in 0..5 {
            self.queue.push_back(FillerMix::FP.draw(&mut self.rng));
            count += 1;
        }
        count
    }

    /// Update an owned block: private load-compute-store with a daxpy
    /// flavour.
    fn update_chunk(&mut self) -> u64 {
        let base = Regions::new(self.tid).private();
        let mut count = 0u64;
        for _ in 0..2 {
            self.queue.push_back(Op::Load {
                addr: base + self.owned_cursor,
            });
            self.owned_cursor = (self.owned_cursor + 8) % OWNED_BYTES;
            count += 1;
            for _ in 0..6 {
                self.queue.push_back(FillerMix::FP.draw(&mut self.rng));
                count += 1;
            }
        }
        self.queue.push_back(Op::Store {
            addr: base + self.owned_cursor,
        });
        count += 1;
        for _ in 0..5 {
            self.queue.push_back(FillerMix::FP.draw(&mut self.rng));
            count += 1;
        }
        count
    }
}

impl InstrStream for LuStream {
    fn next_instr(&mut self) -> Instr {
        if self.queue.is_empty() {
            self.refill();
        }
        let op = self.queue.pop_front().expect("refill fills the queue");
        let pc = self.code.pc();
        self.code.advance();
        Instr::new(op, pc)
    }

    fn clone_box(&self) -> Box<dyn InstrStream> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_testkit::{barrier_ids, determinism_check, op_census};

    fn stream(tid: usize) -> LuStream {
        LuStream::new(&WorkloadParams::new(tid, 8, 42))
    }

    #[test]
    fn deterministic_per_seed() {
        determinism_check(|| Box::new(stream(2)));
    }

    #[test]
    fn barriers_align_across_threads() {
        let a = barrier_ids(&mut stream(0), 60_000);
        let b = barrier_ids(&mut stream(7), 60_000);
        let shared = a.len().min(b.len());
        assert!(shared >= 3);
        assert_eq!(a[..shared], b[..shared]);
    }

    #[test]
    fn sync_is_sparse() {
        // LU's hallmark: long update phases, few barriers, no locks.
        let census = op_census(&mut stream(1), 60_000);
        assert!(census.barriers <= 6, "barriers: {census:?}");
        assert_eq!(census.locks, 0);
        assert!(census.loads > 5_000, "loads: {census:?}");
        assert!(census.stores > 2_000, "stores: {census:?}");
    }

    #[test]
    fn pivot_reads_are_shared_and_updates_private() {
        let mut s = stream(3);
        let mut shared_loads = 0u64;
        let mut shared_stores = 0u64;
        let priv_base = Regions::new(3).private();
        for _ in 0..60_000 {
            match s.next_instr().op {
                Op::Load { addr } if addr >= Regions::SHARED => shared_loads += 1,
                Op::Store { addr } => {
                    if addr >= Regions::SHARED {
                        shared_stores += 1;
                    } else {
                        assert!(
                            (priv_base..priv_base + 0x0100_0000).contains(&addr),
                            "stores stay in the owner's region"
                        );
                    }
                }
                _ => {}
            }
        }
        assert!(shared_loads > 500, "pivot loads: {shared_loads}");
        assert_eq!(shared_stores, 0, "LU never writes shared data");
    }

    #[test]
    fn pivot_block_advances_with_steps() {
        let mut s = stream(0);
        let mut bases = std::collections::BTreeSet::new();
        for _ in 0..200_000 {
            if let Op::Load { addr } = s.next_instr().op {
                if addr >= Regions::SHARED {
                    bases.insert((addr - Regions::SHARED) / PIVOT_BYTES);
                }
            }
        }
        assert!(bases.len() >= 4, "distinct pivot blocks: {}", bases.len());
    }
}
