//! Bench: checkpointing overhead vs interval length (the mechanism behind
//! Table 2's 5K-100K columns).
//!
//! A plain `main()` timing harness over `std::time::Instant` — no external
//! bench framework, so it runs in fully offline builds. Invoke with
//! `cargo bench --bench checkpoint_cost`.

use std::time::Instant;

use slacksim::scheme::Scheme;
use slacksim::{Benchmark, EngineKind, Simulation, SpeculationConfig};

const ITERS: u32 = 5;

fn run(interval: Option<u64>) {
    let mut sim = Simulation::new(Benchmark::Lu);
    sim.cores(8)
        .commit_target(40_000)
        .seed(1)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Sequential);
    if let Some(i) = interval {
        sim.speculation(SpeculationConfig::checkpoint_only(i));
    }
    let report = sim.run().expect("bench run");
    assert!(report.committed >= 40_000);
}

fn bench(label: &str, mut f: impl FnMut()) {
    f(); // warm-up
    let mut times = Vec::with_capacity(ITERS as usize);
    for _ in 0..ITERS {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let total: std::time::Duration = times.iter().sum();
    println!(
        "{label:<40} median {median:>12?}  mean {:>12?}  ({ITERS} iters)",
        total / ITERS
    );
}

fn main() {
    println!("checkpoint_interval (LU, 8 cores, 40k commits)");
    bench("none", || run(None));
    for interval in [1_000u64, 5_000, 20_000] {
        bench(&interval.to_string(), move || run(Some(interval)));
    }
}
