//! The trace recorder: typed events, bounded per-thread ring buffers, and a
//! shared collector.
//!
//! Every simulation thread (the sequential engine's single loop, each
//! threaded-engine core thread, the manager) owns a [`TraceHandle`] — a
//! private bounded ring buffer of [`TraceRecord`]s. Recording never takes a
//! lock: a handle checks one shared `AtomicBool` with a relaxed load and, if
//! tracing is enabled, pushes into its own ring. When the ring is full the
//! oldest record is dropped (and counted), so memory stays bounded no matter
//! how long the run is. On flush (or drop) the ring's contents move into the
//! [`Tracer`]'s collector, which the engine drains into the final
//! [`super::ObsData`].
//!
//! The disabled path — a tracer built with [`Tracer::disabled`] — costs
//! exactly one relaxed atomic load per [`TraceHandle::record`] call.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::CoreId;
use crate::time::Cycle;
use crate::violation::ViolationKind;

/// What a core is spending its time on; begin/end pairs become spans on the
/// core's timeline track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Simulating target cycles inside the current slack window.
    Run,
    /// Blocked at the window end (or on the manager's stop-sync).
    Wait,
    /// Re-executing cycles after a rollback.
    Replay,
}

impl Phase {
    /// Stable lower-case name used as the trace span name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Run => "run",
            Phase::Wait => "wait",
            Phase::Replay => "replay",
        }
    }
}

/// Which queue a [`TraceEvent::QueueDepth`] sample refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// A core's outgoing event queue (core thread → manager).
    OutQ(CoreId),
    /// A core's incoming event queue (manager → core thread).
    InQ(CoreId),
    /// The manager's global arrival-ordered queue.
    Global,
}

impl QueueKind {
    /// Stable label used as the counter-track name, e.g. `outq.core3`.
    pub fn label(&self) -> String {
        match self {
            QueueKind::OutQ(c) => format!("outq.core{}", c.index()),
            QueueKind::InQ(c) => format!("inq.core{}", c.index()),
            QueueKind::Global => "globalq".to_string(),
        }
    }
}

/// One typed observation. Every variant is `Copy`-cheap; the recorder adds
/// the timestamp separately (see [`TraceRecord`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Periodic sample of one core's local clock (drift = `cycle` − global).
    LocalTimeSample {
        /// Which core.
        core: CoreId,
        /// The core's local clock at the sample instant.
        cycle: Cycle,
    },
    /// A timestamp-monitor trip: an operation arrived out of order.
    Violation {
        /// Resource class (bus, map, …).
        kind: ViolationKind,
        /// The core whose operation violated.
        core: CoreId,
        /// Timestamp of the late operation.
        ts: Cycle,
        /// The monitor's high-water mark at detection time.
        high_water: Cycle,
    },
    /// The adaptive controller moved the slack bound.
    BoundChange {
        /// Bound before the adjustment, in cycles.
        old: u64,
        /// Bound after the adjustment, in cycles.
        new: u64,
        /// The violation rate that drove the adjustment.
        rate: f64,
    },
    /// A checkpoint was taken; the span covers the stop-sync convergence
    /// window from the scheduled boundary to the agreed stop cycle.
    Checkpoint {
        /// 1-based checkpoint ordinal (how many checkpoints so far).
        ordinal: u64,
        /// Convergence overshoot past the scheduled boundary, in simulated
        /// cycles (how far past the interval end the cores had run when the
        /// stop-sync converged).
        overshoot: u64,
    },
    /// A rollback to the previous checkpoint was triggered.
    Rollback {
        /// 1-based rollback ordinal (how many rollbacks so far).
        ordinal: u64,
        /// Simulated cycles of speculative progress past the checkpoint
        /// that the rollback threw away.
        wasted_cycles: u64,
    },
    /// The conservative replay that follows a rollback reached the next
    /// interval boundary; records the measured re-execution cost.
    ReplayEnd {
        /// Ordinal of the rollback this replay recovered from.
        ordinal: u64,
        /// Simulated cycles actually re-executed under the conservative
        /// scheme before speculation resumed.
        replay_cycles: u64,
    },
    /// Host-time nanoseconds the manager spent blocked waiting on cores.
    ManagerWait {
        /// Blocked wall-clock time in nanoseconds.
        ns: u64,
    },
    /// Instantaneous depth of one event queue.
    QueueDepth {
        /// Which queue.
        q: QueueKind,
        /// Elements queued at the sample instant.
        len: u64,
    },
    /// A core entered `phase`; paired with the next matching
    /// [`TraceEvent::PhaseEnd`] to form a span.
    PhaseBegin {
        /// Which core (the manager uses the pseudo-core `n_cores`).
        core: CoreId,
        /// The phase being entered.
        phase: Phase,
    },
    /// A core left `phase`.
    PhaseEnd {
        /// Which core.
        core: CoreId,
        /// The phase being left.
        phase: Phase,
    },
    /// A committed checkpoint was persisted to disk (`--save-state`).
    StatePersist {
        /// 1-based checkpoint ordinal of the persisted snapshot.
        ordinal: u64,
        /// Size of the snapshot container in bytes (0 when the write
        /// failed after its bounded retries and the run carried on).
        bytes: u64,
    },
    /// The run was restored from an on-disk snapshot (`--resume`).
    StateRestore {
        /// Global cycle the restored snapshot was taken at.
        global: Cycle,
    },
}

/// A timestamped trace event. The timestamp is in *simulated* cycles (the
/// exporters map 1 cycle to 1 µs of trace time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulated time the event was recorded at.
    pub cycle: Cycle,
    /// The observation itself.
    pub event: TraceEvent,
}

#[derive(Debug)]
struct TracerShared {
    enabled: AtomicBool,
    capacity: usize,
    dropped: AtomicU64,
    sink: Mutex<Vec<TraceRecord>>,
}

/// The shared half of the trace recorder: owns the enable flag and collects
/// flushed rings. Cloning is cheap (`Arc`); every clone observes the same
/// enable flag and feeds the same collector.
#[derive(Debug, Clone)]
pub struct Tracer {
    shared: Arc<TracerShared>,
}

impl Tracer {
    /// Creates an enabled tracer whose handles hold at most
    /// `capacity_per_handle` records each (oldest dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_per_handle` is 0.
    pub fn new(capacity_per_handle: usize) -> Self {
        assert!(capacity_per_handle > 0, "trace ring capacity must be > 0");
        Tracer {
            shared: Arc::new(TracerShared {
                enabled: AtomicBool::new(true),
                capacity: capacity_per_handle,
                dropped: AtomicU64::new(0),
                sink: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Creates a disabled tracer: every [`TraceHandle::record`] call returns
    /// after a single relaxed atomic load and records nothing.
    pub fn disabled() -> Self {
        let t = Tracer::new(1);
        t.shared.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Whether recording is currently enabled (relaxed load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off for every handle of this tracer.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.store(on, Ordering::Relaxed);
    }

    /// Creates a new per-thread recording handle.
    pub fn handle(&self) -> TraceHandle {
        TraceHandle {
            shared: Arc::clone(&self.shared),
            ring: VecDeque::new(),
        }
    }

    /// Records dropped to ring overflow so far, across every handle
    /// (relaxed load — live mid-run, the drop counter is bumped at
    /// overflow time, not at flush time). Surfaced as the
    /// `trace_dropped` gauge so overflow is diagnosable while the run
    /// is still going.
    pub fn dropped_so_far(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Takes every record flushed so far plus the total drop count.
    ///
    /// Records from different handles are concatenated in flush order; the
    /// exporters sort by cycle, so drain order does not matter.
    pub fn drain(&self) -> (Vec<TraceRecord>, u64) {
        let records = std::mem::take(&mut *self.shared.sink.lock().expect("trace sink poisoned"));
        (records, self.shared.dropped.load(Ordering::Relaxed))
    }
}

/// A per-thread recording handle: a private bounded ring buffer.
///
/// Dropping the handle flushes its ring into the owning [`Tracer`].
///
/// # Examples
///
/// ```
/// use slacksim_core::event::CoreId;
/// use slacksim_core::obs::{Phase, TraceEvent, Tracer};
/// use slacksim_core::time::Cycle;
///
/// let tracer = Tracer::new(1024);
/// let mut h = tracer.handle();
/// h.record(
///     Cycle::new(5),
///     TraceEvent::PhaseBegin { core: CoreId::new(0), phase: Phase::Run },
/// );
/// drop(h); // flushes
/// let (records, dropped) = tracer.drain();
/// assert_eq!(records.len(), 1);
/// assert_eq!(dropped, 0);
/// ```
#[derive(Debug)]
pub struct TraceHandle {
    shared: Arc<TracerShared>,
    ring: VecDeque<TraceRecord>,
}

impl TraceHandle {
    /// Records `event` at simulated time `cycle`.
    ///
    /// When the tracer is disabled this is one relaxed atomic load and an
    /// immediate return — cheap enough to leave in release-mode hot loops.
    #[inline]
    pub fn record(&mut self, cycle: Cycle, event: TraceEvent) {
        if !self.shared.enabled.load(Ordering::Relaxed) {
            return;
        }
        if self.ring.len() >= self.shared.capacity {
            self.ring.pop_front();
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.ring.push_back(TraceRecord { cycle, event });
    }

    /// Number of records currently buffered in this handle's ring.
    pub fn buffered(&self) -> usize {
        self.ring.len()
    }

    /// Moves every buffered record into the tracer's collector.
    pub fn flush(&mut self) {
        if self.ring.is_empty() {
            return;
        }
        let mut sink = self.shared.sink.lock().expect("trace sink poisoned");
        sink.extend(self.ring.drain(..));
    }
}

impl Drop for TraceHandle {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(core: u16, t: u64) -> TraceEvent {
        TraceEvent::LocalTimeSample {
            core: CoreId::new(core),
            cycle: Cycle::new(t),
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let mut h = tracer.handle();
        for t in 0..100 {
            h.record(Cycle::new(t), sample(0, t));
        }
        assert_eq!(h.buffered(), 0);
        drop(h);
        let (records, dropped) = tracer.drain();
        assert!(records.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tracer = Tracer::new(4);
        let mut h = tracer.handle();
        for t in 0..10u64 {
            h.record(Cycle::new(t), sample(0, t));
        }
        assert_eq!(h.buffered(), 4);
        h.flush();
        let (records, dropped) = tracer.drain();
        assert_eq!(dropped, 6);
        let kept: Vec<u64> = records.iter().map(|r| r.cycle.as_u64()).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]); // most recent survive
    }

    #[test]
    fn handles_flush_into_shared_collector() {
        let tracer = Tracer::new(64);
        let mut a = tracer.handle();
        let mut b = tracer.handle();
        a.record(Cycle::new(1), sample(0, 1));
        b.record(Cycle::new(2), sample(1, 2));
        drop(a);
        drop(b);
        let (records, _) = tracer.drain();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn toggling_enable_gates_recording() {
        let tracer = Tracer::new(8);
        let mut h = tracer.handle();
        h.record(Cycle::new(1), sample(0, 1));
        tracer.set_enabled(false);
        h.record(Cycle::new(2), sample(0, 2));
        tracer.set_enabled(true);
        h.record(Cycle::new(3), sample(0, 3));
        h.flush();
        let (records, _) = tracer.drain();
        let cycles: Vec<u64> = records.iter().map(|r| r.cycle.as_u64()).collect();
        assert_eq!(cycles, vec![1, 3]);
    }

    #[test]
    fn handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<TraceHandle>();
        assert_send::<Tracer>();
    }

    #[test]
    fn cross_thread_flush() {
        let tracer = Tracer::new(1024);
        let handles: Vec<_> = (0..4u16)
            .map(|c| {
                let mut h = tracer.handle();
                std::thread::spawn(move || {
                    for t in 0..100u64 {
                        h.record(Cycle::new(t), sample(c, t));
                    }
                    // handle drop flushes
                })
            })
            .collect();
        for j in handles {
            j.join().expect("recorder thread");
        }
        let (records, dropped) = tracer.drain();
        assert_eq!(records.len(), 400);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn queue_labels_are_stable() {
        assert_eq!(QueueKind::OutQ(CoreId::new(3)).label(), "outq.core3");
        assert_eq!(QueueKind::InQ(CoreId::new(0)).label(), "inq.core0");
        assert_eq!(QueueKind::Global.label(), "globalq");
    }
}
