//! Crash-safe resume integration tests for the `slacksim` binary.
//!
//! The central proof is kill-and-resume: a run persisting checkpoints
//! with `--save-state` is SIGKILLed mid-run, resumed from the snapshot
//! it left behind, and — under cycle-by-cycle, where the outcome is
//! engine- and schedule-independent — must finish with a report
//! bit-identical to the same run never having been interrupted. The
//! remaining tests pin the refusal paths: mismatched configuration,
//! truncated files and corrupted bytes all exit with code 2 and a clean
//! `error:` line, never a panic or a silently diverging run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn slacksim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_slacksim"))
        .args(args)
        .output()
        .expect("spawn slacksim binary")
}

/// Fresh scratch directory for one test's checkpoint files.
fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "slacksim-persist-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The report lines a resume must reproduce exactly: simulated outcome
/// only, not wall-clock lines.
fn outcome_lines(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| {
            l.starts_with("execution time")
                || l.starts_with("committed")
                || l.starts_with("CPI")
                || l.starts_with("violations")
        })
        .map(str::to_owned)
        .collect()
}

/// Newest `cp-*` snapshot in `dir`, if any.
fn newest_checkpoint(dir: &Path) -> Option<PathBuf> {
    std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("cp-"))
        .max_by_key(std::fs::DirEntry::file_name)
        .map(|e| e.path())
}

/// Common flags for one kill-and-resume configuration. Cycle-by-cycle
/// keeps both engines bit-identical and schedule-independent, so the
/// resumed report is comparable across a SIGKILL.
fn config_flags(engine: &str) -> Vec<String> {
    [
        "--scheme",
        "cc",
        "--cores",
        "2",
        "--commit",
        "200000",
        "--checkpoint",
        "700",
        "--engine",
        engine,
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect()
}

fn kill_and_resume(engine: &str) {
    kill_and_resume_with(engine, &[], engine);
}

/// [`kill_and_resume`] with extra flags appended to every run (baseline,
/// persisting and resumed alike).
fn kill_and_resume_with(engine: &str, extra: &[&str], tag: &str) {
    let dir = scratch_dir(tag);
    let mut flags = config_flags(engine);
    flags.extend(extra.iter().map(|s| (*s).to_owned()));

    let baseline = slacksim(&flags.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(baseline.status.success(), "baseline run exits 0");
    let want = outcome_lines(&baseline);
    assert!(!want.is_empty(), "baseline printed a report");

    // Start the persisting run and SIGKILL it as soon as the first
    // snapshot lands. Atomic rename means an existing cp-* file is
    // always complete, however brutal the kill.
    let mut child = Command::new(env!("CARGO_BIN_EXE_slacksim"))
        .args(&flags)
        .args(["--save-state", dir.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn persisting run");
    let deadline = Instant::now() + Duration::from_secs(60);
    while newest_checkpoint(&dir).is_none() {
        assert!(
            Instant::now() < deadline,
            "no snapshot appeared within the deadline"
        );
        if child.try_wait().expect("poll child").is_some() {
            break; // finished before we could kill it — still resumable
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();

    let snapshot = newest_checkpoint(&dir).expect("a snapshot survived the kill");
    let mut resume_flags: Vec<&str> = flags.iter().map(String::as_str).collect();
    let snapshot_str = snapshot.to_str().unwrap();
    resume_flags.extend(["--resume", snapshot_str]);
    let resumed = slacksim(&resume_flags);
    assert!(
        resumed.status.success(),
        "resumed run exits 0: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        outcome_lines(&resumed),
        want,
        "{engine}: resumed report must be bit-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_matches_uninterrupted_run_sequential() {
    kill_and_resume("seq");
}

#[test]
fn kill_and_resume_matches_uninterrupted_run_threaded() {
    kill_and_resume("threaded");
}

/// Kill-and-resume through the sharded manager tree: snapshots written
/// by a `--shards 2` run carry the shard section (container format
/// version 3), survive a SIGKILL, and the resumed sharded run finishes
/// bit-identical to the same run never having been interrupted.
#[test]
fn kill_and_resume_matches_uninterrupted_run_threaded_sharded() {
    kill_and_resume_with("threaded", &["--shards", "2"], "threaded-sh2");
}

/// Writes one snapshot quickly and returns its path (plus the scratch
/// dir for cleanup).
fn persisted_snapshot(tag: &str) -> (PathBuf, PathBuf) {
    let dir = scratch_dir(tag);
    let out = slacksim(&[
        "--scheme",
        "cc",
        "--cores",
        "2",
        "--commit",
        "5000",
        "--checkpoint",
        "500",
        "--save-state",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "persisting run exits 0");
    let snap = newest_checkpoint(&dir).expect("snapshot persisted");
    (dir, snap)
}

fn assert_resume_refused(out: &Output, expect: &str) {
    assert_eq!(
        out.status.code(),
        Some(2),
        "refused resume exits with code 2, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("error: "),
        "stderr carries an error line, got {err:?}"
    );
    assert!(
        err.contains(expect),
        "stderr mentions {expect:?}, got {err:?}"
    );
}

#[test]
fn resume_with_mismatched_config_is_refused_with_exit_2() {
    let (dir, snap) = persisted_snapshot("mismatch");
    let snap = snap.to_str().unwrap().to_owned();
    // Wrong core count, wrong seed, wrong scheme, wrong checkpoint
    // interval: every divergence from the persisted fingerprint refuses.
    for (scheme, cores, seed, interval) in [
        ("cc", "4", "1", "500"),
        ("cc", "2", "9", "500"),
        ("bounded", "2", "1", "500"),
        ("cc", "2", "1", "900"),
    ] {
        let out = slacksim(&[
            "--scheme",
            scheme,
            "--cores",
            cores,
            "--seed",
            seed,
            "--commit",
            "5000",
            "--checkpoint",
            interval,
            "--resume",
            &snap,
        ]);
        assert_resume_refused(&out, "config mismatch");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_truncated_or_corrupted_snapshot_is_refused_cleanly() {
    let (dir, snap) = persisted_snapshot("corrupt");
    let bytes = std::fs::read(&snap).expect("read snapshot");

    let truncated = dir.join("truncated");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();

    let flipped = dir.join("flipped");
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xff; // payload corruption -> checksum mismatch
    std::fs::write(&flipped, &bad).unwrap();

    let garbage = dir.join("garbage");
    std::fs::write(&garbage, b"not a snapshot at all").unwrap();

    for (path, expect) in [
        (&truncated, "truncated"),
        (&flipped, "checksum"),
        (&garbage, "error: "),
    ] {
        let out = slacksim(&[
            "--scheme",
            "cc",
            "--cores",
            "2",
            "--commit",
            "5000",
            "--checkpoint",
            "500",
            "--resume",
            path.to_str().unwrap(),
        ]);
        assert_resume_refused(&out, expect);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn save_state_prunes_older_checkpoints() {
    let (dir, snap) = persisted_snapshot("prune");
    let survivors: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("cp-"))
        .collect();
    assert_eq!(
        survivors.len(),
        1,
        "only the newest checkpoint file is kept"
    );
    assert_eq!(survivors[0].path(), snap);
    let _ = std::fs::remove_dir_all(&dir);
}
