//! Bench: ablation of the adaptive controller's step policy (DESIGN.md
//! experiment E9) — wall cost of each policy at the same target rate.
//!
//! A plain `main()` timing harness over `std::time::Instant` — no external
//! bench framework, so it runs in fully offline builds. Invoke with
//! `cargo bench --bench adaptive_ablation`.

use std::time::Instant;

use slacksim::scheme::{AdaptiveConfig, Scheme, StepPolicy};
use slacksim::{Benchmark, EngineKind, Simulation};

const ITERS: u32 = 5;

fn run(step: StepPolicy) {
    let cfg = AdaptiveConfig {
        target_rate: 1e-3,
        band: 0.05,
        step,
        ..AdaptiveConfig::default()
    };
    let report = Simulation::new(Benchmark::Barnes)
        .cores(8)
        .commit_target(40_000)
        .seed(1)
        .scheme(Scheme::Adaptive(cfg))
        .engine(EngineKind::Sequential)
        .run()
        .expect("bench run");
    assert!(report.committed >= 40_000);
}

fn bench(label: &str, mut f: impl FnMut()) {
    f(); // warm-up
    let mut times = Vec::with_capacity(ITERS as usize);
    for _ in 0..ITERS {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let total: std::time::Duration = times.iter().sum();
    println!(
        "{label:<40} median {median:>12?}  mean {:>12?}  ({ITERS} iters)",
        total / ITERS
    );
}

fn main() {
    println!("adaptive_step_policy (Barnes, 8 cores, 40k commits)");
    for (name, step) in [
        ("additive", StepPolicy::Additive { up: 1.0, down: 1.0 }),
        ("aimd", StepPolicy::Aimd { up: 1.0 }),
        ("multiplicative", StepPolicy::Multiplicative),
        (
            "proportional",
            StepPolicy::Proportional {
                step: 0.5,
                max_throttle: 256.0,
            },
        ),
    ] {
        bench(name, move || run(step));
    }
}
