//! # slacksim-workloads — synthetic SPLASH-2-like workload generators
//!
//! The paper drives its 8-core target with four SPLASH-2 programs
//! (Table 1). Running the original PISA binaries would require the whole
//! SimpleScalar functional layer; slack-simulation behaviour, however,
//! depends only on the *timing signature* of each program's shared-memory
//! and synchronisation traffic. This crate provides deterministic
//! per-thread instruction-stream generators reproducing those signatures
//! (see `DESIGN.md` §4 for the substitution argument):
//!
//! * [`Benchmark::Barnes`] — irregular shared octree walking + per-cell
//!   locks (highest violation density);
//! * [`Benchmark::Fft`] — streaming compute / all-to-all transpose phases
//!   between barriers;
//! * [`Benchmark::Lu`] — read-shared pivot blocks + private owner-computes
//!   updates (lowest violation density);
//! * [`Benchmark::WaterNsquared`] — O(n²) FP-heavy pair interactions with
//!   per-molecule locks.
//!
//! All streams are infinite and deterministic in `(benchmark, thread,
//! n_threads, seed)`; threads of one run emit identical barrier-id
//! sequences so the simulated synchronisation device always converges.
//!
//! ## Example
//!
//! ```
//! use slacksim_cmp::isa::InstrStream;
//! use slacksim_workloads::{Benchmark, WorkloadParams};
//!
//! let mut stream = Benchmark::Fft.stream(&WorkloadParams::new(0, 8, 42));
//! let first = stream.next_instr();
//! let mut again = Benchmark::Fft.stream(&WorkloadParams::new(0, 8, 42));
//! assert_eq!(first, again.next_instr()); // deterministic
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod barnes;
pub mod fft;
pub mod lu;
pub mod mix;
pub mod params;
pub mod stream_testkit;
pub mod synthetic;
pub mod water;

pub use barnes::BarnesStream;
pub use fft::FftStream;
pub use lu::LuStream;
pub use params::{Benchmark, WorkloadParams};
pub use water::WaterStream;
