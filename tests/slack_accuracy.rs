//! Accuracy of slack simulation against the cycle-by-cycle reference:
//! the paper's headline observation is that even unbounded slack keeps
//! the execution-time error in single digits (percent), and that accuracy
//! degrades monotonically-ish as the slack bound grows.

use slacksim::scheme::Scheme;
use slacksim::{percent_error, Benchmark, EngineKind, Simulation, ViolationKind};

const COMMIT: u64 = 100_000;

fn run(benchmark: Benchmark, scheme: Scheme, seed: u64) -> slacksim::SimReport {
    Simulation::new(benchmark)
        .commit_target(COMMIT)
        .seed(seed)
        .scheme(scheme)
        .engine(EngineKind::Sequential)
        .run()
        .expect("run succeeds")
}

#[test]
fn unbounded_slack_error_stays_moderate() {
    for benchmark in Benchmark::ALL {
        let cc = run(benchmark, Scheme::CycleByCycle, 1);
        let su = run(benchmark, Scheme::UnboundedSlack, 1);
        let err = percent_error(su.global_cycles as f64, cc.global_cycles as f64).abs();
        assert!(
            err < 15.0,
            "{benchmark}: unbounded-slack execution-time error {err:.2}% too large"
        );
    }
}

#[test]
fn small_bounds_are_highly_accurate() {
    for benchmark in Benchmark::ALL {
        let cc = run(benchmark, Scheme::CycleByCycle, 1);
        let s4 = run(benchmark, Scheme::BoundedSlack { bound: 4 }, 1);
        let err = percent_error(s4.global_cycles as f64, cc.global_cycles as f64).abs();
        assert!(
            err < 5.0,
            "{benchmark}: bound-4 execution-time error {err:.2}% too large"
        );
    }
}

#[test]
fn violations_grow_with_the_bound_and_plateau() {
    for benchmark in [Benchmark::Fft, Benchmark::Barnes] {
        let rates: Vec<f64> = [1u64, 4, 16, 64, 200]
            .into_iter()
            .map(|bound| {
                let r = run(benchmark, Scheme::BoundedSlack { bound }, 1);
                r.violations.total_rate(r.global_cycles)
            })
            .collect();
        assert_eq!(rates[0], 0.0, "{benchmark}: bound 1 is violation-free");
        assert!(
            rates.windows(2).all(|w| w[1] >= w[0] * 0.7),
            "{benchmark}: rates must be non-decreasing up to noise: {rates:?}"
        );
        assert!(rates[4] > 0.0);
        // Plateau: the last doubling gains much less than the first.
        let early_gain = rates[2] / rates[1].max(1e-12);
        let late_gain = rates[4] / rates[3].max(1e-12);
        assert!(
            late_gain < early_gain,
            "{benchmark}: growth must taper: {rates:?}"
        );
    }
}

#[test]
fn bus_violations_dominate_map_violations() {
    // Paper Figure 3: bus violations exceed map violations by at least an
    // order of magnitude.
    for benchmark in Benchmark::ALL {
        let r = run(benchmark, Scheme::BoundedSlack { bound: 20 }, 1);
        let bus = r.violations.count(ViolationKind::Bus);
        let map = r.violations.count(ViolationKind::Map);
        assert!(bus > 0, "{benchmark}: expected bus violations at bound 20");
        assert!(
            bus >= 5 * map,
            "{benchmark}: bus ({bus}) must dominate map ({map})"
        );
    }
}

#[test]
fn cpi_error_is_bounded_too() {
    // Accuracy is defined on any metric of interest; check CPI as well.
    let cc = run(Benchmark::Lu, Scheme::CycleByCycle, 1);
    let su = run(Benchmark::Lu, Scheme::UnboundedSlack, 1);
    let err = percent_error(su.cpi(), cc.cpi()).abs();
    assert!(err < 15.0, "CPI error {err:.2}%");
}

#[test]
fn adaptive_tracks_reachable_targets() {
    use slacksim::scheme::AdaptiveConfig;
    // At a target above the controller's granularity floor, the measured
    // rate must land within a factor of ~2.5.
    let target = 0.01; // 1% per cycle
    let r = run(
        Benchmark::Fft,
        Scheme::Adaptive(AdaptiveConfig {
            target_rate: target,
            band: 0.05,
            ..AdaptiveConfig::default()
        }),
        1,
    );
    let measured = r.violation_rate();
    assert!(
        measured > target / 2.5 && measured < target * 2.5,
        "measured {measured:.4} vs target {target:.4}"
    );
}

#[test]
fn workload_signatures_differ() {
    // The four benchmarks must exercise the target differently (they are
    // not reskins of one generator): distinct synchronisation and sharing
    // signatures.
    let reports: Vec<(Benchmark, slacksim::SimReport)> = Benchmark::ALL
        .iter()
        .map(|&b| (b, run(b, Scheme::CycleByCycle, 1)))
        .collect();
    let get = |b: Benchmark, key: &str| -> f64 {
        let r = &reports.iter().find(|(x, _)| *x == b).unwrap().1;
        r.uncore.get(key) as f64 / r.committed as f64
    };
    // Locks: Barnes and Water use them, FFT and LU do not.
    assert!(get(Benchmark::Barnes, "lock_grants") > 0.0);
    assert!(get(Benchmark::WaterNsquared, "lock_grants") > 0.0);
    assert_eq!(get(Benchmark::Fft, "lock_grants"), 0.0);
    assert_eq!(get(Benchmark::Lu, "lock_grants"), 0.0);
    // Barrier frequency: FFT and Water phase often; Barnes rarely.
    assert!(
        get(Benchmark::Fft, "barriers_completed")
            > 3.0 * get(Benchmark::Barnes, "barriers_completed"),
        "FFT barriers per instruction must far exceed Barnes'"
    );
    // Sharing: FFT's transpose moves dirty data between caches far more
    // (per instruction) than LU's read-only pivot sharing.
    assert!(
        get(Benchmark::Fft, "cache_to_cache_transfers")
            > 2.0 * get(Benchmark::Lu, "cache_to_cache_transfers"),
        "FFT c2c: {} vs LU c2c: {}",
        get(Benchmark::Fft, "cache_to_cache_transfers"),
        get(Benchmark::Lu, "cache_to_cache_transfers")
    );
    // Bus densities still differ measurably (loose bound).
    let mut density: Vec<f64> = reports
        .iter()
        .map(|(_, r)| r.uncore.get("bus_transactions") as f64 / r.global_cycles as f64)
        .collect();
    density.sort_by(|a, b| a.total_cmp(b));
    assert!(
        density[3] / density[0].max(1e-9) > 1.25,
        "density spread: {density:?}"
    );
}

#[test]
fn clock_spread_respects_the_slack_bound() {
    // The defining invariant of bounded slack: local clocks never drift
    // apart by more than the bound.
    for bound in [1u64, 4, 32] {
        let r = run(Benchmark::Fft, Scheme::BoundedSlack { bound }, 3);
        let spread = r.kernel.get("max_clock_spread");
        assert!(
            spread <= bound,
            "bound {bound}: observed spread {spread} exceeds the bound"
        );
    }
    // Cycle-by-cycle is lockstep: spread at most one cycle.
    let cc = run(Benchmark::Fft, Scheme::CycleByCycle, 3);
    assert!(cc.kernel.get("max_clock_spread") <= 1);
}

#[test]
fn p2p_runs_complete_with_bounded_error() {
    let cc = run(Benchmark::Barnes, Scheme::CycleByCycle, 1);
    let p2p = run(
        Benchmark::Barnes,
        Scheme::LaxP2p {
            lead: 8,
            period: 500,
            seed: 1,
        },
        1,
    );
    assert!(p2p.committed >= COMMIT);
    let err = percent_error(p2p.global_cycles as f64, cc.global_cycles as f64).abs();
    assert!(err < 10.0, "P2P execution-time error {err:.2}%");
    // Peer pacing is looser than a global bound of the same lead: chains
    // of peers allow a spread beyond `lead`, but far below unbounded.
    let spread = p2p.kernel.get("max_clock_spread");
    assert!(spread <= 8 * 8, "spread {spread} too loose for lead 8");
}
