//! Integration tests for the `slacksim` binary's usage surface: `--help`
//! must enumerate every accepted `--scheme`/`--engine`/`--benchmark`
//! value, and invalid flag values must fail with exit code 2 and an error
//! message that enumerates the accepted values — never silently fall back
//! to a default configuration.

use std::process::{Command, Output};

fn slacksim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_slacksim"))
        .args(args)
        .output()
        .expect("spawn slacksim binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Asserts a usage failure: exit code 2, an `error:` line mentioning every
/// expected token, and the pointer at `--help`.
fn assert_usage_error(out: &Output, expect: &[&str]) {
    assert_eq!(out.status.code(), Some(2), "usage errors exit with code 2");
    let err = stderr(out);
    assert!(
        err.starts_with("error: "),
        "stderr starts with error:, got {err:?}"
    );
    for token in expect {
        assert!(
            err.contains(token),
            "stderr must mention {token:?}, got {err:?}"
        );
    }
    assert!(
        err.contains("slacksim --help"),
        "stderr points at --help, got {err:?}"
    );
}

#[test]
fn help_enumerates_scheme_engine_and_benchmark_values() {
    for flag in ["--help", "-h"] {
        let out = slacksim(&[flag]);
        assert!(out.status.success(), "{flag} exits 0");
        let text = stdout(&out);
        assert!(
            text.contains("cc|bounded|unbounded|quantum|adaptive|p2p"),
            "help enumerates --scheme values"
        );
        assert!(
            text.contains("seq|threaded|batched"),
            "help enumerates --engine values"
        );
        assert!(
            text.contains("barnes|fft|lu|water"),
            "help enumerates --benchmark values"
        );
        assert!(
            text.contains("all|map|none"),
            "help enumerates --rollback values"
        );
    }
}

#[test]
fn unknown_scheme_enumerates_accepted_values() {
    let out = slacksim(&["--scheme", "warp"]);
    assert_usage_error(&out, &["warp", "cc|bounded|unbounded|quantum|adaptive|p2p"]);
}

#[test]
fn unknown_engine_enumerates_accepted_values() {
    let out = slacksim(&["--engine", "turbo"]);
    assert_usage_error(&out, &["turbo", "seq|threaded|batched"]);
}

#[test]
fn batched_engine_rejects_non_barrier_schemes() {
    // Explicit cycle-by-cycle, the default scheme (absent quantum), and a
    // greedy scheme must all be turned away with the same enumerated
    // message: the batched loop only exists at quantum boundaries.
    let out = slacksim(&["--engine", "batched", "--scheme", "cc"]);
    assert_usage_error(&out, &["--engine batched requires --scheme quantum", "cc"]);
    let out = slacksim(&["--engine", "batched"]);
    assert_usage_error(&out, &["--engine batched requires --scheme quantum"]);
    let out = slacksim(&["--engine", "batched", "--scheme", "bounded", "--bound", "8"]);
    assert_usage_error(
        &out,
        &["--engine batched requires --scheme quantum", "bounded"],
    );
}

#[test]
fn batched_engine_rejects_a_zero_quantum() {
    let out = slacksim(&[
        "--engine",
        "batched",
        "--scheme",
        "quantum",
        "--quantum",
        "0",
    ]);
    assert_usage_error(&out, &["--quantum"]);
}

#[test]
fn batched_quantum_run_succeeds_and_matches_sequential() {
    let batched = slacksim(&[
        "--engine",
        "batched",
        "--scheme",
        "quantum",
        "--quantum",
        "50",
        "--benchmark",
        "fft",
        "--cores",
        "4",
        "--commit",
        "20000",
    ]);
    assert!(batched.status.success(), "batched run exits 0");
    let sequential = slacksim(&[
        "--engine",
        "seq",
        "--scheme",
        "quantum",
        "--quantum",
        "50",
        "--benchmark",
        "fft",
        "--cores",
        "4",
        "--commit",
        "20000",
    ]);
    assert!(sequential.status.success(), "sequential run exits 0");
    let pick = |out: &Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| {
                l.starts_with("execution time")
                    || l.starts_with("committed")
                    || l.starts_with("violations")
            })
            .map(str::to_string)
            .collect()
    };
    let (b, s) = (pick(&batched), pick(&sequential));
    assert_eq!(b.len(), 3, "report lines present: {b:?}");
    assert_eq!(b, s, "batched and sequential reports diverge");
}

#[test]
fn out_of_range_cores_fail_with_exit_2_not_a_panic() {
    // Regression: these used to panic inside config construction and die
    // with a raw backtrace instead of the enumerated usage contract.
    let out = slacksim(&["--cores", "32"]);
    assert_usage_error(
        &out,
        &[
            "--cores must be between 1 and 16 for the bus uncore (got 32)",
            "--uncore directory",
        ],
    );
    let out = slacksim(&["--cores", "0"]);
    assert_usage_error(&out, &["--cores must be between 1 and 16", "(got 0)"]);
    // The directory uncore has its own (much higher) ceiling.
    let out = slacksim(&["--uncore", "directory", "--cores", "2048"]);
    assert_usage_error(
        &out,
        &["--cores must be between 1 and 1024 for the directory uncore (got 2048)"],
    );
}

#[test]
fn shards_outside_the_threaded_engine_are_rejected() {
    // Default engine is sequential: a bare --shards must refuse rather
    // than silently run unsharded.
    let out = slacksim(&["--shards", "4"]);
    assert_usage_error(&out, &["--shards 4 requires --engine threaded"]);
    let out = slacksim(&[
        "--engine", "batched", "--scheme", "quantum", "--shards", "2",
    ]);
    assert_usage_error(&out, &["--shards 2 requires --engine threaded"]);
    let out = slacksim(&["--engine", "threaded", "--shards", "0"]);
    assert_usage_error(&out, &["--shards must be at least 1 (got 0)"]);
}

#[test]
fn sharded_threaded_run_succeeds_and_help_documents_shards() {
    let out = slacksim(&[
        "--engine", "threaded", "--shards", "2", "--cores", "4", "--commit", "2000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(!stdout(&out).is_empty(), "report printed to stdout");
    let help = slacksim(&["--help"]);
    assert!(
        stdout(&help).contains("--shards N"),
        "help documents --shards"
    );
}

#[test]
fn unknown_uncore_enumerates_accepted_values() {
    let out = slacksim(&["--uncore", "ring"]);
    assert_usage_error(&out, &["ring", "bus|directory"]);
}

#[test]
fn help_enumerates_uncore_values() {
    let out = slacksim(&["--help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(
        text.contains("bus|directory"),
        "help enumerates --uncore values"
    );
    assert!(
        text.contains("--uncore directory --cores 64"),
        "help shows a directory-scale example"
    );
}

#[test]
fn directory_uncore_run_succeeds_past_the_bus_cap() {
    let out = slacksim(&[
        "--uncore",
        "directory",
        "--benchmark",
        "fft",
        "--scheme",
        "bounded",
        "--bound",
        "8",
        "--cores",
        "64",
        "--commit",
        "5000",
    ]);
    assert!(
        out.status.success(),
        "64-core directory run exits 0: {}",
        stderr(&out)
    );
    assert!(!stdout(&out).is_empty(), "report printed to stdout");
}

#[test]
fn unknown_benchmark_enumerates_accepted_values() {
    let out = slacksim(&["--benchmark", "raytrace"]);
    assert_usage_error(&out, &["raytrace", "barnes|fft|lu|water"]);
}

#[test]
fn unknown_rollback_selection_enumerates_accepted_values() {
    let out = slacksim(&["--checkpoint", "1000", "--rollback", "sometimes"]);
    assert_usage_error(&out, &["sometimes", "all|map|none"]);
}

#[test]
fn rollback_without_checkpoint_is_rejected() {
    let out = slacksim(&["--rollback", "all"]);
    assert_usage_error(&out, &["--rollback requires --checkpoint"]);
}

#[test]
fn unknown_checkpoint_mode_enumerates_accepted_values() {
    let out = slacksim(&["--checkpoint", "1000", "--checkpoint-mode", "sparse"]);
    assert_usage_error(&out, &["sparse", "full|delta"]);
}

#[test]
fn checkpoint_mode_without_checkpoint_is_rejected() {
    let out = slacksim(&["--checkpoint-mode", "delta"]);
    assert_usage_error(&out, &["--checkpoint-mode requires --checkpoint"]);
}

#[test]
fn help_enumerates_checkpoint_mode_values() {
    let out = slacksim(&["--help"]);
    assert!(out.status.success());
    assert!(
        stdout(&out).contains("full|delta"),
        "help enumerates --checkpoint-mode values"
    );
}

#[test]
fn small_delta_mode_run_succeeds() {
    let out = slacksim(&[
        "--scheme",
        "bounded",
        "--cores",
        "2",
        "--commit",
        "2000",
        "--checkpoint",
        "500",
        "--rollback",
        "all",
        "--checkpoint-mode",
        "delta",
    ]);
    assert!(
        out.status.success(),
        "delta-mode run exits 0: {}",
        stderr(&out)
    );
    assert!(!stdout(&out).is_empty(), "report printed to stdout");
}

#[test]
fn unknown_flag_is_rejected() {
    let out = slacksim(&["--frobnicate"]);
    assert_usage_error(&out, &["unknown argument '--frobnicate'"]);
}

#[test]
fn stray_positional_argument_is_rejected() {
    let out = slacksim(&["fft"]);
    assert_usage_error(&out, &["unknown argument 'fft'"]);
}

#[test]
fn value_flag_missing_its_value_is_rejected() {
    let out = slacksim(&["--scheme"]);
    assert_usage_error(&out, &["'--scheme' expects a value"]);
}

#[test]
fn malformed_numeric_value_is_rejected() {
    for (flag, bad) in [("--cores", "many"), ("--commit", "1e9"), ("--bound", "-3")] {
        let out = slacksim(&["--scheme", "bounded", flag, bad]);
        assert_usage_error(&out, &[&format!("invalid value '{bad}' for {flag}")]);
    }
}

#[test]
fn zero_valued_quantities_are_rejected() {
    let cases: &[(&[&str], &str)] = &[
        (&["--checkpoint", "0"], "--checkpoint"),
        (&["--scheme", "bounded", "--bound", "0"], "--bound"),
        (&["--scheme", "quantum", "--quantum", "0"], "--quantum"),
        (&["--scheme", "p2p", "--bound", "0"], "--bound"),
        (&["--scheme", "p2p", "--period", "0"], "--period"),
        (&["--sample-every", "0"], "--sample-every"),
    ];
    for (args, flag) in cases {
        let out = slacksim(args);
        assert_usage_error(&out, &[&format!("{flag} must be at least 1 (got 0)")]);
    }
}

#[test]
fn degenerate_adaptive_target_and_band_are_rejected() {
    for bad in ["0", "-0.5", "nan", "inf"] {
        let out = slacksim(&["--scheme", "adaptive", "--target", bad]);
        assert_usage_error(&out, &["--target must be a finite percentage > 0"]);
    }
    for bad in ["-1", "nan", "-inf"] {
        let out = slacksim(&["--scheme", "adaptive", "--band", bad]);
        assert_usage_error(&out, &["--band must be a finite percentage >= 0"]);
    }
}

#[test]
fn save_state_without_checkpoint_is_rejected() {
    let out = slacksim(&["--save-state", "/tmp/nowhere"]);
    assert_usage_error(&out, &["--save-state requires --checkpoint"]);
}

#[test]
fn resume_from_missing_file_is_refused_with_exit_2() {
    let out = slacksim(&[
        "--checkpoint",
        "500",
        "--resume",
        "/nonexistent/slacksim-snapshot",
    ]);
    // Unlike flag validation this fails after the run banner, so the
    // error line is not the first stderr line — but the exit code and
    // message style are the same usage-error contract.
    assert_eq!(out.status.code(), Some(2), "refused resume exits 2");
    let err = stderr(&out);
    for token in [
        "error: cannot resume",
        "/nonexistent/slacksim-snapshot",
        "slacksim --help",
    ] {
        assert!(err.contains(token), "stderr mentions {token:?}: {err:?}");
    }
}

#[test]
fn help_documents_save_state_and_resume() {
    let out = slacksim(&["--help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("--save-state"), "help documents --save-state");
    assert!(text.contains("--resume"), "help documents --resume");
}

#[test]
fn small_valid_run_succeeds_and_prints_a_report() {
    let out = slacksim(&[
        "--benchmark",
        "fft",
        "--scheme",
        "bounded",
        "--bound",
        "8",
        "--cores",
        "2",
        "--commit",
        "2000",
    ]);
    assert!(out.status.success(), "valid run exits 0: {}", stderr(&out));
    let text = stdout(&out);
    assert!(!text.is_empty(), "report printed to stdout");
}

#[test]
fn help_documents_profiling_live_telemetry_and_report() {
    let out = slacksim(&["--help"]);
    let text = stdout(&out);
    for token in [
        "--profile",
        "--profile-csv",
        "--live-stderr",
        "--live-status",
        "--live-every",
        "slacksim report PATH...",
    ] {
        assert!(text.contains(token), "help must document {token}");
    }
}

#[test]
fn live_every_without_a_sink_is_rejected() {
    let out = slacksim(&["--live-every", "100"]);
    assert_usage_error(&out, &["--live-every", "--live-stderr", "--live-status"]);
}

#[test]
fn profiled_run_prints_the_host_time_table_and_writes_csv() {
    let dir = std::env::temp_dir().join(format!("slacksim-cli-prof-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("prof.csv");
    let status_path = dir.join("live.json");
    let out = slacksim(&[
        "--cores",
        "2",
        "--commit",
        "20000",
        "--profile",
        "--profile-csv",
        csv_path.to_str().unwrap(),
        "--live-status",
        status_path.to_str().unwrap(),
        "--live-every",
        "5",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("host-time profile:"), "table printed: {text}");
    assert!(text.contains("core-tick"), "table lists the tick site");
    assert!(text.contains("coverage"), "table footer states coverage");

    let csv = std::fs::read_to_string(&csv_path).expect("profile CSV written");
    assert!(csv.starts_with("site,count,total_ns,self_ns,self_share"));
    let status = std::fs::read_to_string(&status_path).expect("status file written");
    assert_eq!(status.lines().count(), 1, "one atomic beat in the file");

    // `slacksim report` renders both artifacts and exits 0.
    let rep = slacksim(&[
        "report",
        csv_path.to_str().unwrap(),
        status_path.to_str().unwrap(),
    ]);
    assert!(rep.status.success(), "stderr: {}", stderr(&rep));
    let rendered = stdout(&rep);
    assert!(rendered.contains("host-time profile"));
    assert!(rendered.contains("live-status heartbeats"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_without_paths_exits_2() {
    let out = slacksim(&["report"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("report expects at least one PATH"));
}

// --- `slacksim sweep` usage surface ---------------------------------

/// Fresh scratch directory for one sweep test.
fn sweep_scratch(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "slacksim-cli-sweep-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Asserts a usage failure on the sweep path: exit 2, an `error:` line
/// mentioning every token, and the pointer at the *sweep* help — both
/// flag validation and `run_sweep` setup errors cite `sweep --help`,
/// never the single-run help.
fn assert_sweep_error(out: &Output, expect: &[&str]) {
    assert_eq!(out.status.code(), Some(2), "sweep errors exit with code 2");
    let err = stderr(out);
    assert!(
        err.contains("error: "),
        "stderr carries an error line, got {err:?}"
    );
    for token in expect {
        assert!(
            err.contains(token),
            "stderr must mention {token:?}, got {err:?}"
        );
    }
    assert!(
        err.contains("slacksim sweep --help"),
        "stderr points at sweep --help, got {err:?}"
    );
}

#[test]
fn sweep_without_dir_is_rejected() {
    let out = slacksim(&["sweep", "--workers", "2"]);
    assert_sweep_error(&out, &["--dir"]);
}

#[test]
fn sweep_unknown_flag_is_rejected() {
    let out = slacksim(&["sweep", "--dir", "/tmp/nowhere", "--frobnicate"]);
    assert_sweep_error(&out, &["unknown argument '--frobnicate'"]);
}

#[test]
fn sweep_zero_workers_is_rejected() {
    let out = slacksim(&["sweep", "--dir", "/tmp/nowhere", "--workers", "0"]);
    assert_sweep_error(&out, &["--workers must be at least 1 (got 0)"]);
}

#[test]
fn sweep_live_every_without_a_sink_is_rejected() {
    let out = slacksim(&["sweep", "--dir", "/tmp/nowhere", "--live-every", "50"]);
    assert_sweep_error(&out, &["--live-every", "--live-stderr", "--live-status"]);
}

#[test]
fn sweep_unreadable_spec_is_rejected() {
    let out = slacksim(&[
        "sweep",
        "--dir",
        "/tmp/nowhere",
        "--spec",
        "/nonexistent/sweep.json",
    ]);
    assert_sweep_error(&out, &["cannot read sweep spec", "/nonexistent/sweep.json"]);
}

#[test]
fn sweep_without_spec_or_manifest_is_rejected() {
    let dir = sweep_scratch("nomanifest");
    let out = slacksim(&["sweep", "--dir", dir.to_str().unwrap()]);
    assert_sweep_error(&out, &["no sweep spec given", "manifest"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_bad_grid_values_are_rejected_with_enumerated_errors() {
    let cases: &[(&str, &[&str])] = &[
        (
            r#"{"v":1,"commit":100,"axes":{"scheme":["warp"],"workload":["fft"]}}"#,
            &["warp", "cc|bounded|unbounded|quantum|adaptive|p2p"],
        ),
        (
            r#"{"v":1,"commit":100,"axes":{"scheme":["cc"],"workload":["raytrace"]}}"#,
            &["raytrace", "barnes|fft|lu|water"],
        ),
        (
            r#"{"v":1,"commit":100,"axes":{"scheme":["cc"],"workload":["fft"],"cores":[17]}}"#,
            &["17", "out of range"],
        ),
        (
            r#"{"v":1,"commit":100,"axes":{"scheme":["cc"],"workload":["fft"],"bound":[8,8]}}"#,
            &["repeats value 8"],
        ),
        (
            r#"{"v":1,"commit":100,"engine":"batched","axes":{"scheme":["cc"],"workload":["fft"]}}"#,
            &["batched", "quantum-only scheme axis"],
        ),
        (
            r#"{"v":1,"commit":100,"axes":{"scheme":["cc"],"workload":["fft"],"uncore":["ring"]}}"#,
            &["ring", "bus|directory"],
        ),
        (
            // A mixed uncore axis caps cores at the *strictest* member:
            // the grid is a full product, so 64-core bus cells would be
            // unrunnable.
            r#"{"v":1,"commit":100,"axes":{"scheme":["cc"],"workload":["fft"],"uncore":["bus","directory"],"cores":[64]}}"#,
            &["64", "bus", "out of range"],
        ),
    ];
    let dir = sweep_scratch("badgrid");
    for (i, (spec, expect)) in cases.iter().enumerate() {
        let spec_path = dir.join(format!("spec-{i}.json"));
        std::fs::write(&spec_path, spec).unwrap();
        let out = slacksim(&[
            "sweep",
            "--spec",
            spec_path.to_str().unwrap(),
            "--dir",
            dir.join(format!("camp-{i}")).to_str().unwrap(),
        ]);
        assert_sweep_error(&out, expect);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_conflicting_spec_against_manifest_is_rejected() {
    let dir = sweep_scratch("mismatch");
    let camp = dir.join("camp");
    let spec_a = dir.join("a.json");
    std::fs::write(
        &spec_a,
        r#"{"v":1,"commit":200,"axes":{"scheme":["cc"],"cores":[1],"workload":["fft"]}}"#,
    )
    .unwrap();
    let out = slacksim(&[
        "sweep",
        "--spec",
        spec_a.to_str().unwrap(),
        "--dir",
        camp.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "first campaign exits 0: {}",
        stderr(&out)
    );
    // A different grid against the same directory must be refused.
    let spec_b = dir.join("b.json");
    std::fs::write(
        &spec_b,
        r#"{"v":1,"commit":400,"axes":{"scheme":["cc"],"cores":[1],"workload":["fft"]}}"#,
    )
    .unwrap();
    let out = slacksim(&[
        "sweep",
        "--spec",
        spec_b.to_str().unwrap(),
        "--dir",
        camp.to_str().unwrap(),
    ]);
    assert_sweep_error(&out, &["does not match the campaign recorded in"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_help_documents_the_spec_format() {
    let out = slacksim(&["sweep", "--help"]);
    assert!(out.status.success(), "sweep --help exits 0");
    let text = stdout(&out);
    for token in [
        "--spec",
        "--dir",
        "--workers",
        "cc|bounded|unbounded|quantum|adaptive|p2p",
        "barnes|fft|lu|water",
        "seq|threaded|batched",
    ] {
        assert!(text.contains(token), "sweep help must document {token}");
    }
    let main = slacksim(&["--help"]);
    assert!(
        stdout(&main).contains("slacksim sweep --spec FILE --dir DIR"),
        "main help must point at the sweep subcommand"
    );
}

#[test]
fn report_renders_every_campaign_artifact() {
    let dir = sweep_scratch("report");
    let camp = dir.join("camp");
    let spec = dir.join("sweep.json");
    std::fs::write(
        &spec,
        r#"{"v":1,"commit":500,"axes":{
            "scheme":["cc","bounded"],"bound":[8],"cores":[2],
            "workload":["fft"],"seed":[1]}}"#,
    )
    .unwrap();
    let beats = dir.join("beats.jsonl");
    let out = slacksim(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--dir",
        camp.to_str().unwrap(),
        "--workers",
        "2",
        "--live-status",
        beats.to_str().unwrap(),
        "--live-every",
        "5",
    ]);
    assert!(out.status.success(), "campaign exits 0: {}", stderr(&out));
    assert!(
        stdout(&out).contains("campaign: 2 jobs settled"),
        "summary line printed: {}",
        stdout(&out)
    );

    // Every artifact the campaign wrote renders through `report`.
    let rep = slacksim(&[
        "report",
        camp.join("aggregate.csv").to_str().unwrap(),
        camp.join("aggregate.jsonl").to_str().unwrap(),
        camp.join("manifest.json").to_str().unwrap(),
        beats.to_str().unwrap(),
    ]);
    assert!(rep.status.success(), "report exits 0: {}", stderr(&rep));
    let text = stdout(&rep);
    assert!(text.contains("campaign aggregate"), "CSV rendered: {text}");
    assert!(
        text.contains("streamed campaign aggregate"),
        "JSONL rendered: {text}"
    );
    assert!(
        text.contains("campaign manifest"),
        "manifest rendered: {text}"
    );
    assert!(
        text.contains("campaign heartbeats"),
        "heartbeats rendered: {text}"
    );
    assert!(text.contains("cc"), "per-scheme grouping present: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `slacksim report` on anything it cannot render exits 2 with a
/// diagnostic that names the offending file and where detection gave up
/// — an empty file, a truncated JSON artifact, free text and a missing
/// path must all refuse loudly, never render as an empty report.
#[test]
fn report_on_unreadable_or_empty_artifacts_exits_2_naming_the_file() {
    let dir = std::env::temp_dir().join(format!("slacksim-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let bad = dir.join("bad.txt");
    std::fs::write(&bad, "not an artifact\n").unwrap();
    let out = slacksim(&["report", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("unrecognized artifact"), "{err}");
    assert!(err.contains("bad.txt"), "diagnostic names the file: {err}");

    let empty = dir.join("empty.json");
    std::fs::write(&empty, "").unwrap();
    let out = slacksim(&["report", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("empty artifact (0 bytes)"), "{err}");
    assert!(err.contains("empty.json"), "{err}");

    let truncated = dir.join("cut.json");
    std::fs::write(&truncated, "{\"v\":1,\"jobs\":[").unwrap();
    let out = slacksim(&["report", truncated.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("truncated or invalid JSON at line 1"),
        "parse position reported: {err}"
    );
    assert!(err.contains("cut.json"), "{err}");

    let missing = dir.join("does-not-exist");
    let out = slacksim(&["report", missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot read"));
    std::fs::remove_dir_all(&dir).ok();
}
