//! Minimal std-only concurrency primitives for the threaded engine.
//!
//! The kernel must build in fully offline environments, so it depends on
//! nothing outside `std`. The threaded engine needs exactly two shared
//! structures: an unbounded MPSC event queue (the paper's OutQ/InQ) and a
//! single-slot snapshot mailbox. Both are provided here over
//! [`std::sync::Mutex`]; the queues are uncontended in the common case
//! (one producer, one consumer, short critical sections), so a mutex-backed
//! `VecDeque` performs within noise of a lock-free queue at this event rate
//! while staying trivially correct.

use std::collections::VecDeque;
use std::sync::Mutex;

/// An unbounded multi-producer multi-consumer FIFO queue.
///
/// Used for the per-core OutQ (core thread pushes, manager pops) and InQ
/// (manager pushes, core thread pops). All operations take `&self` so the
/// queue can be shared through an `Arc` without further wrapping.
///
/// # Examples
///
/// ```
/// use slacksim_core::sync::SharedQueue;
///
/// let q: SharedQueue<u32> = SharedQueue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct SharedQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SharedQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SharedQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends an element at the tail.
    pub fn push(&self, value: T) {
        self.inner.lock().expect("queue poisoned").push_back(value);
    }

    /// Removes and returns the head element, if any.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().expect("queue poisoned").pop_front()
    }

    /// Number of queued elements at the instant of the call.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len()
    }

    /// Returns `true` when no element is queued at the instant of the call.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards every queued element.
    pub fn clear(&self) {
        self.inner.lock().expect("queue poisoned").clear();
    }
}

/// A single-slot mailbox used for checkpoint snapshots: the core thread
/// deposits its state, the manager takes it.
#[derive(Debug, Default)]
pub struct SnapshotSlot<T> {
    slot: Mutex<Option<T>>,
}

impl<T> SnapshotSlot<T> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        SnapshotSlot {
            slot: Mutex::new(None),
        }
    }

    /// Stores `value`, replacing any previous occupant.
    pub fn put(&self, value: T) {
        *self.slot.lock().expect("slot poisoned") = Some(value);
    }

    /// Removes and returns the occupant, if any.
    pub fn take(&self) -> Option<T> {
        self.slot.lock().expect("slot poisoned").take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_fifo_order() {
        let q = SharedQueue::new();
        assert!(q.is_empty());
        for i in 0..10 {
            q.push(i);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn queue_clear() {
        let q = SharedQueue::new();
        q.push('a');
        q.clear();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_cross_thread() {
        let q: Arc<SharedQueue<u64>> = Arc::new(SharedQueue::new());
        let producer = Arc::clone(&q);
        let handle = std::thread::spawn(move || {
            for i in 0..1000u64 {
                producer.push(i);
            }
        });
        handle.join().expect("producer finishes");
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_slot_roundtrip() {
        let s = SnapshotSlot::new();
        assert!(s.take().is_none());
        s.put(7);
        s.put(9); // replaces
        assert_eq!(s.take(), Some(9));
        assert!(s.take().is_none());
    }
}
