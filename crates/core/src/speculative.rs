//! Speculative slack simulation: checkpointing, rollback accounting, and
//! the checkpoint-interval statistics behind Tables 3 and 4 of the paper.
//!
//! In speculative slack simulation (paper §5) the simulation checkpoints
//! itself every *checkpoint interval* `I` simulated cycles. When a violation
//! of a *selected* kind is detected, the whole simulation rolls back to the
//! previous checkpoint and replays in cycle-by-cycle mode until the next
//! checkpoint boundary (guaranteeing forward progress), after which the base
//! slack scheme resumes.
//!
//! The paper implements `fork()`-based process checkpoints; a multithreaded
//! Rust program cannot soundly `fork()`, so the engines take structured
//! in-memory snapshots instead (every model state is `Clone`). See
//! `DESIGN.md` §4 for why this substitution preserves the evaluated
//! behaviour.

use crate::checkpoint::CheckpointMode;
use crate::persist::{ByteReader, ByteWriter, PersistError};
use crate::time::Cycle;
use crate::violation::ViolationKind;

/// Which violation kinds trigger a rollback.
///
/// The paper observes (§5.2) that tracking *all* violations — including the
/// frequent but individually benign bus violations — makes speculation
/// unprofitable, and suggests focusing on rare, high-impact map violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViolationSelect {
    kinds: [bool; 5],
}

impl ViolationSelect {
    /// Selects no violation kind (checkpoint-only operation, used to
    /// measure pure checkpointing overhead as in Table 2).
    pub const fn none() -> Self {
        ViolationSelect { kinds: [false; 5] }
    }

    /// Selects every violation kind (the configuration the paper evaluates).
    pub const fn all() -> Self {
        ViolationSelect { kinds: [true; 5] }
    }

    /// Selects only the given kinds.
    pub fn only(kinds: &[ViolationKind]) -> Self {
        let mut s = ViolationSelect::none();
        for &k in kinds {
            s.set(k, true);
        }
        s
    }

    /// Enables or disables one kind.
    pub fn set(&mut self, kind: ViolationKind, selected: bool) {
        self.kinds[Self::index(kind)] = selected;
    }

    /// Returns `true` when `kind` triggers rollback.
    pub fn selects(&self, kind: ViolationKind) -> bool {
        self.kinds[Self::index(kind)]
    }

    /// Returns `true` when no kind is selected.
    pub fn is_empty(&self) -> bool {
        self.kinds.iter().all(|&b| !b)
    }

    fn index(kind: ViolationKind) -> usize {
        match kind {
            ViolationKind::Bus => 0,
            ViolationKind::Map => 1,
            ViolationKind::Directory => 2,
            ViolationKind::Workload => 3,
            ViolationKind::Other => 4,
        }
    }
}

/// Configuration of checkpointing and speculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationConfig {
    /// Checkpoint interval `I` in simulated (global) cycles.
    pub interval: u64,
    /// Violation kinds that trigger a rollback. With
    /// [`ViolationSelect::none`] the engine only takes checkpoints and
    /// measures their overhead (Table 2's 5K–100K columns).
    pub rollback_on: ViolationSelect,
    /// Upper bound on rollbacks per interval; after this many the interval
    /// is replayed in cycle-by-cycle mode regardless (defence in depth for
    /// forward progress — CC replay cannot re-violate, so 1 suffices in
    /// practice).
    pub max_rollbacks_per_interval: u32,
    /// How checkpoints are captured and restored: full clones of every
    /// model, or incremental deltas against the previous checkpoint (see
    /// [`crate::checkpoint`]). Both modes produce bit-identical
    /// simulation results; they differ only in host-side cost.
    pub mode: CheckpointMode,
}

impl SpeculationConfig {
    /// Checkpoint-only configuration: snapshots every `interval` cycles,
    /// never rolls back.
    pub fn checkpoint_only(interval: u64) -> Self {
        SpeculationConfig {
            interval,
            rollback_on: ViolationSelect::none(),
            max_rollbacks_per_interval: 1,
            mode: CheckpointMode::Full,
        }
    }

    /// Full speculation: snapshots every `interval` cycles and rolls back
    /// on any selected violation.
    pub fn speculative(interval: u64, rollback_on: ViolationSelect) -> Self {
        SpeculationConfig {
            interval,
            rollback_on,
            max_rollbacks_per_interval: 1,
            mode: CheckpointMode::Full,
        }
    }

    /// Selects the checkpoint capture/restore mode.
    #[must_use]
    pub fn with_mode(mut self, mode: CheckpointMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Per-checkpoint-interval violation bookkeeping, producing the paper's
/// Table 3 (fraction `F` of intervals with at least one violation) and
/// Table 4 (mean distance `Dr` from interval start to first violation).
///
/// # Examples
///
/// ```
/// use slacksim_core::speculative::IntervalTracker;
/// use slacksim_core::time::Cycle;
///
/// let mut t = IntervalTracker::new(100);
/// t.observe_violation(Cycle::new(30));   // interval [0, 100): first at 30
/// t.observe_violation(Cycle::new(60));   // same interval: ignored for Dr
/// t.close_intervals_up_to(Cycle::new(200)); // closes [0,100) and [100,200)
/// assert_eq!(t.intervals_total(), 2);
/// assert_eq!(t.intervals_violating(), 1);
/// assert!((t.fraction_violating() - 0.5).abs() < 1e-12);
/// assert!((t.mean_first_distance() - 30.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalTracker {
    interval: u64,
    /// Start of the interval currently being observed.
    current_start: Cycle,
    /// Offset of the first violation in the current interval, if any.
    current_first: Option<u64>,
    intervals_total: u64,
    intervals_violating: u64,
    sum_first_distance: u64,
}

impl IntervalTracker {
    /// Creates a tracker with the given interval length in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is 0.
    pub fn new(interval: u64) -> Self {
        assert!(interval >= 1, "checkpoint interval must be at least 1");
        IntervalTracker {
            interval,
            current_start: Cycle::ZERO,
            current_first: None,
            intervals_total: 0,
            intervals_violating: 0,
            sum_first_distance: 0,
        }
    }

    /// The configured interval length.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Records a violation stamped at simulated time `ts`.
    ///
    /// A violation stamped at or past the current interval's end (a core
    /// legally running ahead under slack) first closes every interval it
    /// has overtaken and is then attributed to the interval that actually
    /// contains `ts`. Clamping it into the current interval at distance
    /// `I - 1` — the old behaviour — inflated Table 3's `F` and biased
    /// Table 4's `Dr` toward `I`.
    ///
    /// Violations stamped before the current interval's start (stragglers
    /// from an already-closed interval) are attributed to the current
    /// interval at distance 0.
    pub fn observe_violation(&mut self, ts: Cycle) {
        if let Some(end) = self.current_end() {
            if ts >= end {
                self.close_intervals_up_to(ts);
            }
        }
        let offset = ts.saturating_sub(self.current_start).min(self.interval - 1);
        match self.current_first {
            Some(first) if first <= offset => {}
            _ => self.current_first = Some(offset),
        }
    }

    /// Closes every interval that ends at or before `global`, folding its
    /// observation into the aggregate statistics. Call whenever global time
    /// crosses a checkpoint boundary.
    pub fn close_intervals_up_to(&mut self, global: Cycle) {
        while let Some(end) = self.current_end() {
            if end > global {
                break;
            }
            self.intervals_total += 1;
            if let Some(first) = self.current_first.take() {
                self.intervals_violating += 1;
                self.sum_first_distance += first;
            }
            self.current_start = end;
        }
    }

    /// End of the current interval, or `None` when it exceeds the cycle
    /// range (the engines park unreachable checkpoints at `u64::MAX`; such
    /// an interval can never close).
    fn current_end(&self) -> Option<Cycle> {
        self.current_start
            .as_u64()
            .checked_add(self.interval)
            .map(Cycle::new)
    }

    /// Resets the *current* interval's observation without closing it
    /// (used when a rollback restarts the interval).
    pub fn reopen_current(&mut self) {
        self.current_first = None;
    }

    /// Start cycle of the interval currently being observed.
    pub fn current_start(&self) -> Cycle {
        self.current_start
    }

    /// Number of fully observed intervals.
    pub fn intervals_total(&self) -> u64 {
        self.intervals_total
    }

    /// Number of observed intervals containing at least one violation.
    pub fn intervals_violating(&self) -> u64 {
        self.intervals_violating
    }

    /// Table 3's `F`: the fraction of intervals with at least one
    /// violation. Zero when no interval has been observed.
    pub fn fraction_violating(&self) -> f64 {
        if self.intervals_total == 0 {
            0.0
        } else {
            self.intervals_violating as f64 / self.intervals_total as f64
        }
    }

    /// Table 4's `Dr`: mean distance (in simulated cycles) from the start
    /// of a violating interval to its first violation. Zero when no
    /// interval violated.
    pub fn mean_first_distance(&self) -> f64 {
        if self.intervals_violating == 0 {
            0.0
        } else {
            self.sum_first_distance as f64 / self.intervals_violating as f64
        }
    }

    /// Serializes the tracker's dynamic state (the interval length is run
    /// configuration and is not written).
    pub fn save_state(&self, w: &mut ByteWriter) {
        w.u64(self.current_start.as_u64());
        match self.current_first {
            Some(first) => {
                w.bool(true);
                w.u64(first);
            }
            None => w.bool(false),
        }
        w.u64(self.intervals_total);
        w.u64(self.intervals_violating);
        w.u64(self.sum_first_distance);
    }

    /// Restores dynamic state captured by [`save_state`](Self::save_state)
    /// into a tracker built with the same interval length.
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        self.current_start = Cycle::new(r.u64()?);
        self.current_first = if r.bool()? { Some(r.u64()?) } else { None };
        self.intervals_total = r.u64()?;
        self.intervals_violating = r.u64()?;
        self.sum_first_distance = r.u64()?;
        Ok(())
    }
}

/// Counters describing the speculation activity of a finished run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeculationStats {
    /// Global checkpoints taken.
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Simulated cycles discarded by rollbacks (the paper's *rollback
    /// distance*, summed).
    pub wasted_cycles: u64,
    /// Simulated cycles replayed in cycle-by-cycle mode after rollbacks.
    pub replay_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(t: u64) -> Cycle {
        Cycle::new(t)
    }

    #[test]
    fn select_none_all_only() {
        assert!(ViolationSelect::none().is_empty());
        let all = ViolationSelect::all();
        for k in ViolationKind::ALL {
            assert!(all.selects(k));
        }
        let maps = ViolationSelect::only(&[ViolationKind::Map]);
        assert!(maps.selects(ViolationKind::Map));
        assert!(!maps.selects(ViolationKind::Bus));
        assert!(!maps.is_empty());
    }

    #[test]
    fn select_set_toggle() {
        let mut s = ViolationSelect::none();
        s.set(ViolationKind::Bus, true);
        assert!(s.selects(ViolationKind::Bus));
        s.set(ViolationKind::Bus, false);
        assert!(s.is_empty());
    }

    #[test]
    fn config_constructors() {
        let co = SpeculationConfig::checkpoint_only(50_000);
        assert_eq!(co.interval, 50_000);
        assert!(co.rollback_on.is_empty());
        assert_eq!(co.mode, CheckpointMode::Full, "full clones by default");
        let sp = SpeculationConfig::speculative(10_000, ViolationSelect::all());
        assert!(!sp.rollback_on.is_empty());
        assert_eq!(
            sp.with_mode(CheckpointMode::Delta).mode,
            CheckpointMode::Delta
        );
    }

    #[test]
    fn tracker_counts_intervals() {
        let mut t = IntervalTracker::new(10);
        t.close_intervals_up_to(c(35));
        assert_eq!(t.intervals_total(), 3);
        assert_eq!(t.intervals_violating(), 0);
        assert_eq!(t.current_start(), c(30));
    }

    #[test]
    fn tracker_first_violation_distance() {
        let mut t = IntervalTracker::new(100);
        t.observe_violation(c(70));
        t.observe_violation(c(20)); // earlier straggler wins
        t.close_intervals_up_to(c(100));
        assert_eq!(t.intervals_violating(), 1);
        assert!((t.mean_first_distance() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_multiple_intervals_mix() {
        let mut t = IntervalTracker::new(100);
        // interval 0: violation at 10
        t.observe_violation(c(10));
        t.close_intervals_up_to(c(100));
        // interval 1: clean
        t.close_intervals_up_to(c(200));
        // interval 2: violation at 250 (offset 50)
        t.observe_violation(c(250));
        t.close_intervals_up_to(c(300));
        assert_eq!(t.intervals_total(), 3);
        assert_eq!(t.intervals_violating(), 2);
        assert!((t.fraction_violating() - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.mean_first_distance() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_clamps_straggler_before_interval() {
        let mut t = IntervalTracker::new(100);
        t.close_intervals_up_to(c(100)); // current interval now [100, 200)
        t.observe_violation(c(40)); // stamped before interval start
        t.close_intervals_up_to(c(200));
        assert_eq!(t.intervals_violating(), 1);
        assert_eq!(t.mean_first_distance(), 0.0);
    }

    #[test]
    fn tracker_attributes_ahead_violation_to_its_own_interval() {
        let mut t = IntervalTracker::new(100);
        // A violation stamped past the boundary (core ran ahead under
        // slack) closes the overtaken interval *clean* and lands in the
        // interval that contains it, at its true offset.
        t.observe_violation(c(170));
        assert_eq!(t.intervals_total(), 1, "[0,100) closed by the overtake");
        assert_eq!(t.intervals_violating(), 0, "[0,100) saw no violation");
        assert_eq!(t.current_start(), c(100));
        t.close_intervals_up_to(c(200));
        assert_eq!(t.intervals_total(), 2);
        assert_eq!(t.intervals_violating(), 1);
        assert!((t.mean_first_distance() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_cross_boundary_regression() {
        let mut t = IntervalTracker::new(100);
        // [0,100): genuine violation at 30.
        t.observe_violation(c(30));
        // Stamped two intervals ahead: closes [0,100) (violating at 30)
        // and [100,200) (clean), then lands in [200,300) at offset 50.
        t.observe_violation(c(250));
        assert_eq!(t.intervals_total(), 2);
        assert_eq!(t.intervals_violating(), 1);
        t.close_intervals_up_to(c(300));
        assert_eq!(t.intervals_total(), 3);
        assert_eq!(t.intervals_violating(), 2);
        assert!((t.mean_first_distance() - 40.0).abs() < 1e-12, "(30+50)/2");
        // Exactly on a boundary: belongs to the *next* interval at
        // distance 0, not to the closing one at distance I-1.
        t.observe_violation(c(400));
        assert_eq!(t.intervals_total(), 4, "[300,400) closed clean");
        t.close_intervals_up_to(c(500));
        assert_eq!(t.intervals_violating(), 3);
        assert!((t.mean_first_distance() - 80.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_reopen_clears_observation() {
        let mut t = IntervalTracker::new(100);
        t.observe_violation(c(10));
        t.reopen_current();
        t.close_intervals_up_to(c(100));
        assert_eq!(t.intervals_violating(), 0);
    }

    #[test]
    fn tracker_empty_statistics() {
        let t = IntervalTracker::new(10);
        assert_eq!(t.fraction_violating(), 0.0);
        assert_eq!(t.mean_first_distance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "checkpoint interval must be at least 1")]
    fn tracker_rejects_zero_interval() {
        let _ = IntervalTracker::new(0);
    }
}
