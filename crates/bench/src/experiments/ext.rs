//! Extension experiments beyond the paper's measurements.
//!
//! * **E8 — measured speculative slack**: the paper only *models*
//!   fully-deployed speculation (§5.2) and lists full deployment as future
//!   work (§7); we implement checkpoint + rollback + cycle-by-cycle replay
//!   end to end and measure it, including the paper's suggested variant
//!   that rolls back only on (rare, high-impact) map violations.
//! * **E10 — quantum vs slack**: quantum simulation at window sizes equal
//!   to slack bounds, showing the complementary error modes (quantum:
//!   zero reorderings but timing distortion growing with the quantum
//!   beyond the critical latency; slack: reorderings but small timing
//!   error).

use slacksim::scheme::Scheme;
use slacksim::{percent_error, Benchmark, SpeculationConfig, ViolationKind, ViolationSelect};

use crate::runner::{run_sequential, run_threaded};
use crate::scale::Scale;
use crate::table::Table;

/// One measured speculation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRow {
    /// The benchmark measured.
    pub benchmark: Benchmark,
    /// Which violations trigger rollback ("all" or "map-only").
    pub mode: &'static str,
    /// Wall seconds of the speculative run.
    pub wall_secs: f64,
    /// Wall seconds of the cycle-by-cycle reference.
    pub cc_wall_secs: f64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Simulated cycles discarded by rollbacks.
    pub wasted_cycles: u64,
    /// Simulated cycles replayed in cycle-by-cycle mode.
    pub replay_cycles: u64,
    /// Violations of the selected kinds surviving in the final state.
    pub surviving: u64,
    /// Violations detected overall (including rolled-back ones).
    pub detected: u64,
}

/// Measures fully-deployed speculation (E8) on the deterministic engine.
pub fn measure_speculative(scale: &Scale, interval: u64) -> Vec<SpecRow> {
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let cc = run_sequential(scale, benchmark, Scheme::CycleByCycle);
        for (mode, select) in [
            ("all", ViolationSelect::all()),
            ("map-only", ViolationSelect::only(&[ViolationKind::Map])),
        ] {
            let mut sim = crate::runner::sim(scale, benchmark);
            sim.scheme(Scheme::BoundedSlack { bound: 16 })
                .speculation(SpeculationConfig::speculative(interval, select));
            let r = sim.run().expect("speculative run");
            let surviving = match mode {
                "map-only" => r.violations.count(ViolationKind::Map),
                _ => r.violations.total(),
            };
            eprintln!(
                "ext-spec: {benchmark} {mode}: rollbacks={} wasted={} surviving={surviving}",
                r.kernel.get("rollbacks"),
                r.kernel.get("wasted_cycles"),
            );
            rows.push(SpecRow {
                benchmark,
                mode,
                wall_secs: r.wall.as_secs_f64(),
                cc_wall_secs: cc.wall.as_secs_f64(),
                rollbacks: r.kernel.get("rollbacks"),
                wasted_cycles: r.kernel.get("wasted_cycles"),
                replay_cycles: r.kernel.get("replay_cycles"),
                surviving,
                detected: r.kernel.get("violations_detected_total"),
            });
        }
    }
    rows
}

/// Renders E8.
pub fn render_speculative(interval: u64, rows: &[SpecRow]) -> Table {
    let mut t = Table::new(format!(
        "Extension E8. Fully deployed speculative slack (bound 16, {interval}-cycle checkpoints)."
    ));
    t.headers([
        "",
        "rollback on",
        "time (s)",
        "CC time (s)",
        "rollbacks",
        "wasted cyc",
        "replay cyc",
        "surviving viol.",
        "detected viol.",
    ]);
    for r in rows {
        t.row([
            r.benchmark.name().to_string(),
            r.mode.to_string(),
            format!("{:.3}", r.wall_secs),
            format!("{:.3}", r.cc_wall_secs),
            r.rollbacks.to_string(),
            r.wasted_cycles.to_string(),
            r.replay_cycles.to_string(),
            r.surviving.to_string(),
            r.detected.to_string(),
        ]);
    }
    t.note("deterministic engine; rollback restores full in-memory snapshots, then replays CC");
    t.note("\"surviving\" counts violations left in the committed timeline (selected kinds)");
    t
}

/// One quantum-vs-slack comparison point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantumRow {
    /// Window size (quantum length = slack bound).
    pub window: u64,
    /// Quantum execution-time error vs CC (percent).
    pub quantum_err: f64,
    /// Quantum violations (always 0: batch servicing keeps order).
    pub quantum_violations: u64,
    /// Slack execution-time error vs CC (percent).
    pub slack_err: f64,
    /// Slack violations.
    pub slack_violations: u64,
}

/// Measures quantum vs bounded slack at equal windows (E10).
pub fn measure_quantum(scale: &Scale, benchmark: Benchmark) -> Vec<QuantumRow> {
    let cc = run_sequential(scale, benchmark, Scheme::CycleByCycle);
    [2u64, 10, 50, 100, 500]
        .into_iter()
        .map(|window| {
            let q = run_sequential(scale, benchmark, Scheme::Quantum { quantum: window });
            let s = run_sequential(scale, benchmark, Scheme::BoundedSlack { bound: window });
            eprintln!(
                "ext-quantum: {benchmark} W={window}: quantum err={:+.2}% slack err={:+.2}%",
                percent_error(q.global_cycles as f64, cc.global_cycles as f64),
                percent_error(s.global_cycles as f64, cc.global_cycles as f64)
            );
            QuantumRow {
                window,
                quantum_err: percent_error(q.global_cycles as f64, cc.global_cycles as f64),
                quantum_violations: q.violations.total(),
                slack_err: percent_error(s.global_cycles as f64, cc.global_cycles as f64),
                slack_violations: s.violations.total(),
            }
        })
        .collect()
}

/// Renders E10.
pub fn render_quantum(benchmark: Benchmark, rows: &[QuantumRow]) -> Table {
    let mut t = Table::new(format!(
        "Extension E10. Quantum vs bounded slack at equal window ({benchmark})."
    ));
    t.headers([
        "window",
        "quantum err",
        "quantum viol.",
        "slack err",
        "slack viol.",
    ]);
    for r in rows {
        t.row([
            r.window.to_string(),
            format!("{:+.2}%", r.quantum_err),
            r.quantum_violations.to_string(),
            format!("{:+.2}%", r.slack_err),
            r.slack_violations.to_string(),
        ]);
    }
    t.note("quantum keeps event order (0 violations) but delays deliveries to the boundary");
    t.note("execution-time error vs the cycle-by-cycle reference");
    t
}

/// One measured synchronisation-scheme comparison point (E11).
#[derive(Debug, Clone, PartialEq)]
pub struct P2pRow {
    /// Scheme label.
    pub scheme: String,
    /// Execution-time error vs CC (percent, deterministic engine).
    pub exec_err: f64,
    /// Violation rate (fraction per cycle, deterministic engine).
    pub rate: f64,
    /// Largest observed clock spread in cycles (deterministic engine).
    pub max_spread: u64,
    /// Wall seconds (threaded engine).
    pub wall_secs: f64,
}

/// Extension E11: Graphite-style Lax-P2P synchronisation (paper §6 names
/// it as an approach to explore) against bounded and unbounded slack.
pub fn measure_p2p(scale: &Scale, benchmark: Benchmark) -> Vec<P2pRow> {
    let cc = run_sequential(scale, benchmark, Scheme::CycleByCycle);
    let mut rows = Vec::new();
    let mut push = |label: String, scheme: Scheme| {
        let seq = run_sequential(scale, benchmark, scheme.clone());
        let thr = run_threaded(scale, benchmark, scheme);
        eprintln!(
            "ext-p2p: {benchmark} {label}: err={:+.2}% rate={:.3}% spread={}",
            percent_error(seq.global_cycles as f64, cc.global_cycles as f64),
            seq.violation_rate() * 100.0,
            seq.kernel.get("max_clock_spread")
        );
        rows.push(P2pRow {
            scheme: label,
            exec_err: percent_error(seq.global_cycles as f64, cc.global_cycles as f64),
            rate: seq.violation_rate(),
            max_spread: seq.kernel.get("max_clock_spread"),
            wall_secs: thr.wall.as_secs_f64(),
        });
    };
    push("CC".into(), Scheme::CycleByCycle);
    for lead in [4u64, 16] {
        push(format!("S{lead}"), Scheme::BoundedSlack { bound: lead });
        for period in [100u64, 1_000] {
            push(
                format!("P2P lead={lead} period={period}"),
                Scheme::LaxP2p {
                    lead,
                    period,
                    seed: scale.seed,
                },
            );
        }
    }
    push("SU".into(), Scheme::UnboundedSlack);
    rows
}

/// Renders E11.
pub fn render_p2p(benchmark: Benchmark, rows: &[P2pRow]) -> Table {
    let mut t = Table::new(format!(
        "Extension E11. Lax-P2P vs bounded/unbounded slack ({benchmark})."
    ));
    t.headers([
        "scheme",
        "exec err",
        "violation rate",
        "max spread",
        "time (s)",
    ]);
    for r in rows {
        t.row([
            r.scheme.clone(),
            format!("{:+.2}%", r.exec_err),
            format!("{:.4}%", r.rate * 100.0),
            r.max_spread.to_string(),
            format!("{:.3}", r.wall_secs),
        ]);
    }
    t.note("P2P paces each core against one random peer (re-drawn per period) + lead");
    t.note("errors/rates/spreads: deterministic engine; times: threaded engine");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            commit: 60_000,
            seed: 1,
            cores: 8,
        }
    }

    #[test]
    fn speculative_rollback_engages() {
        let rows = measure_speculative(&tiny(), 2_000);
        assert_eq!(rows.len(), 8);
        // Rolling back on all violations must trigger at least one
        // rollback on the densest benchmark.
        let all_modes: Vec<&SpecRow> = rows.iter().filter(|r| r.mode == "all").collect();
        assert!(
            all_modes.iter().any(|r| r.rollbacks > 0),
            "no benchmark rolled back: {all_modes:?}"
        );
        // Map-only rollback is rarer than all-violation rollback.
        for benchmark in Benchmark::ALL {
            let all = rows
                .iter()
                .find(|r| r.benchmark == benchmark && r.mode == "all")
                .unwrap();
            let map = rows
                .iter()
                .find(|r| r.benchmark == benchmark && r.mode == "map-only")
                .unwrap();
            assert!(map.rollbacks <= all.rollbacks, "{benchmark}");
        }
    }

    #[test]
    fn p2p_bounds_spread_and_completes() {
        let scale = tiny();
        let rows = measure_p2p(&scale, Benchmark::Lu);
        let cc = rows.iter().find(|r| r.scheme == "CC").unwrap();
        assert_eq!(cc.rate, 0.0);
        let p2p = rows
            .iter()
            .find(|r| r.scheme.starts_with("P2P lead=4 "))
            .unwrap();
        // P2P pacing bounds the spread near the lead (chains allow a few
        // multiples) and keeps the error moderate.
        assert!(p2p.max_spread >= 1, "some slack must arise");
        assert!(
            p2p.max_spread <= 4 * 8,
            "spread {} too loose for lead 4 on 8 cores",
            p2p.max_spread
        );
        assert!(p2p.exec_err.abs() < 10.0);
        let su = rows.iter().find(|r| r.scheme == "SU").unwrap();
        assert!(su.max_spread >= p2p.max_spread);
    }

    #[test]
    fn quantum_is_order_clean_but_time_distorted() {
        let rows = measure_quantum(&tiny(), Benchmark::Fft);
        for r in &rows {
            assert_eq!(r.quantum_violations, 0, "window {}", r.window);
        }
        // Distortion grows with the quantum once past the critical latency.
        let small = rows.first().unwrap();
        let large = rows.last().unwrap();
        assert!(
            large.quantum_err.abs() >= small.quantum_err.abs(),
            "quantum error must grow: {rows:?}"
        );
    }
}
