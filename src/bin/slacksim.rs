//! `slacksim` — command-line front end: run one configured slack
//! simulation and print the report.
//!
//! ```text
//! slacksim [--benchmark barnes|fft|lu|water] [--scheme cc|bounded|unbounded|quantum|adaptive|p2p]
//!          [--bound N] [--quantum N] [--target PCT] [--band PCT]
//!          [--engine seq|threaded|batched] [--uncore bus|directory]
//!          [--cores N] [--shards N] [--commit N] [--seed N]
//!          [--checkpoint N] [--checkpoint-mode full|delta] [--rollback all|map|none]
//!          [--save-state DIR] [--resume FILE]
//!          [--verbose] [--trace OUT.json] [--metrics OUT.csv] [--sample-every CYCLES]
//!          [--profile] [--profile-csv OUT.csv]
//!          [--live-stderr] [--live-status FILE] [--live-every MS]
//! slacksim sweep --spec FILE --dir DIR [--workers N]
//!          [--live-stderr] [--live-status FILE] [--live-every MS]
//! slacksim sweep --dir DIR            # resume from the campaign manifest
//! slacksim report PATH...
//! ```

use std::path::Path;
use std::time::{Duration, Instant};

use slacksim::scheme::{AdaptiveConfig, Scheme};
use slacksim::slacksim_core::campaign::{JobRow, Manifest, CSV_HEADER, LEGACY_CSV_HEADER};
use slacksim::slacksim_core::obs::json::Json;
use slacksim::slacksim_core::obs::prof::SiteStat;
use slacksim::sweep::{run_sweep, SweepOptions};
use slacksim::{
    Benchmark, CheckpointMode, EngineError, EngineKind, LiveConfig, ObsConfig, ProfData, ProfSite,
    Simulation, SpeculationConfig, UncoreKind, ViolationKind, ViolationSelect, HEARTBEAT_VERSION,
};

/// Flags that take a value in the following argument.
const VALUE_FLAGS: &[&str] = &[
    "--benchmark",
    "--scheme",
    "--bound",
    "--quantum",
    "--target",
    "--band",
    "--period",
    "--engine",
    "--uncore",
    "--cores",
    "--shards",
    "--commit",
    "--seed",
    "--checkpoint",
    "--checkpoint-mode",
    "--rollback",
    "--trace",
    "--metrics",
    "--sample-every",
    "--save-state",
    "--resume",
    "--profile-csv",
    "--live-status",
    "--live-every",
];

/// Flags that stand alone.
const BOOL_FLAGS: &[&str] = &["--verbose", "--help", "-h", "--profile", "--live-stderr"];

/// Value flags of the `sweep` subcommand.
const SWEEP_VALUE_FLAGS: &[&str] = &[
    "--spec",
    "--dir",
    "--workers",
    "--live-status",
    "--live-every",
];

/// Standalone flags of the `sweep` subcommand.
const SWEEP_BOOL_FLAGS: &[&str] = &["--help", "-h", "--live-stderr"];

struct Args {
    argv: Vec<String>,
    /// The command whose `--help` the usage-error footer cites: flag
    /// errors under `slacksim sweep` must point at the sweep usage text,
    /// not the main command's.
    help_cmd: &'static str,
}

impl Args {
    fn new(argv: Vec<String>) -> Self {
        Args {
            argv,
            help_cmd: "slacksim",
        }
    }

    fn sweep(argv: Vec<String>) -> Self {
        Args {
            argv,
            help_cmd: "slacksim sweep",
        }
    }

    /// Prints a usage error citing this command's help and exits 2.
    fn fail(&self, msg: &str) -> ! {
        usage_error_for(self.help_cmd, msg)
    }

    /// Rejects unknown flags, stray positional arguments and value flags
    /// missing their value — a typo must fail loudly, not silently fall
    /// back to a default configuration.
    fn validate(&self) {
        self.validate_with(VALUE_FLAGS, BOOL_FLAGS);
    }

    /// [`validate`](Args::validate) against an explicit flag vocabulary
    /// (subcommands bring their own).
    fn validate_with(&self, value_flags: &[&str], bool_flags: &[&str]) {
        let mut i = 0;
        while i < self.argv.len() {
            let a = self.argv[i].as_str();
            if bool_flags.contains(&a) {
                i += 1;
            } else if value_flags.contains(&a) {
                if i + 1 >= self.argv.len() {
                    self.fail(&format!("flag '{a}' expects a value"));
                }
                i += 2;
            } else {
                self.fail(&format!("unknown argument '{a}'"));
            }
        }
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.value(flag) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| self.fail(&format!("invalid value '{v}' for {flag}"))),
        }
    }

    /// Like [`parsed`](Args::parsed) for cycle counts and other quantities
    /// where zero is degenerate: a zero checkpoint interval would commit a
    /// checkpoint every cycle boundary check, a zero slack bound is
    /// cycle-by-cycle in disguise, and a zero sampling period divides by
    /// zero downstream. All are rejected here instead.
    fn parsed_nonzero(&self, flag: &str, default: u64) -> u64 {
        let v: u64 = self.parsed(flag, default);
        if v == 0 {
            self.fail(&format!("{flag} must be at least 1 (got 0)"));
        }
        v
    }

    fn has(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }
}

/// Prints a usage error citing `help_cmd`'s help text and exits 2.
fn usage_error_for(help_cmd: &str, msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `{help_cmd} --help` for usage");
    std::process::exit(2);
}

/// Prints a main-command usage error and exits non-zero.
fn usage_error(msg: &str) -> ! {
    usage_error_for("slacksim", msg)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // The `report` subcommand takes positional paths, which the flag
    // validator rejects — intercept it before validation. `sweep` brings
    // its own flag vocabulary, so it is intercepted the same way.
    if raw.first().map(String::as_str) == Some("report") {
        report_main(&raw[1..]);
        return;
    }
    if raw.first().map(String::as_str) == Some("sweep") {
        sweep_main(&raw[1..]);
        return;
    }
    let args = Args::new(raw);
    if args.has("--help") || args.has("-h") {
        println!("{}", HELP);
        return;
    }
    args.validate();

    let benchmark = match args.value("--benchmark") {
        None => Benchmark::Fft,
        Some(name) => Benchmark::parse(name).unwrap_or_else(|| {
            usage_error(&format!(
                "unknown benchmark '{name}' (expected barnes|fft|lu|water)"
            ))
        }),
    };
    let scheme = match args.value("--scheme").unwrap_or("cc") {
        "cc" | "cycle" => Scheme::CycleByCycle,
        "bounded" => Scheme::BoundedSlack {
            bound: args.parsed_nonzero("--bound", 8),
        },
        "unbounded" | "su" => Scheme::UnboundedSlack,
        "quantum" => Scheme::Quantum {
            quantum: args.parsed_nonzero("--quantum", 50),
        },
        "adaptive" => {
            let target: f64 = args.parsed("--target", 0.2);
            if !target.is_finite() || target <= 0.0 {
                usage_error(&format!(
                    "--target must be a finite percentage > 0 (got {target})"
                ));
            }
            let band: f64 = args.parsed("--band", 5.0);
            if !band.is_finite() || band < 0.0 {
                usage_error(&format!(
                    "--band must be a finite percentage >= 0 (got {band})"
                ));
            }
            Scheme::Adaptive(AdaptiveConfig::percent(target, band))
        }
        "p2p" => Scheme::LaxP2p {
            lead: args.parsed_nonzero("--bound", 8),
            period: args.parsed_nonzero("--period", 500),
            seed: args.parsed("--seed", 1),
        },
        other => usage_error(&format!(
            "unknown scheme '{other}' (expected cc|bounded|unbounded|quantum|adaptive|p2p)"
        )),
    };
    let engine = match args.value("--engine").unwrap_or("seq") {
        "seq" | "sequential" => EngineKind::Sequential,
        "threaded" | "thr" => EngineKind::Threaded,
        "batched" | "bsp" => EngineKind::Batched,
        other => usage_error(&format!(
            "unknown engine '{other}' (expected seq|threaded|batched)"
        )),
    };
    if engine == EngineKind::Batched && !matches!(scheme, Scheme::Quantum { .. }) {
        let name = args.value("--scheme").unwrap_or("cc");
        usage_error(&format!(
            "--engine batched requires --scheme quantum (got '{name}'): the \
             quantum-compiled loop only resolves cross-core events at quantum \
             boundaries"
        ));
    }

    // The manager tree is a property of the threaded engine's host-side
    // consolidation; accepting it elsewhere would silently do nothing.
    let shards = args.parsed_nonzero("--shards", 1) as usize;
    if shards > 1 && engine != EngineKind::Threaded {
        usage_error(&format!(
            "--shards {shards} requires --engine threaded (the manager tree only \
             exists in the threaded engine)"
        ));
    }

    let uncore = match args.value("--uncore") {
        None => UncoreKind::Bus,
        Some(name) => UncoreKind::parse(name).unwrap_or_else(|| {
            usage_error(&format!("unknown uncore '{name}' (expected bus|directory)"))
        }),
    };
    // Range-check the core count here, before any CmpConfig exists: an
    // out-of-range --cores must be an enumerated usage error (exit 2),
    // never a library assertion with a raw backtrace.
    let cores: usize = args.parsed("--cores", 8);
    if cores == 0 || cores > uncore.max_cores() {
        let hint = if uncore == UncoreKind::Bus && cores > 16 {
            "; use --uncore directory for up to 1024 cores"
        } else {
            ""
        };
        usage_error(&format!(
            "--cores must be between 1 and {} for the {uncore} uncore (got {cores}){hint}",
            uncore.max_cores(),
        ));
    }

    let trace_path = args.value("--trace").map(str::to_string);
    let metrics_path = args.value("--metrics").map(str::to_string);

    let mut sim = Simulation::new(benchmark);
    sim.scheme(scheme.clone())
        .engine(engine)
        .uncore(uncore)
        .cores(cores)
        .shards(shards)
        .commit_target(args.parsed("--commit", 500_000))
        .seed(args.parsed("--seed", 1));
    let select = match args.value("--rollback") {
        None | Some("none") => ViolationSelect::none(),
        Some("all") => ViolationSelect::all(),
        Some("map") => ViolationSelect::only(&[ViolationKind::Map]),
        Some(other) => usage_error(&format!(
            "unknown rollback selection '{other}' (expected all|map|none)"
        )),
    };
    let cp_mode = match args.value("--checkpoint-mode") {
        None => CheckpointMode::Full,
        Some(name) => CheckpointMode::parse(name).unwrap_or_else(|| {
            usage_error(&format!(
                "unknown checkpoint mode '{name}' (expected full|delta)"
            ))
        }),
    };
    if args.has("--checkpoint") {
        let interval = args.parsed_nonzero("--checkpoint", 1);
        sim.speculation(SpeculationConfig::speculative(interval, select).with_mode(cp_mode));
    } else if args.has("--rollback") {
        usage_error("--rollback requires --checkpoint INTERVAL");
    } else if args.has("--checkpoint-mode") {
        usage_error("--checkpoint-mode requires --checkpoint INTERVAL");
    } else if args.has("--save-state") {
        usage_error("--save-state requires --checkpoint INTERVAL");
    }
    if let Some(dir) = args.value("--save-state") {
        sim.save_state(dir);
    }
    if let Some(path) = args.value("--resume") {
        sim.resume(path);
    }
    if trace_path.is_some() || metrics_path.is_some() || args.has("--sample-every") {
        sim.observability(
            ObsConfig::default().with_sample_every(args.parsed_nonzero("--sample-every", 1024)),
        );
    }
    let profile_csv_path = args.value("--profile-csv").map(str::to_string);
    if args.has("--profile") || profile_csv_path.is_some() {
        sim.profile(true);
    }
    let mut live = LiveConfig::new().every(Duration::from_millis(
        args.parsed_nonzero("--live-every", 250),
    ));
    if args.has("--live-stderr") {
        live = live.to_stderr();
    }
    if let Some(path) = args.value("--live-status") {
        live = live.to_file(path);
    }
    if live.has_sink() {
        sim.live(live);
    } else if args.has("--live-every") {
        usage_error("--live-every requires --live-stderr or --live-status FILE");
    }

    eprintln!("running {benchmark} under {} ...", scheme.name());
    match sim.run() {
        Ok(mut report) => {
            println!("{report}");
            // Artifact writes happen outside the engine, so the engine's
            // profiler cannot see them; time them here and bill them to the
            // export site before the profile is rendered.
            let mut export_writes = 0u64;
            let mut export_ns = 0u64;
            if let Some(obs) = &report.obs {
                if let Some(path) = &trace_path {
                    let t0 = Instant::now();
                    let body = slacksim::slacksim_core::obs::export::chrome_trace_json_with_prof(
                        obs,
                        report.prof.as_ref(),
                    );
                    let wrote = std::fs::write(path, body);
                    export_writes += 1;
                    export_ns += t0.elapsed().as_nanos() as u64;
                    if let Err(e) = wrote {
                        eprintln!("failed to write trace {path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("trace written to {path} (open in https://ui.perfetto.dev)");
                }
                if let Some(path) = &metrics_path {
                    let t0 = Instant::now();
                    let wrote = std::fs::write(path, obs.metrics_csv());
                    export_writes += 1;
                    export_ns += t0.elapsed().as_nanos() as u64;
                    if let Err(e) = wrote {
                        eprintln!("failed to write metrics {path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("metrics written to {path}");
                }
            }
            if let Some(prof) = &mut report.prof {
                if export_writes > 0 {
                    prof.record(ProfSite::Export, export_writes, export_ns);
                }
            }
            if let Some(prof) = &report.prof {
                println!("\nhost-time profile:\n{}", prof.table().trim_end());
                if let Some(path) = &profile_csv_path {
                    if let Err(e) = std::fs::write(path, prof.csv()) {
                        eprintln!("failed to write profile {path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("profile written to {path}");
                }
            }
            if args.has("--verbose") {
                if let Some(obs) = &report.obs {
                    println!("\n{}", obs.summary().trim_end());
                }
                println!("\nuncore counters:\n{}", report.uncore);
                println!("\nkernel counters:\n{}", report.kernel);
                for (i, core) in report.per_core.iter().enumerate() {
                    println!("\ncore {i}:\n{core}");
                }
            }
        }
        Err(e @ (EngineError::Resume(_) | EngineError::Persist(_) | EngineError::Config(_))) => {
            // Bad snapshot, mismatched configuration or unusable save
            // directory: a usage-class failure, same exit code as flag
            // validation so scripts can tell it from a simulation fault.
            eprintln!("error: {e}");
            eprintln!("run `slacksim --help` for usage");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Entry point for `slacksim sweep`: runs (or resumes) a design-space
/// campaign described by a sweep-spec file.
///
/// Usage-class failures — unknown flags, a missing `--dir`, an
/// unreadable or invalid spec, a spec/manifest mismatch — exit 2 with
/// the accepted values enumerated, like the main command's flag
/// validation. Individual job failures do not abort the fleet: every
/// other grid point still settles, the failures are listed, and the
/// process exits 1.
fn sweep_main(raw: &[String]) {
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", SWEEP_HELP);
        return;
    }
    let args = Args::sweep(raw.to_vec());
    args.validate_with(SWEEP_VALUE_FLAGS, SWEEP_BOOL_FLAGS);

    let Some(dir) = args.value("--dir") else {
        args.fail("sweep requires --dir DIR (the campaign directory)");
    };
    let spec_src = args.value("--spec").map(|path| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| args.fail(&format!("cannot read sweep spec {path}: {e}")))
    });

    let mut opts = SweepOptions::default();
    if args.has("--workers") {
        opts.workers = Some(args.parsed_nonzero("--workers", 1) as usize);
    }
    let mut live = LiveConfig::new().every(Duration::from_millis(
        args.parsed_nonzero("--live-every", 250),
    ));
    if args.has("--live-stderr") {
        live = live.to_stderr();
    }
    if let Some(path) = args.value("--live-status") {
        live = live.to_file(path);
    }
    if live.has_sink() {
        opts.live = Some(live);
    } else if args.has("--live-every") {
        args.fail("--live-every requires --live-stderr or --live-status FILE");
    }

    match run_sweep(spec_src.as_deref(), Path::new(dir), &opts) {
        Ok(outcome) => {
            let settled = outcome.rows.len();
            println!(
                "campaign: {settled} jobs settled ({} skipped, {} resumed, {} failed) on {} workers",
                outcome.skipped,
                outcome.resumed,
                outcome.failed.len(),
                outcome.pool.per_worker_jobs.len(),
            );
            let counts = outcome.pool.counts();
            if counts.iter().any(|&c| c > 0) {
                println!(
                    "  jobs/worker: {}",
                    counts
                        .iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(" ")
                );
            }
            if outcome.failed.is_empty() {
                println!(
                    "  aggregate: {}",
                    Path::new(dir).join("aggregate.csv").display()
                );
            } else {
                for (token, e) in &outcome.failed {
                    eprintln!("job {token} failed: {e}");
                }
                eprintln!(
                    "{} of {} jobs failed; rerun `slacksim sweep --dir {dir}` to retry them",
                    outcome.failed.len(),
                    settled + outcome.failed.len(),
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `slacksim sweep --help` for usage");
            std::process::exit(2);
        }
    }
}

/// Entry point for `slacksim report PATH...`: renders saved run
/// artifacts into human-readable summaries.
///
/// Artifact types are detected by content, not extension: live-status
/// heartbeat JSONL, profile CSV, metrics CSV and Chrome Trace JSON.
/// Unreadable, empty, truncated or unrecognized artifacts are a
/// usage-class failure: the diagnostic names the file and the parse
/// position, and the process exits 2 like the flag validators, so
/// scripts can tell a bad artifact path from a rendering fault.
fn report_main(paths: &[String]) {
    if paths.iter().any(|p| p == "--help" || p == "-h") {
        println!("{}", REPORT_HELP);
        return;
    }
    if paths.is_empty() {
        eprintln!("error: report expects at least one PATH");
        eprintln!("run `slacksim report --help` for usage");
        std::process::exit(2);
    }
    let mut failed = false;
    for (i, path) in paths.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                failed = true;
            }
            Ok(body) if body.is_empty() => {
                eprintln!("error: {path}: empty artifact (0 bytes)");
                failed = true;
            }
            Ok(body) => match render_artifact(path, &body) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    failed = true;
                }
            },
        }
    }
    if failed {
        std::process::exit(2);
    }
}

/// Dispatches one artifact body to the renderer matching its content.
fn render_artifact(path: &str, body: &str) -> Result<String, String> {
    let trimmed = body.trim_start();
    if trimmed.starts_with("site,count,total_ns") {
        return render_profile_csv(path, body);
    }
    if trimmed.starts_with("metric,cycle,value") {
        return render_metrics_csv(path, body);
    }
    if trimmed.starts_with(CSV_HEADER) || trimmed.starts_with(LEGACY_CSV_HEADER) {
        return render_campaign_csv(path, body);
    }
    if trimmed.starts_with('{') {
        // JSON artifacts are told apart by their discriminating fields,
        // not by extension: a Chrome trace is one document with
        // "traceEvents"; a campaign manifest has "canonical"; heartbeat
        // logs and campaign aggregates are one object per line, with
        // campaign beats flagged "campaign":true and aggregate rows
        // keyed "job". Classify on the first object, then render the
        // whole body with the matching line-oriented renderer.
        if let Ok(doc) = Json::parse(body.trim()) {
            if doc.get("traceEvents").is_some() {
                return render_chrome_trace(path, &doc);
            }
            if doc.get("canonical").is_some() {
                return render_manifest(path, body);
            }
        }
        let first_line = trimmed.lines().next().unwrap_or_default().trim();
        match Json::parse(first_line) {
            Ok(first) => {
                if first.get("campaign").and_then(Json::as_bool) == Some(true) {
                    return render_campaign_heartbeats(path, body);
                }
                if first.get("job").is_some() {
                    return render_campaign_jsonl(path, body);
                }
                if first.get("v").is_some() {
                    return render_heartbeats(path, body);
                }
            }
            Err(e) => {
                // Looked like JSON but the first object does not parse —
                // typically a truncated write. Name the position so the
                // bad artifact is diagnosable, not just "unrecognized".
                return Err(format!(
                    "truncated or invalid JSON at line 1 ({} bytes in file): {e}",
                    body.len()
                ));
            }
        }
    }
    Err(format!(
        "unrecognized artifact ({} bytes; detection looks at line 1): expected \
         heartbeat JSONL, profile CSV, metrics CSV, Chrome Trace JSON, campaign \
         manifest, campaign aggregate JSONL/CSV or campaign heartbeat JSONL",
        body.len()
    ))
}

/// Summarizes a campaign manifest.
fn render_manifest(path: &str, body: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    let manifest = Manifest::parse(body.trim())?;
    let mut out = String::new();
    let _ = writeln!(out, "{path}: campaign manifest");
    let _ = writeln!(out, "  grid size  : {} jobs", manifest.total);
    let _ = writeln!(out, "  fingerprint: {}", manifest.canonical);
    Ok(out)
}

/// Summarizes a campaign heartbeat log: beat count plus the final
/// beat's fleet state.
fn render_campaign_heartbeats(path: &str, body: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut beats = Vec::new();
    for (ln, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let beat = Json::parse(line)
            .map_err(|e| format!("line {}: invalid campaign heartbeat JSON: {e}", ln + 1))?;
        let v = beat
            .get("v")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing heartbeat version field 'v'", ln + 1))?;
        if v as u64 != HEARTBEAT_VERSION {
            return Err(format!(
                "line {}: unsupported heartbeat version {v} (expected {HEARTBEAT_VERSION})",
                ln + 1
            ));
        }
        if beat.get("campaign").and_then(Json::as_bool) != Some(true) {
            return Err(format!("line {}: not a campaign heartbeat", ln + 1));
        }
        beats.push(beat);
    }
    let last = beats.last().ok_or("no campaign heartbeat lines")?;
    let num = |k: &str| last.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(out, "{path}: campaign heartbeats (v{HEARTBEAT_VERSION})");
    let _ = writeln!(out, "  beats      : {}", beats.len());
    let _ = writeln!(out, "  elapsed    : {:.2} s", num("elapsed_ms") / 1e3);
    let _ = writeln!(
        out,
        "  progress   : {:.1}% ({} of {} jobs settled)",
        num("progress") * 100.0,
        (num("done") + num("failed") + num("skipped")) as u64,
        num("total") as u64,
    );
    let _ = writeln!(
        out,
        "  jobs       : {} done, {} skipped, {} resumed, {} failed",
        num("done") as u64,
        num("skipped") as u64,
        num("resumed") as u64,
        num("failed") as u64,
    );
    let _ = writeln!(
        out,
        "  concurrency: {} running now, {} peak",
        num("running") as u64,
        num("max_running") as u64,
    );
    let _ = writeln!(out, "  speed      : {:.2} jobs/s", num("jobs_per_sec"));
    Ok(out)
}

/// Summarizes a streamed campaign aggregate (`aggregate.jsonl`): one
/// validated [`JobRow`] per line.
fn render_campaign_jsonl(path: &str, body: &str) -> Result<String, String> {
    let mut rows = Vec::new();
    for (ln, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        rows.push(JobRow::parse_json(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    if rows.is_empty() {
        return Err("no campaign aggregate rows".to_string());
    }
    Ok(render_campaign_rows(
        path,
        "streamed campaign aggregate",
        rows,
    ))
}

/// Summarizes a final campaign aggregate (`aggregate.csv`). Aggregates
/// written before the uncore column existed are read too, with every
/// row's uncore defaulting to `bus`.
fn render_campaign_csv(path: &str, body: &str) -> Result<String, String> {
    let legacy = !body.trim_start().starts_with(CSV_HEADER);
    let want = if legacy { 11 } else { 12 };
    let mut rows = Vec::new();
    for (ln, line) in body.lines().enumerate().skip(1) {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != want {
            return Err(format!("line {}: expected {want} CSV columns", ln + 1));
        }
        let num = |i: usize| {
            cols[i]
                .parse::<u64>()
                .map_err(|_| format!("line {}: invalid number '{}'", ln + 1, cols[i]))
        };
        // The uncore column sits between scheme and bound; legacy rows
        // lack it, shifting every numeric column left by one.
        let (uncore, off) = if legacy {
            ("bus".to_string(), 0)
        } else {
            (cols[4].to_string(), 1)
        };
        rows.push(JobRow {
            token: cols[0].to_string(),
            index: num(1)?,
            workload: cols[2].to_string(),
            scheme: cols[3].to_string(),
            uncore,
            bound: num(4 + off)?,
            quantum: num(5 + off)?,
            cores: num(6 + off)?,
            seed: num(7 + off)?,
            cycles: num(8 + off)?,
            committed: num(9 + off)?,
            violations: num(10 + off)?,
        });
    }
    if rows.is_empty() {
        return Err("no campaign aggregate rows".to_string());
    }
    Ok(render_campaign_rows(path, "campaign aggregate", rows))
}

/// Shared summary body for both aggregate renderings.
fn render_campaign_rows(path: &str, kind: &str, rows: Vec<JobRow>) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{path}: {kind}");
    let _ = writeln!(out, "  jobs: {}", rows.len());
    // Group by scheme: the axis campaigns most often sweep, and the
    // paper's own presentation (execution time per scheme).
    let mut by_scheme: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for row in &rows {
        let entry = by_scheme.entry(&row.scheme).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += row.cycles;
        entry.2 += row.violations;
    }
    for (scheme, (n, cycles, violations)) in &by_scheme {
        let _ = writeln!(
            out,
            "  {scheme:<10} {n:>4} jobs, mean {} cycles, {violations} violations",
            cycles / n.max(&1),
        );
    }
    out
}

/// Summarizes a `--live-status` heartbeat log: beat count plus the final
/// beat's progress, speed, slack bound, violation and queue state.
fn render_heartbeats(path: &str, body: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut beats = Vec::new();
    for (ln, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let beat = Json::parse(line)
            .map_err(|e| format!("line {}: invalid heartbeat JSON: {e}", ln + 1))?;
        let v = beat
            .get("v")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing heartbeat version field 'v'", ln + 1))?;
        if v as u64 != HEARTBEAT_VERSION {
            return Err(format!(
                "line {}: unsupported heartbeat version {v} (expected {HEARTBEAT_VERSION})",
                ln + 1
            ));
        }
        beats.push(beat);
    }
    let last = beats.last().ok_or("no heartbeat lines")?;
    let num = |k: &str| last.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(out, "{path}: live-status heartbeats (v{HEARTBEAT_VERSION})");
    let _ = writeln!(out, "  beats      : {}", beats.len());
    let _ = writeln!(out, "  elapsed    : {:.2} s", num("elapsed_ms") / 1e3);
    let _ = writeln!(
        out,
        "  progress   : {:.1}% ({} / {} commits, global cycle {})",
        num("progress") * 100.0,
        num("committed") as u64,
        num("commit_target") as u64,
        num("global_cycle") as u64,
    );
    let _ = writeln!(
        out,
        "  speed      : {:.0} commits/s",
        num("commits_per_sec")
    );
    match last.get("bound").and_then(Json::as_f64) {
        Some(b) => {
            let _ = writeln!(out, "  slack bound: {}", b as u64);
        }
        None => {
            let _ = writeln!(out, "  slack bound: unbounded");
        }
    }
    let _ = writeln!(
        out,
        "  violations : {} ({:.4}% of cycles)",
        num("violations") as u64,
        num("violation_rate") * 100.0,
    );
    if let Some(q) = last.get("queues") {
        let qn = |k: &str| q.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let _ = writeln!(
            out,
            "  queues     : outq {} inq {} globalq {}",
            qn("outq"),
            qn("inq"),
            qn("globalq"),
        );
    }
    let _ = writeln!(
        out,
        "  checkpoints: {} taken, {} rollbacks, {} traces dropped",
        num("checkpoints") as u64,
        num("rollbacks") as u64,
        num("dropped_traces") as u64,
    );
    if let Some(sites) = last.get("sites").and_then(Json::as_object) {
        let mut shares: Vec<(&str, f64)> = sites
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|s| (k.as_str(), s)))
            .collect();
        shares.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (name, share) in shares.iter().take(5) {
            let _ = writeln!(out, "  host time  : {:<18} {:.1}%", name, share * 100.0);
        }
    }
    Ok(out)
}

/// Re-renders a `--profile-csv` artifact as the aligned profile table.
fn render_profile_csv(path: &str, body: &str) -> Result<String, String> {
    let mut prof = ProfData::default();
    for (ln, line) in body.lines().enumerate().skip(1) {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 5 {
            return Err(format!("line {}: expected 5 CSV columns", ln + 1));
        }
        let parse = |s: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("line {}: invalid number '{s}'", ln + 1))
        };
        match cols[0] {
            "wall_ns" => prof.wall_ns = parse(cols[2])?,
            "threads" => prof.threads = parse(cols[2])?,
            name => {
                let site = ProfSite::parse(name)
                    .ok_or_else(|| format!("line {}: unknown profile site '{name}'", ln + 1))?;
                prof.sites.push(SiteStat {
                    site,
                    count: parse(cols[1])?,
                    total_ns: parse(cols[2])?,
                    self_ns: parse(cols[3])?,
                });
            }
        }
    }
    if prof.sites.is_empty() {
        return Err("no profile rows".to_string());
    }
    Ok(format!("{path}: host-time profile\n{}", prof.table()))
}

/// Summarizes a `--metrics` CSV: row/series counts and each series'
/// final value.
fn render_metrics_csv(path: &str, body: &str) -> Result<String, String> {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut series: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut rows = 0u64;
    for (ln, line) in body.lines().enumerate().skip(1) {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 3 {
            return Err(format!("line {}: expected 3 CSV columns", ln + 1));
        }
        let value: f64 = cols[2]
            .parse()
            .map_err(|_| format!("line {}: invalid value '{}'", ln + 1, cols[2]))?;
        let entry = series.entry(cols[0].to_string()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 = value;
        rows += 1;
    }
    if rows == 0 {
        return Err("no metric rows".to_string());
    }
    let mut out = String::new();
    let _ = writeln!(out, "{path}: metrics CSV");
    let _ = writeln!(out, "  {} rows across {} series", rows, series.len());
    for (name, (n, last)) in &series {
        let _ = writeln!(out, "  {name:<32} {n:>6} rows, last {last}");
    }
    Ok(out)
}

/// Summarizes a Chrome Trace JSON artifact: event counts by phase and
/// the counter tracks it carries.
fn render_chrome_trace(path: &str, doc: &Json) -> Result<String, String> {
    use std::collections::BTreeSet;
    use std::fmt::Write as _;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("traceEvents is not an array")?;
    let mut spans = 0u64;
    let mut instants = 0u64;
    let mut counter_points = 0u64;
    let mut counter_names = BTreeSet::new();
    for event in events {
        match event.get("ph").and_then(Json::as_str) {
            Some("X") => spans += 1,
            Some("i") | Some("I") => instants += 1,
            Some("C") => {
                counter_points += 1;
                if let Some(name) = event.get("name").and_then(Json::as_str) {
                    counter_names.insert(name.to_string());
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{path}: Chrome Trace JSON");
    let _ = writeln!(
        out,
        "  {} events: {spans} spans, {instants} instants, {counter_points} counter points",
        events.len(),
    );
    for name in &counter_names {
        let _ = writeln!(out, "  counter track: {name}");
    }
    let _ = writeln!(out, "  open in chrome://tracing or https://ui.perfetto.dev");
    Ok(out)
}

/// Usage text for `slacksim sweep`.
const SWEEP_HELP: &str = "\
slacksim sweep — run a design-space-exploration campaign

USAGE:
  slacksim sweep --spec FILE --dir DIR [--workers N]
                 [--live-stderr] [--live-status FILE] [--live-every MS]
  slacksim sweep --dir DIR            # resume from DIR's campaign manifest

A sweep spec is one JSON document describing a {scheme x bound x quantum
x uncore x cores x shards x workload x seed} grid plus shared per-job
settings:

  {
    \"v\": 1,
    \"commit\": 20000,            per-job committed-instruction target
    \"engine\": \"seq\",            seq|threaded|batched (default seq)
    \"checkpoint\": 2000,         durable checkpoint interval (optional)
    \"checkpoint_mode\": \"full\",  full|delta (default full)
    \"max_cycles\": 100000000,    per-job simulated-cycle cap (optional)
    \"workers\": 3,               default pool width (optional)
    \"axes\": {
      \"scheme\":   [\"cc\", \"bounded\"],      cc|bounded|unbounded|quantum|adaptive|p2p
      \"bound\":    [8, 16],                 default [8]
      \"quantum\":  [50],                    default [50]
      \"uncore\":   [\"bus\"],                 bus|directory, default [\"bus\"]
      \"cores\":    [2],                     1..=16 (bus) / 1..=1024 (directory),
                                           default [8]
      \"shards\":   [1],                     threaded manager-tree widths; values
                                           above 1 require \"engine\":\"threaded\"
                                           (default [1])
      \"workload\": [\"fft\", \"water\"],        barnes|fft|lu|water
      \"seed\":     [1, 2]                   default [1]
    }
  }

The grid is the full cartesian product of the eight axes. Every cores
value must fit the most restrictive uncore on the axis (the product
pairs each with each). Jobs run on a
work-stealing pool (--workers, else the spec's, else host parallelism);
each job writes durable checkpoints (when \"checkpoint\" is set) and an
atomic report.json under DIR/jobs/<job>/. Kill the campaign at any
point and rerun `slacksim sweep --dir DIR`: settled jobs are skipped,
in-flight jobs resume from their newest checkpoint, and the final
aggregate is byte-identical to an uninterrupted campaign's.

Artifacts in DIR: manifest.json (grid identity), aggregate.jsonl
(streamed, one row per settled job — `tail -f`-able), aggregate.csv
(final, grid order). Campaign heartbeats (--live-stderr /
--live-status) are single-line JSON flagged \"campaign\":true. All are
readable back through `slacksim report`.

Exit status: 0 campaign complete, 1 one or more jobs failed, 2 usage
or spec error.";

/// Usage text for `slacksim report`.
const REPORT_HELP: &str = "\
slacksim report — render saved run artifacts as human-readable summaries

USAGE:
  slacksim report PATH...

Each PATH is detected by content, not extension:
  live-status heartbeat JSONL   (--live-status FILE)
  host-time profile CSV         (--profile-csv OUT.csv)
  metrics CSV                   (--metrics OUT.csv)
  Chrome Trace JSON             (--trace OUT.json)
  campaign manifest             (sweep DIR/manifest.json)
  campaign aggregate JSONL/CSV  (sweep DIR/aggregate.jsonl, .csv)
  campaign heartbeat JSONL      (sweep --live-status FILE)

Exit status: 0 all artifacts rendered, 2 usage error or any artifact
unreadable, empty, truncated or unrecognized (the diagnostic names the
file and the parse position).";

const HELP: &str = "\
slacksim — run one slack simulation of the paper's 8-core CMP

USAGE:
  slacksim [--benchmark barnes|fft|lu|water] [--scheme cc|bounded|unbounded|quantum|adaptive|p2p]
           [--bound N] [--quantum N] [--target PCT] [--band PCT] [--period N]
           [--engine seq|threaded|batched] [--uncore bus|directory]
           [--cores N] [--shards N] [--commit N] [--seed N]
           [--checkpoint INTERVAL] [--checkpoint-mode full|delta]
           [--rollback all|map|none] [--save-state DIR] [--resume FILE]
           [--verbose]
           [--trace OUT.json] [--metrics OUT.csv] [--sample-every CYCLES]
           [--profile] [--profile-csv OUT.csv]
           [--live-stderr] [--live-status FILE] [--live-every MS]
  slacksim sweep --spec FILE --dir DIR [--workers N]
           [--live-stderr] [--live-status FILE] [--live-every MS]
  slacksim sweep --dir DIR
  slacksim report PATH...

ENGINES:
  --engine seq          deterministic single-threaded engine with a seeded
                        burst scheduler (default; accuracy experiments)
  --engine threaded     one host thread per target core plus a manager —
                        the paper's CMP-on-CMP execution (wall-clock runs)
  --engine batched      quantum-compiled single-threaded engine: steps every
                        core a full quantum per iteration and resolves
                        cross-core events only at quantum boundaries;
                        bit-identical to seq but much faster, requires
                        --scheme quantum
  --shards N            threaded engine only: split the manager into N
                        shard managers, each consolidating a contiguous
                        slice of the cores and publishing a minimum-time
                        floor the root reconciles; a host-throughput knob
                        for large core counts — simulated results are
                        identical for every N (default 1, the classic
                        single-manager loop; clamped to the core count)

UNCORE:
  --uncore bus          the paper's split request/response snooping bus:
                        one shared resource, one monitoring variable,
                        at most 16 cores (default)
  --uncore directory    sharded directory-MESI: address-interleaved
                        directory banks, one timestamp monitor per bank,
                        up to 1024 cores
  --cores N             number of target cores (default 8); 1..=16 on the
                        bus, 1..=1024 on the directory

SPECULATION:
  --checkpoint N        take a checkpoint every N global cycles
  --checkpoint-mode M   how checkpoints are captured and restored
                        (requires --checkpoint): 'full' clones every model
                        per checkpoint, 'delta' captures only state dirtied
                        since the previous checkpoint and rolls back by
                        reverse-applying onto the standing base; both modes
                        produce bit-identical simulation results
  --rollback SEL        violation kinds that trigger a rollback
                        (all|map|none; default none = checkpoint-only)

DURABLE STATE:
  --save-state DIR      persist every committed checkpoint to DIR as a
                        versioned, checksummed snapshot file (cp-NNNNNNNN,
                        written atomically, older files pruned); requires
                        --checkpoint
  --resume FILE         restore a snapshot written by --save-state and
                        continue the run from it; the snapshot's config
                        fingerprint (benchmark/scheme/uncore/cores/seed/
                        checkpoint mode) must match the flags given here, otherwise
                        slacksim refuses with exit code 2

OBSERVABILITY:
  --trace OUT.json      record a per-core timeline and write it as Chrome
                        Trace Event Format JSON (open in chrome://tracing or
                        https://ui.perfetto.dev): run/wait/replay spans per
                        core, violation instants, slack-bound and queue-depth
                        counter tracks
  --metrics OUT.csv     dump sampled gauge time series and histogram
                        summaries as long-format CSV (metric,cycle,value)
  --sample-every N      metrics sampling cadence in global cycles
                        (default 1024); also enables observability on its own
  --verbose             additionally prints the observability summary when
                        tracing/metrics are enabled

PROFILING:
  --profile             self-profile the host: record scoped spans at every
                        engine site (core ticks, manager drains, each tier of
                        the spin/yield/park wait ladder, checkpoint capture/
                        apply/restore, persist I/O, export) and print a
                        per-site host-time table after the run; never
                        perturbs simulation results
  --profile-csv OUT     additionally write the profile as CSV
                        (site,count,total_ns,self_ns,self_share); implies
                        --profile

LIVE TELEMETRY:
  --live-stderr         emit single-line JSON heartbeats to stderr while the
                        run is in flight: progress, commits/s, ETA, current
                        slack bound, violation rate, queue depths, dropped
                        traces and per-site host-time shares
  --live-status FILE    write the latest heartbeat to FILE via atomic
                        replace, so `tail -f`/`jq` always sees one complete
                        JSON object
  --live-every MS       heartbeat cadence in host milliseconds (default 250);
                        requires --live-stderr or --live-status

CAMPAIGNS:
  slacksim sweep --spec FILE --dir DIR
                        expand FILE's {scheme x bound x quantum x uncore x
                        cores x shards x workload x seed} grid and run every job on a
                        work-stealing host pool, with durable per-job
                        checkpoints and streamed aggregation into DIR;
                        rerun with --dir alone to resume after a crash
                        (see `slacksim sweep --help`)

REPORT:
  slacksim report PATH...
                        render saved artifacts (heartbeat log, profile CSV,
                        metrics CSV, Chrome trace, campaign manifest/
                        aggregate/heartbeats) as human-readable summaries;
                        type is detected by content

EXAMPLES:
  slacksim --benchmark barnes --scheme unbounded --engine threaded
  slacksim --uncore directory --cores 64 --benchmark fft --scheme bounded --bound 8
  slacksim --uncore directory --cores 64 --engine threaded --shards 4 --scheme bounded
  slacksim --benchmark fft --scheme quantum --quantum 50 --engine batched
  slacksim --scheme adaptive --target 0.2 --band 5
  slacksim --scheme bounded --bound 16 --checkpoint 5000 --rollback all --verbose
  slacksim --benchmark fft --scheme adaptive --engine threaded --checkpoint 2000 \\
           --trace /tmp/t.json --metrics /tmp/m.csv
  slacksim --cores 2 --checkpoint 1000 --save-state /tmp/cps
  slacksim --cores 2 --checkpoint 1000 --resume /tmp/cps/cp-00000004
  slacksim --engine threaded --profile --live-status /tmp/live.json --live-every 100
  slacksim sweep --spec sweep.json --dir /tmp/campaign --workers 3 --live-stderr
  slacksim report /tmp/live.json /tmp/prof.csv /tmp/campaign/aggregate.csv";
