//! Building blocks shared by all benchmark generators: filler-op mixes,
//! program-counter walking, and address-region helpers.

use slacksim_cmp::isa::Op;
use slacksim_core::rng::Xoshiro256;

/// Walks program counters through a code loop, emitting a wrap-around
/// branch at the end of each traversal — a compact model of an inner loop
/// body that keeps the I-cache warm after the first traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeWalker {
    base: u64,
    bytes: u64,
    cursor: u64,
}

impl CodeWalker {
    /// Creates a walker over `bytes` of code at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes < 8` (a loop needs at least two instructions).
    pub fn new(base: u64, bytes: u64) -> Self {
        assert!(bytes >= 8, "code loop too small");
        CodeWalker {
            base,
            bytes,
            cursor: 0,
        }
    }

    /// The PC for the next instruction.
    pub fn pc(&self) -> u64 {
        self.base + self.cursor
    }

    /// Advances to the next instruction slot; returns `true` when the
    /// walker wrapped (the natural place for a loop branch).
    pub fn advance(&mut self) -> bool {
        self.cursor += 4;
        if self.cursor >= self.bytes {
            self.cursor = 0;
            true
        } else {
            false
        }
    }

    /// Jumps to a different loop region (phase change).
    pub fn rebase(&mut self, base: u64, bytes: u64) {
        assert!(bytes >= 8, "code loop too small");
        self.base = base;
        self.bytes = bytes;
        self.cursor = 0;
    }
}

/// Ratios (out of 256) of filler operation classes between memory
/// references; the remainder is integer ALU work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillerMix {
    /// FP add/compare share.
    pub fp: u16,
    /// FP multiply share.
    pub fp_mul: u16,
    /// Integer multiply share.
    pub mul: u16,
    /// Branch share.
    pub branch: u16,
    /// Of branches, mispredicted share (out of 256).
    pub mispredict: u16,
}

impl FillerMix {
    /// An integer-dominated mix (Barnes/LU-style bookkeeping code).
    pub const INT: FillerMix = FillerMix {
        fp: 32,
        fp_mul: 16,
        mul: 8,
        branch: 40,
        mispredict: 16,
    };

    /// A floating-point-dominated mix (FFT butterflies, Water forces).
    pub const FP: FillerMix = FillerMix {
        fp: 88,
        fp_mul: 56,
        mul: 4,
        branch: 24,
        mispredict: 8,
    };

    /// Draws one filler operation.
    pub fn draw(&self, rng: &mut Xoshiro256) -> Op {
        let r = rng.next_below(256) as u16;
        if r < self.fp {
            Op::FpAlu
        } else if r < self.fp + self.fp_mul {
            Op::FpMul
        } else if r < self.fp + self.fp_mul + self.mul {
            Op::IntMul
        } else if r < self.fp + self.fp_mul + self.mul + self.branch {
            Op::Branch {
                mispredict: rng.next_below(256) as u16 % 256 < self.mispredict,
            }
        } else {
            Op::IntAlu
        }
    }
}

/// Address-space layout shared by all benchmarks.
///
/// | region | base | contents |
/// |---|---|---|
/// | code | `0x0000_1000` | per-phase instruction loops |
/// | private | `0x1000_0000 + tid · 16 MiB` | per-thread data |
/// | shared | `0x8000_0000` | globally shared structures |
/// | thread-shared | `0xA000_0000 + tid · 16 MiB` | data owned by one thread but read by others (transpose sources, molecule blocks) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Regions {
    tid: u64,
}

impl Regions {
    /// Code-region base.
    pub const CODE: u64 = 0x0000_1000;
    /// Globally-shared base.
    pub const SHARED: u64 = 0x8000_0000;

    /// Creates the layout view for thread `tid`.
    pub fn new(tid: usize) -> Self {
        Regions { tid: tid as u64 }
    }

    /// This thread's private-region base.
    pub fn private(&self) -> u64 {
        0x1000_0000 + self.tid * 0x0100_0000
    }

    /// Thread `t`'s exported (read-shared) region base.
    pub fn thread_shared(t: usize) -> u64 {
        0xA000_0000 + t as u64 * 0x0100_0000
    }

    /// Code base for phase `phase` (keeps distinct loops per phase so the
    /// I-cache exhibits phase-change misses).
    pub fn code(phase: u64) -> u64 {
        Self::CODE + phase * 0x4000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_walker_wraps_at_loop_end() {
        let mut w = CodeWalker::new(0x1000, 16); // 4 instructions
        assert_eq!(w.pc(), 0x1000);
        assert!(!w.advance());
        assert!(!w.advance());
        assert!(!w.advance());
        assert!(w.advance()); // wrapped
        assert_eq!(w.pc(), 0x1000);
    }

    #[test]
    fn code_walker_rebase_resets() {
        let mut w = CodeWalker::new(0x1000, 64);
        w.advance();
        w.rebase(0x2000, 32);
        assert_eq!(w.pc(), 0x2000);
    }

    #[test]
    #[should_panic(expected = "code loop too small")]
    fn tiny_loop_rejected() {
        let _ = CodeWalker::new(0, 4);
    }

    #[test]
    fn filler_mix_distribution_sane() {
        let mut rng = Xoshiro256::new(7);
        let mut fp = 0;
        let mut br = 0;
        let n = 20_000;
        for _ in 0..n {
            match FillerMix::FP.draw(&mut rng) {
                Op::FpAlu | Op::FpMul => fp += 1,
                Op::Branch { .. } => br += 1,
                _ => {}
            }
        }
        // FP mix: (88+56)/256 ≈ 56% fp, 24/256 ≈ 9.4% branches.
        let fp_frac = fp as f64 / n as f64;
        let br_frac = br as f64 / n as f64;
        assert!((0.50..0.63).contains(&fp_frac), "fp fraction {fp_frac}");
        assert!((0.06..0.13).contains(&br_frac), "branch fraction {br_frac}");
    }

    #[test]
    fn filler_mix_is_deterministic() {
        let mut a = Xoshiro256::new(9);
        let mut b = Xoshiro256::new(9);
        for _ in 0..100 {
            assert_eq!(FillerMix::INT.draw(&mut a), FillerMix::INT.draw(&mut b));
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let r0 = Regions::new(0);
        let r7 = Regions::new(7);
        assert!(r0.private() + 0x0100_0000 <= r7.private());
        assert!(r7.private() + 0x0100_0000 <= Regions::SHARED);
        assert!(Regions::SHARED < Regions::thread_shared(0));
        assert!(Regions::thread_shared(0) + 0x0100_0000 <= Regions::thread_shared(1));
        assert!(Regions::code(100) < 0x1000_0000);
    }
}
