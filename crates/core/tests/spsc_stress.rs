//! Seeded multi-thread stress tests for the lock-free SPSC ring that
//! carries the threaded engine's OutQ/InQ traffic.
//!
//! The schedules are randomized (batch sizes, API choice, artificial
//! stalls) but driven by the in-tree seeded [`Xoshiro256`] generator, so a
//! failure reproduces from its printed seed. The assertions are the
//! contract the engine depends on: strict FIFO order end to end,
//! including across the ring→spill overflow boundary, and no lost or
//! duplicated items under concurrent producer/consumer interleavings.

use slacksim_core::rng::Xoshiro256;
use slacksim_core::sync::SpscRing;

/// One seeded producer/consumer round trip over a deliberately tiny ring,
/// mixing single-item and batch APIs on both sides.
fn stress_round(seed: u64, total: u64, ring_capacity: usize) {
    let ring: SpscRing<u64> = SpscRing::with_capacity(ring_capacity);
    let mut producer_rng = Xoshiro256::new(seed);
    let mut consumer_rng = Xoshiro256::new(seed ^ 0x9e37_79b9_7f4a_7c15);

    std::thread::scope(|scope| {
        let ring = &ring;
        scope.spawn(move || {
            let mut next = 0u64;
            let mut batch: Vec<u64> = Vec::new();
            while next < total {
                if producer_rng.chance(1, 2) {
                    // Batch push of a random run length (often larger than
                    // the ring, forcing the overflow spill).
                    let len = producer_rng.next_range(1, 64).min(total - next);
                    batch.clear();
                    batch.extend(next..next + len);
                    next += len;
                    ring.push_batch(&mut batch);
                    assert!(batch.is_empty(), "push_batch must consume its input");
                } else {
                    ring.push(next);
                    next += 1;
                }
                if producer_rng.chance(1, 16) {
                    std::thread::yield_now();
                }
            }
        });

        let mut seen = 0u64;
        let mut drained: Vec<u64> = Vec::new();
        while seen < total {
            if consumer_rng.chance(1, 2) {
                drained.clear();
                ring.drain_into(&mut drained);
                for &v in &drained {
                    assert_eq!(v, seen, "FIFO violated at item {seen} (seed {seed})");
                    seen += 1;
                }
            } else if let Some(v) = ring.pop() {
                assert_eq!(v, seen, "FIFO violated at item {seen} (seed {seed})");
                seen += 1;
            }
            if consumer_rng.chance(1, 16) {
                std::thread::yield_now();
            }
        }
        assert!(ring.pop().is_none(), "ring must be empty after all items");
        assert_eq!(ring.depth_hint(), 0);
    });
}

#[test]
fn seeded_interleavings_preserve_fifo_across_spill() {
    // Tiny ring so the spill path is exercised constantly; several seeds
    // so the interleavings differ even on a single-CPU host.
    for seed in [1, 2, 3, 0xdead_beef, 0x5eed_5eed] {
        stress_round(seed, 20_000, 8);
    }
}

#[test]
fn seeded_interleavings_large_ring() {
    // Mostly-lock-free regime: ring big enough that spill is rare.
    for seed in [7, 42] {
        stress_round(seed, 50_000, 1024);
    }
}

#[test]
fn push_exactly_capacity_fills_ring_without_spill_and_wraps() {
    // Filling to exactly `capacity` must stay on the lock-free path, and
    // the wrap-around of the power-of-two indices must preserve FIFO at
    // every possible ring offset.
    const CAP: usize = 8;
    let ring: SpscRing<u64> = SpscRing::with_capacity(CAP);
    let mut next = 0u64;
    for offset in 0..2 * CAP as u64 {
        // Stagger the ring's head by `offset` before each full fill.
        for _ in 0..offset % CAP as u64 {
            ring.push(next);
            assert_eq!(ring.pop(), Some(next));
            next += 1;
        }
        for _ in 0..CAP as u64 {
            ring.push(next);
            next += 1;
        }
        assert_eq!(ring.depth_hint(), CAP, "exactly full, nothing spilled");
        for expect in next - CAP as u64..next {
            assert_eq!(ring.pop(), Some(expect), "FIFO across wrap at {offset}");
        }
        assert!(ring.pop().is_none());
        assert_eq!(ring.depth_hint(), 0);
    }
}

#[test]
fn push_capacity_plus_one_spills_one_item_and_preserves_fifo() {
    const CAP: usize = 8;
    for extra in 1..=3u64 {
        let ring: SpscRing<u64> = SpscRing::with_capacity(CAP);
        let total = CAP as u64 + extra;
        for v in 0..total {
            ring.push(v);
        }
        assert_eq!(
            ring.depth_hint() as u64,
            total,
            "depth_hint counts ring + spill"
        );
        for expect in 0..total {
            assert_eq!(ring.pop(), Some(expect), "spill items come out last");
        }
        assert!(ring.pop().is_none(), "spill fully drained");
        // The queue must fully recover the lock-free regime after a
        // spill: a fresh fill of exactly `capacity` works again.
        for v in 0..CAP as u64 {
            ring.push(v);
        }
        let mut out = Vec::new();
        assert_eq!(ring.drain_into(&mut out), CAP);
        assert_eq!(out, (0..CAP as u64).collect::<Vec<_>>());
    }
}

#[test]
fn seeded_drain_interleaved_batches_across_spill_boundary() {
    // Single-threaded but seeded: alternate batch pushes (frequently
    // larger than the ring) with partial drains so the consumer crosses
    // the ring→spill boundary mid-drain in many different states.
    for seed in [11u64, 23, 0xfeed_f00d] {
        let mut rng = Xoshiro256::new(seed);
        let ring: SpscRing<u64> = SpscRing::with_capacity(8);
        let mut pushed = 0u64;
        let mut seen = 0u64;
        let mut batch: Vec<u64> = Vec::new();
        let mut out: Vec<u64> = Vec::new();
        for _ in 0..2_000 {
            let len = rng.next_range(1, 24);
            batch.clear();
            batch.extend(pushed..pushed + len);
            pushed += len;
            ring.push_batch(&mut batch);
            if rng.chance(1, 2) {
                out.clear();
                ring.drain_into(&mut out);
                for &v in &out {
                    assert_eq!(v, seen, "FIFO violated at {seen} (seed {seed})");
                    seen += 1;
                }
            } else {
                // Partial drain through the single-item path.
                let take = rng.next_range(0, len + 1);
                for _ in 0..take {
                    if let Some(v) = ring.pop() {
                        assert_eq!(v, seen, "FIFO violated at {seen} (seed {seed})");
                        seen += 1;
                    }
                }
            }
        }
        out.clear();
        ring.drain_into(&mut out);
        for &v in &out {
            assert_eq!(v, seen, "FIFO violated at {seen} (seed {seed})");
            seen += 1;
        }
        assert_eq!(seen, pushed, "no items lost or duplicated (seed {seed})");
        assert_eq!(ring.depth_hint(), 0);
    }
}

#[test]
fn producer_role_handoff_between_threads_is_safe_when_synchronized() {
    // The engine hands the producer role across threads only through a
    // synchronizing channel ack (stop-sync). Model that: producer A
    // pushes, joins (synchronizes), then producer B pushes more.
    let ring: SpscRing<u64> = SpscRing::with_capacity(4);
    std::thread::scope(|scope| {
        let r = &ring;
        scope.spawn(move || {
            for v in 0..100 {
                r.push(v);
            }
        });
    });
    // First producer joined: this thread may now produce.
    for v in 100..200 {
        ring.push(v);
    }
    let mut out = Vec::new();
    ring.drain_into(&mut out);
    assert_eq!(out, (0..200).collect::<Vec<_>>());
}
