//! Regenerates Table 5: the analytical model's estimate of fully deployed
//! speculative-slack simulation time.

use slacksim_bench::experiments::table5;
use slacksim_bench::scale::Scale;

fn main() {
    let scale = Scale::from_env(200_000);
    let rows = table5::measure(&scale);
    println!("{}", table5::render(&rows));
}
