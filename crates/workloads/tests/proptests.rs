//! Randomised property tests for the workload generators: determinism,
//! barrier alignment, lock well-formedness and address-region discipline
//! for arbitrary seeds and thread counts. Inputs come from the in-tree
//! deterministic [`Xoshiro256`] RNG so runs reproduce bit-identically
//! without external crates.

use slacksim_cmp::isa::Op;
use slacksim_core::rng::Xoshiro256;
use slacksim_workloads::mix::Regions;
use slacksim_workloads::{Benchmark, WorkloadParams};

const CASES: u64 = 24;

const ALL_BENCHMARKS: [Benchmark; 4] = [
    Benchmark::Barnes,
    Benchmark::Fft,
    Benchmark::Lu,
    Benchmark::WaterNsquared,
];

fn pick_benchmark(rng: &mut Xoshiro256) -> Benchmark {
    ALL_BENCHMARKS[rng.next_below(ALL_BENCHMARKS.len() as u64) as usize]
}

/// Two streams with identical parameters are identical; a clone taken
/// mid-stream continues identically.
#[test]
fn streams_are_deterministic() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xDE7 + case);
        let benchmark = pick_benchmark(&mut rng);
        let seed = rng.next_u64();
        let tid = rng.next_below(8) as usize;
        let params = WorkloadParams::new(tid, 8, seed);
        let mut a = benchmark.stream(&params);
        let mut b = benchmark.stream(&params);
        for _ in 0..2_000 {
            assert_eq!(a.next_instr(), b.next_instr(), "case {case}");
        }
        let mut c = a.clone_box();
        for _ in 0..2_000 {
            assert_eq!(a.next_instr(), c.next_instr(), "case {case}");
        }
    }
}

/// Every thread of a run emits the same consecutive barrier-id sequence
/// (the property that keeps the simulated barrier device deadlock-free).
#[test]
fn barrier_ids_align_across_threads() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xBA1 + case);
        let benchmark = pick_benchmark(&mut rng);
        let seed = rng.next_u64();
        let n_threads = rng.next_range(2, 7) as usize;
        let collect = |tid: usize| -> Vec<u32> {
            let mut s = benchmark.stream(&WorkloadParams::new(tid, n_threads, seed));
            let mut ids = Vec::new();
            for _ in 0..120_000 {
                if let Op::Barrier { id } = s.next_instr().op {
                    ids.push(id);
                    if ids.len() >= 4 {
                        break;
                    }
                }
            }
            ids
        };
        let first = collect(0);
        assert!(
            !first.is_empty(),
            "case {case}: {benchmark} must emit barriers"
        );
        // Ids are consecutive from 0.
        for (i, &id) in first.iter().enumerate() {
            assert_eq!(id as usize, i, "case {case}");
        }
        let last = collect(n_threads - 1);
        let shared = first.len().min(last.len());
        assert_eq!(&first[..shared], &last[..shared], "case {case}");
    }
}

/// Lock acquire/release pairs are well formed: no nesting, releases match
/// the held lock, and no barrier fires while a lock is held.
#[test]
fn lock_sequences_are_well_formed() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x10C + case);
        let benchmark = pick_benchmark(&mut rng);
        let seed = rng.next_u64();
        let tid = rng.next_below(8) as usize;
        let mut s = benchmark.stream(&WorkloadParams::new(tid, 8, seed));
        let mut held: Option<u32> = None;
        for _ in 0..50_000 {
            match s.next_instr().op {
                Op::LockAcquire { id } => {
                    assert!(held.is_none(), "case {case}: nested acquire");
                    held = Some(id);
                }
                Op::LockRelease { id } => {
                    assert_eq!(held, Some(id), "case {case}: mismatched release");
                    held = None;
                }
                Op::Barrier { .. } => {
                    assert!(held.is_none(), "case {case}: barrier while locked");
                }
                _ => {}
            }
        }
    }
}

/// Stores respect ownership discipline: a thread writes only its own
/// private region, its own exported region, or (under a lock) the shared
/// region.
#[test]
fn stores_respect_region_ownership() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x5708 + case);
        let benchmark = pick_benchmark(&mut rng);
        let seed = rng.next_u64();
        let tid = rng.next_below(8) as usize;
        let mut s = benchmark.stream(&WorkloadParams::new(tid, 8, seed));
        let private = Regions::new(tid).private();
        let own_export = Regions::thread_shared(tid);
        let mut locked = false;
        for _ in 0..50_000 {
            match s.next_instr().op {
                Op::LockAcquire { .. } => locked = true,
                Op::LockRelease { .. } => locked = false,
                Op::Store { addr } => {
                    let in_private = (private..private + 0x0100_0000).contains(&addr);
                    let in_own_export = (own_export..own_export + 0x0100_0000).contains(&addr);
                    let in_shared = (Regions::SHARED..Regions::thread_shared(0)).contains(&addr);
                    assert!(
                        in_private || in_own_export || (in_shared && locked),
                        "case {case}: {benchmark} thread {tid}: unsanctioned store to \
                         0x{addr:x} (locked={locked})"
                    );
                }
                _ => {}
            }
        }
    }
}

/// Program counters stay inside the code region (never collide with
/// data), and instruction streams never stall (always produce ops).
#[test]
fn pcs_stay_in_code_region() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x9C5 + case);
        let benchmark = pick_benchmark(&mut rng);
        let seed = rng.next_u64();
        let mut s = benchmark.stream(&WorkloadParams::new(0, 8, seed));
        for _ in 0..20_000 {
            let instr = s.next_instr();
            assert!(instr.pc >= Regions::CODE, "case {case}");
            assert!(
                instr.pc < 0x1000_0000,
                "case {case}: pc 0x{:x} collides with data",
                instr.pc
            );
        }
    }
}

/// Different seeds produce different instruction streams (the generators
/// actually use their seed).
#[test]
fn seeds_matter() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x5EED + case);
        let benchmark = pick_benchmark(&mut rng);
        let seed = rng.next_below(1_000_000);
        let mut a = benchmark.stream(&WorkloadParams::new(0, 8, seed));
        let mut b = benchmark.stream(&WorkloadParams::new(0, 8, seed + 1));
        let mut same = 0u32;
        for _ in 0..2_000 {
            if a.next_instr() == b.next_instr() {
                same += 1;
            }
        }
        assert!(
            same < 2_000,
            "case {case}: seed change had no effect on {benchmark}"
        );
    }
}
