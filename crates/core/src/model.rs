//! The paper's analytical model for speculative-slack simulation time
//! (§5.2), used to produce Table 5 from the measurements of Tables 2–4.
//!
//! ```text
//! Ts = (1 − F) · Tcpt  +  F · Dr · Tcpt / I  +  F · Tcc
//! ```
//!
//! * `Ts`   — estimated wall-clock time of a fully functional speculative
//!   slack simulation;
//! * `Tcc`  — measured wall-clock time of cycle-by-cycle simulation;
//! * `Tcpt` — measured wall-clock time of the (adaptive) slack simulation
//!   *with checkpointing enabled*;
//! * `F`    — fraction of checkpoint intervals containing ≥ 1 violation;
//! * `Dr`   — mean rollback distance in simulated cycles (distance from the
//!   start of a violating interval to its first violation);
//! * `I`    — checkpoint interval in simulated cycles.
//!
//! The first term is normal (violation-free) simulation, the second the
//! simulation work wasted by rollbacks, the third the cycle-by-cycle replay
//! needed for forward progress. The model deliberately omits the cost of the
//! rollback operation itself, so it slightly underestimates `Ts` (paper
//! §5.2).

/// Inputs to the speculative-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculativeModelInputs {
    /// Measured cycle-by-cycle simulation time (seconds).
    pub t_cc: f64,
    /// Measured slack-with-checkpointing simulation time (seconds).
    pub t_cpt: f64,
    /// Fraction of checkpoint intervals with at least one violation
    /// (`0.0 ..= 1.0`).
    pub fraction_violating: f64,
    /// Mean rollback distance in simulated cycles.
    pub rollback_distance: f64,
    /// Checkpoint interval in simulated cycles.
    pub interval: f64,
}

/// Estimated wall-clock time of a fully deployed speculative slack
/// simulation.
///
/// # Panics
///
/// Panics if `interval` is not strictly positive or if
/// `fraction_violating` lies outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use slacksim_core::model::{speculative_time, SpeculativeModelInputs};
///
/// // With no violations at all, speculation costs exactly the
/// // checkpointing run.
/// let quiet = SpeculativeModelInputs {
///     t_cc: 500.0,
///     t_cpt: 300.0,
///     fraction_violating: 0.0,
///     rollback_distance: 0.0,
///     interval: 50_000.0,
/// };
/// assert_eq!(speculative_time(&quiet), 300.0);
/// ```
pub fn speculative_time(inputs: &SpeculativeModelInputs) -> f64 {
    assert!(inputs.interval > 0.0, "interval must be positive");
    assert!(
        (0.0..=1.0).contains(&inputs.fraction_violating),
        "fraction_violating must be in [0, 1]"
    );
    let f = inputs.fraction_violating;
    (1.0 - f) * inputs.t_cpt
        + f * inputs.rollback_distance * inputs.t_cpt / inputs.interval
        + f * inputs.t_cc
}

/// Convenience: `true` when the model predicts speculation beats
/// cycle-by-cycle simulation (the paper's acceptability criterion).
pub fn speculation_profitable(inputs: &SpeculativeModelInputs) -> bool {
    speculative_time(inputs) < inputs.t_cc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_barnes_50k() {
        // Paper Table 2/3/4 for Barnes @ 50K: Tcc=517, Tcpt=537, F=0.93,
        // Dr=6.0k, I=50k → Table 5 reports 578 s.
        let inputs = SpeculativeModelInputs {
            t_cc: 517.0,
            t_cpt: 537.0,
            fraction_violating: 0.93,
            rollback_distance: 6000.0,
            interval: 50_000.0,
        };
        let ts = speculative_time(&inputs);
        assert!(
            (ts - 578.0).abs() < 2.0,
            "expected ≈578 s as in Table 5, got {ts:.1}"
        );
        assert!(!speculation_profitable(&inputs));
    }

    #[test]
    fn reproduces_paper_lu_100k() {
        // LU @ 100K: Tcc=343, Tcpt=320, F=0.31, Dr=25k, I=100k → Table 5: 352.
        let inputs = SpeculativeModelInputs {
            t_cc: 343.0,
            t_cpt: 320.0,
            fraction_violating: 0.31,
            rollback_distance: 25_000.0,
            interval: 100_000.0,
        };
        let ts = speculative_time(&inputs);
        assert!(
            (ts - 352.0).abs() < 2.0,
            "expected ≈352 s as in Table 5, got {ts:.1}"
        );
    }

    #[test]
    fn all_intervals_violating_degenerates_to_replay_plus_waste() {
        let inputs = SpeculativeModelInputs {
            t_cc: 100.0,
            t_cpt: 60.0,
            fraction_violating: 1.0,
            rollback_distance: 5_000.0,
            interval: 10_000.0,
        };
        // (1-1)*60 + 1*0.5*60 + 1*100 = 130.
        assert!((speculative_time(&inputs) - 130.0).abs() < 1e-9);
    }

    #[test]
    fn profitability_flips_with_low_violation_fraction() {
        let mut inputs = SpeculativeModelInputs {
            t_cc: 100.0,
            t_cpt: 50.0,
            fraction_violating: 0.0,
            rollback_distance: 1_000.0,
            interval: 100_000.0,
        };
        assert!(speculation_profitable(&inputs));
        inputs.fraction_violating = 1.0;
        assert!(!speculation_profitable(&inputs));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = speculative_time(&SpeculativeModelInputs {
            t_cc: 1.0,
            t_cpt: 1.0,
            fraction_violating: 0.5,
            rollback_distance: 1.0,
            interval: 0.0,
        });
    }

    #[test]
    #[should_panic(expected = "fraction_violating must be in [0, 1]")]
    fn bad_fraction_rejected() {
        let _ = speculative_time(&SpeculativeModelInputs {
            t_cc: 1.0,
            t_cpt: 1.0,
            fraction_violating: 1.5,
            rollback_distance: 1.0,
            interval: 10.0,
        });
    }
}
